"""Durable-log maintenance gauges: per-shard sums, worker merges.

The STATS verb is how an operator sees maintenance working without logs:
``store_log_bytes``/``store_dead_bytes`` say whether garbage is
accumulating, ``store_compactions``/``store_checkpoints`` say the daemon
is keeping up, and ``store_last_checkpoint_age_s`` bounds how much tail a
restart would replay.  Worker mode must *sum* the counters across worker
processes (ages take the max — the staleness bound is the worst shard).
"""

import asyncio

import pytest

from repro.maintenance import MaintenanceConfig
from repro.serve import McCuckooClient, ServerConfig, WorkerServer
from repro.serve.server import McCuckooServer
from repro.serve.store import ShardedLogStore
from tests.seeding import derive


def run(coro):
    return asyncio.run(coro)


class TestShardedStoreGauges:
    def _store(self, seed, n_shards=4):
        # byte gauges read the serialized image, so the store is durable
        return ShardedLogStore(n_shards=n_shards, expected_items=1024,
                               seed=seed, durable=True)

    def test_log_and_dead_bytes_track_churn(self):
        s = self._store(derive(0xE8))
        for key in range(100):
            s.put(key, b"v" * 16)
        snapshot = s.stats_snapshot()
        assert snapshot["store_log_bytes"] > 0
        assert snapshot["store_dead_bytes"] == 0
        for key in range(100):  # overwrite everything: half the log dies
            s.put(key, b"w" * 16)
        grown = s.stats_snapshot()
        assert grown["store_log_bytes"] > snapshot["store_log_bytes"]
        assert grown["store_dead_bytes"] == pytest.approx(
            grown["store_log_bytes"] / 2
        )

    def test_compaction_and_checkpoint_counters_sum_shards(self):
        s = self._store(derive(0xE9))
        for key in range(200):
            s.put(key, b"v")
            s.put(key, b"w")
        for index in (0, 2):
            s.shard(index).compact()
        s.shard(1).take_checkpoint()
        snapshot = s.stats_snapshot()
        assert snapshot["store_compactions"] == 2
        assert snapshot["store_checkpoints"] == 1
        # compaction reclaimed those shards' dead bytes
        assert snapshot["store_dead_bytes"] == sum(
            shard.dead_bytes for shard in s.shards
        )

    def test_checkpoint_age_is_minus_one_until_first_checkpoint(self):
        s = self._store(derive(0xEA))
        s.put(1, b"v")
        assert s.stats_snapshot()["store_last_checkpoint_age_s"] == -1.0
        s.shard(s.shard_index(1)).take_checkpoint()
        age = s.stats_snapshot()["store_last_checkpoint_age_s"]
        assert 0.0 <= age < 60.0


class TestSingleProcessServerGauges:
    def test_daemon_moves_gauges_over_tcp(self):
        async def scenario():
            config = ServerConfig(
                n_shards=2, expected_items=4096, seed=derive(0xEB),
                durable=True, maintenance=MaintenanceConfig.aggressive(),
            )
            async with McCuckooServer(config) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for round_ in range(6):
                        for key in range(120):
                            await client.put(key, b"r%d" % round_)
                    await server.drain_writes()
                    stats = await client.stats()
            assert stats["store_compactions"] >= 1
            assert stats["store_checkpoints"] >= 1
            assert 0.0 <= stats["store_last_checkpoint_age_s"] < 60.0
            assert stats["store_log_bytes"] > 0
            assert stats["store_dead_bytes"] >= 0

        run(scenario())


class TestWorkerMergedGauges:
    def test_gauges_sum_across_worker_processes(self):
        async def scenario():
            config = ServerConfig(
                n_shards=4, expected_items=4096, seed=derive(0xEC),
                durable=True, maintenance=MaintenanceConfig.aggressive(),
            )
            async with WorkerServer(config, n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for round_ in range(6):
                        for key in range(120):
                            await client.put(key, b"r%d-%04d" % (round_, key))
                    await server.drain_writes()
                    stats = await client.stats()
            assert stats["workers"] == 2
            # with aggressive thresholds and 83% garbage, both maintenance
            # paths must have fired somewhere across the worker fleet
            assert stats["store_compactions"] >= 1
            assert stats["store_checkpoints"] >= 1
            assert stats["store_log_bytes"] > 0
            assert 0.0 <= stats["store_last_checkpoint_age_s"] < 60.0
            # live data is 120 keys; the merged log can't be smaller than
            # the values alone nor report negative garbage
            assert stats["store_dead_bytes"] >= 0
            assert stats["store_items"] == 120

        run(scenario())

    def test_gauges_zero_without_maintenance(self):
        async def scenario():
            config = ServerConfig(
                n_shards=2, expected_items=2048, seed=derive(0xED),
                durable=True,
            )
            async with WorkerServer(config, n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for key in range(50):
                        await client.put(key, b"v")
                    await server.drain_writes()
                    stats = await client.stats()
            assert stats["store_compactions"] == 0
            assert stats["store_checkpoints"] == 0
            assert stats["store_last_checkpoint_age_s"] == -1.0
            assert stats["store_log_bytes"] > 0

        run(scenario())
