"""End-to-end shared read path: a WorkerServer answering GETs from the
seqlock'd shared-memory index images.

Same real-process, real-TCP style as test_workers.py; the assertions
pivot on the ``shared_reads``/``shared_read_fallbacks`` stats so each
scenario proves reads actually took (or correctly refused) the zero-hop
path — not just that the answers were right.
"""

import asyncio

import pytest

from repro.faults import FaultPlan
from repro.serve import (
    McCuckooClient,
    RetryPolicy,
    ServerConfig,
    WorkerServer,
)
from repro.serve.faultgen import DEFAULT_FAULT_SPEC, FaultgenConfig, run_faultgen
from repro.serve.shm import shm_available
from tests.seeding import derive

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def run(coro):
    return asyncio.run(coro)


def config(**overrides) -> ServerConfig:
    defaults = dict(n_shards=4, expected_items=4096, seed=derive(700),
                    read_path="shared")
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestSharedReadPath:
    def test_read_your_writes_and_stats(self):
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for key in range(60):
                        assert await client.put(key, b"v%d" % key) is True
                    for key in range(60):
                        assert await client.get(key) == b"v%d" % key
                    assert await client.get(10_000) is None
                    # publish-before-ack: an acked overwrite/delete is
                    # immediately visible on the shared path
                    await client.put(3, b"updated")
                    assert await client.get(3) == b"updated"
                    await client.delete(4)
                    assert await client.get(4) is None
                    stats = await client.stats()
                return stats

        stats = run(scenario())
        assert stats["read_path_shared"] == 1
        assert stats["shared_reads"] >= 60
        assert stats["shared_read_fallbacks"] == 0

    def test_all_get_batch_takes_shared_path(self):
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for key in range(64):
                        await client.put(key, b"b%d" % key)
                    ops = [("get", key) for key in range(64)]
                    replies = await client.batch(ops)
                    stats = await client.stats()
                return replies, stats

        replies, stats = run(scenario())
        assert [reply.value for reply in replies] == [
            b"b%d" % k for k in range(64)
        ]
        assert stats["shared_reads"] >= 64

    def test_mixed_batch_gets_still_ring(self):
        # a run with a write in it must take the ordered ring path whole
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    await client.put(1, b"one")
                    replies = await client.batch(
                        [("get", 1), ("put", 2, b"two"), ("get", 2)]
                    )
                return replies

        replies = run(scenario())
        assert replies[0].value == b"one"
        assert replies[2].value == b"two"

    def test_ring_default_publishes_nothing(self):
        async def scenario():
            async with WorkerServer(config(read_path="ring"),
                                    n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    await client.put(1, b"x")
                    assert await client.get(1) == b"x"
                    stats = await client.stats()
                return stats

        stats = run(scenario())
        assert stats["read_path_shared"] == 0
        assert stats["shared_reads"] == 0

    def test_worker_restart_keeps_shared_path_correct(self):
        plan = FaultPlan.parse("kill_worker=25", seed=derive(703))
        retry = RetryPolicy(max_attempts=8, deadline=10.0, seed=derive(704))

        async def scenario():
            server = WorkerServer(config(durable=True, fault_plan=plan),
                                  n_workers=2)
            async with server:
                host, port = server.address
                async with McCuckooClient(host, port, retry=retry) as client:
                    for key in range(60):
                        await client.put(key, b"d%d" % key)
                    await server.disarm_faults()
                    await server.pool.await_restarts()
                    await server.drain_writes()
                    # restarted workers republished into the same
                    # segment; every acked write must still be visible
                    for key in range(60):
                        assert await client.get(key) == b"d%d" % key
                    stats = await client.stats()
                return stats

        stats = run(scenario())
        assert stats["worker_restarts"] >= 1
        assert stats["shared_reads"] > 0

    def test_migration_commit_invalidates_source_image(self):
        async def scenario():
            async with WorkerServer(config(durable=True),
                                    n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for key in range(80):
                        await client.put(key, b"m%d" % key)
                    shard = 0
                    source = server.routing.worker_of_shard(shard)
                    target = (source + 1) % server.n_workers
                    report = await server.reshard(shard, target)
                    assert report.committed, report.render()
                    await server.pool.await_restarts()
                    await server.drain_writes()
                    for key in range(80):
                        assert await client.get(key) == b"m%d" % key
                    stats = await client.stats()
                return stats

        stats = run(scenario())
        # post-migration reads of the moved shard come from the target's
        # region (or the ring while it warms up) — never the stale source
        assert stats["shared_reads"] > 0


class TestSharedReadPathFaultgen:
    def test_audit_with_publisher_stalls_and_kills(self):
        """The zero-loss/zero-staleness audit must hold while the fault
        plan stalls publishers mid-``_write_index`` (holding regions in
        their half-applied state) and kills workers mid-publish."""
        faults = (DEFAULT_FAULT_SPEC +
                  "; kill_worker=150; stall_publisher=0:0.01:7"
                  "; stall_publisher=1:0.01:11")
        report = run(run_faultgen(FaultgenConfig(
            n_ops=600, n_keys=96, concurrency=4, seed=derive(701),
            n_workers=2, faults=faults, read_path="shared",
            run_timeout=60.0,
        )))
        assert report.ok, report.render()
        assert report.read_path == "shared"
        assert report.shared_reads > 0

    def test_audit_with_migrations_on_shared_path(self):
        report = run(run_faultgen(FaultgenConfig(
            n_ops=600, n_keys=96, concurrency=4, seed=derive(702),
            n_workers=2, migrate=True, read_path="shared",
            faults=DEFAULT_FAULT_SPEC + "; stall_publisher=0:0.01:9",
            run_timeout=60.0,
        )))
        assert report.ok, report.render()
