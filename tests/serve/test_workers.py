"""Multi-process serving: routing edges, supervision, durable recovery.

The worker-process integration tests fork real processes over real
loopback TCP, so they are kept small: a handful of ops per scenario is
enough to exercise routing, batch scatter/gather, kill/restart, and the
faultgen audit in worker mode.
"""

import asyncio

import pytest

from repro.core.errors import ConfigurationError
from repro.core.sharded import ShardRouter, shards_of_worker, worker_of_shard
from repro.faults import FaultPlan
from repro.serve import (
    McCuckooClient,
    RetryPolicy,
    ServerConfig,
    WorkerServer,
)
from repro.serve.faultgen import FaultgenConfig, run_faultgen
from tests.seeding import derive


def run(coro):
    return asyncio.run(coro)


def config(**overrides) -> ServerConfig:
    defaults = dict(n_shards=4, expected_items=4096, seed=derive(100))
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestWorkerRouting:
    """Pure routing properties — no processes involved."""

    def test_single_shard_routes_everything_to_worker_zero(self):
        router = ShardRouter(1, seed=derive(101))
        assert all(router.worker_of(key, 3) == 0 for key in range(200))

    def test_worker_of_composes_shard_of(self):
        router = ShardRouter(8, seed=derive(102))
        for key in range(500):
            assert router.worker_of(key, 3) == worker_of_shard(
                router.shard_of(key), 3
            )

    def test_routing_stable_across_router_instances(self):
        # a restarted supervisor rebuilds the router from (n_shards, seed)
        # and must send every key to the same worker as before
        seed = derive(103)
        before = ShardRouter(6, seed=seed)
        after = ShardRouter(6, seed=seed)
        assert [before.worker_of(key, 4) for key in range(300)] == [
            after.worker_of(key, 4) for key in range(300)
        ]

    def test_non_divisible_groups_cover_disjointly(self):
        n_shards, n_workers = 5, 2
        groups = [shards_of_worker(worker, n_shards, n_workers)
                  for worker in range(n_workers)]
        flat = [shard for group in groups for shard in group]
        assert sorted(flat) == list(range(n_shards))
        assert groups == [(0, 2, 4), (1, 3)]


class TestWorkerServerOps:
    def test_roundtrip_through_two_workers(self):
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for key in range(40):
                        assert await client.put(key, b"v%d" % key) is True
                    for key in range(40):
                        assert await client.get(key) == b"v%d" % key
                    assert await client.delete(7) is True
                    assert await client.get(7) is None

        run(scenario())

    def test_workers_clamped_to_shard_count(self):
        async def scenario():
            async with WorkerServer(config(n_shards=1),
                                    n_workers=4) as server:
                assert server.n_workers == 1
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    await client.put("k", b"v")
                    assert await client.get("k") == b"v"
                    stats = await client.stats()
                    assert stats["workers"] == 1

        run(scenario())

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ConfigurationError):
            WorkerServer(config(), n_workers=0)

    def test_non_divisible_shards_over_workers(self):
        async def scenario():
            async with WorkerServer(config(n_shards=5),
                                    n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for key in range(60):
                        await client.put(key, bytes([key]))
                    misses = [key for key in range(60)
                              if await client.get(key) != bytes([key])]
                    assert misses == []
                    stats = await client.stats()
                    assert stats["workers"] == 2
                    assert stats["workers_up"] == 2
                    # every op landed on some worker
                    routed = (stats["worker0_ops_routed"]
                              + stats["worker1_ops_routed"])
                    assert routed >= 120  # 60 puts + 60 gets

        run(scenario())

    def test_batch_scatters_and_reassembles_in_order(self):
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    ops = []
                    for key in range(16):
                        ops.append(("put", key, b"b%d" % key))
                    for key in range(16):
                        ops.append(("get", key))
                    ops.append(("stats",))
                    replies = await client.batch(ops)
                    assert all(reply.created for reply in replies[:16])
                    for key, reply in enumerate(replies[16:32]):
                        assert reply.found and reply.value == b"b%d" % key
                    assert replies[32].stats["puts"] == 16

        run(scenario())

    def test_merged_stats_sum_worker_counters(self):
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for key in range(30):
                        await client.put(key, b"x")
                    for key in range(10):
                        await client.get(key)
                    stats = await client.stats()
                    assert stats["puts"] == 30
                    assert stats["gets"] == 10
                    assert stats["get_hits"] == 10
                    assert stats["store_items"] == 30
                    assert stats["worker_restarts"] == 0

        run(scenario())


class TestSupervision:
    def test_kill_worker_restart_loses_no_acked_write(self):
        plan = FaultPlan.parse("kill_worker=20", seed=derive(104))
        retry = RetryPolicy(max_attempts=8, deadline=10.0, seed=derive(105))

        async def scenario():
            server = WorkerServer(config(durable=True, fault_plan=plan),
                                  n_workers=2)
            async with server:
                host, port = server.address
                async with McCuckooClient(host, port, retry=retry) as client:
                    acked = []
                    for key in range(120):
                        await client.put(key, b"d%d" % key)
                        acked.append(key)  # put returned ⇒ acked
                    await server.disarm_faults()
                    await server.drain_writes()
                    lost = [key for key in acked
                            if await client.get(key) != b"d%d" % key]
                    assert lost == []
                    stats = await client.stats()
                    assert stats["worker_restarts"] >= 1
                    assert stats["workers_up"] == 2

        run(scenario())

    def test_faultgen_audit_passes_with_worker_kills(self):
        report = run(run_faultgen(FaultgenConfig(
            n_ops=400,
            n_keys=64,
            concurrency=4,
            seed=derive(106),
            n_workers=2,
            faults="kill_worker=30; busy=0.02",
            run_timeout=45.0,
        )))
        assert report.ok, report.render()
        assert report.n_workers == 2
        assert report.lost_acked_writes == 0
        assert report.phantom_values == 0
        assert report.worker_restarts >= 1

    def test_faultgen_audit_passes_with_kills_inside_maintenance(self):
        """``kill_worker_during`` hard-kills a worker mid-compaction and
        mid-checkpoint-write; restart + durable-log replay must still
        account for every acknowledged write.  The rule re-arms in each
        restarted process, so the kills keep landing for the whole run."""
        report = run(run_faultgen(FaultgenConfig(
            n_ops=400,
            n_keys=48,
            concurrency=4,
            seed=derive(107),
            n_workers=2,
            faults="busy=0.02",
            maintenance=True,
            run_timeout=45.0,
        )))
        assert report.ok, report.render()
        assert "kill_worker_during=compaction:1" in report.fault_plan
        assert "kill_worker_during=checkpoint:1" in report.fault_plan
        assert report.lost_acked_writes == 0
        assert report.phantom_values == 0
        assert report.worker_restarts >= 1
