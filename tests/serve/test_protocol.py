"""Wire-protocol unit tests: pure bytes, no sockets."""

import struct
import zlib

import pytest

from repro.serve.protocol import (
    MAGIC,
    VERSION,
    BatchReply,
    BatchRequest,
    DeleteReply,
    DeleteRequest,
    ErrorCode,
    ErrorReply,
    GetRequest,
    Opcode,
    ProtocolError,
    PutReply,
    PutRequest,
    StatsReply,
    StatsRequest,
    ValueReply,
    decode_reply,
    decode_request,
    encode_reply,
    encode_request,
)


def strip_frame(frame: bytes) -> bytes:
    """Drop the length/CRC prefix, validating both first."""
    (length, crc) = struct.unpack(">II", frame[:8])
    body = frame[8:]
    assert length == len(body)
    assert crc == (zlib.crc32(body) & 0xFFFFFFFF)
    return body


REQUESTS = [
    GetRequest(0),
    GetRequest(2**64 - 1),
    PutRequest(42, b""),
    PutRequest(42, b"some value \x00\xff"),
    DeleteRequest(7),
    StatsRequest(),
    BatchRequest((GetRequest(1), PutRequest(2, b"x"), DeleteRequest(3),
                  StatsRequest())),
    BatchRequest(()),
]

REPLIES = [
    ValueReply(found=True, value=b"payload"),
    ValueReply(found=False),
    PutReply(created=True),
    PutReply(created=False),
    DeleteReply(deleted=True),
    DeleteReply(deleted=False),
    StatsReply({"gets": 3, "load": 0.5}),
    StatsReply({}),
    ErrorReply(ErrorCode.BUSY, "queue full"),
    ErrorReply(ErrorCode.TIMEOUT),
    BatchReply((ValueReply(True, b"v"), ErrorReply(ErrorCode.BUSY, "b"),
                PutReply(True))),
]


class TestRoundtrips:
    @pytest.mark.parametrize("request_", REQUESTS, ids=repr)
    def test_request_roundtrip(self, request_):
        assert decode_request(strip_frame(encode_request(request_))) == request_

    @pytest.mark.parametrize("reply", REPLIES, ids=repr)
    def test_reply_roundtrip(self, reply):
        assert decode_reply(strip_frame(encode_reply(reply))) == reply

    def test_header_layout(self):
        body = strip_frame(encode_request(GetRequest(5)))
        assert body[0] == MAGIC
        assert body[1] == VERSION
        assert body[2] == Opcode.GET


class TestRejections:
    def test_bad_magic(self):
        body = bytearray(strip_frame(encode_request(GetRequest(5))))
        body[0] ^= 0xFF
        with pytest.raises(ProtocolError, match="magic"):
            decode_request(bytes(body))

    def test_bad_version(self):
        body = bytearray(strip_frame(encode_request(GetRequest(5))))
        body[1] = VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_request(bytes(body))

    def test_unknown_opcode(self):
        body = bytes([MAGIC, VERSION, 0x7E])
        with pytest.raises(ProtocolError, match="opcode"):
            decode_request(body)

    def test_truncated_payload(self):
        body = strip_frame(encode_request(PutRequest(1, b"abcdef")))
        with pytest.raises(ProtocolError, match="truncated"):
            decode_request(body[:-3])

    def test_trailing_bytes(self):
        body = strip_frame(encode_request(GetRequest(1)))
        with pytest.raises(ProtocolError, match="trailing"):
            decode_request(body + b"\x00")

    def test_nested_batch_encode(self):
        inner = BatchRequest((GetRequest(1),))
        with pytest.raises(ProtocolError, match="nest"):
            encode_request(BatchRequest((inner,)))

    def test_nested_batch_decode(self):
        body = bytes([MAGIC, VERSION, Opcode.BATCH]) + struct.pack(">H", 1) \
            + bytes([Opcode.BATCH])
        with pytest.raises(ProtocolError, match="nest"):
            decode_request(body)

    def test_reply_with_unknown_error_code(self):
        body = bytes([MAGIC, VERSION, Opcode.ERROR, 200]) \
            + struct.pack(">H", 0)
        with pytest.raises(ProtocolError, match="error code"):
            decode_reply(body)

    def test_malformed_stats_json(self):
        blob = b"not json"
        body = bytes([MAGIC, VERSION, Opcode.STATS_OK]) \
            + struct.pack(">I", len(blob)) + blob
        with pytest.raises(ProtocolError, match="stats"):
            decode_reply(body)


class TestFraming:
    def test_frames_are_self_delimiting(self):
        """Two frames concatenated on a stream split back cleanly."""
        first = encode_request(PutRequest(1, b"aa"))
        second = encode_request(GetRequest(2))
        stream = first + second
        (length,) = struct.unpack(">I", stream[:4])
        assert decode_request(stream[8 : 8 + length]) == PutRequest(1, b"aa")
        rest = stream[8 + length :]
        (length2,) = struct.unpack(">I", rest[:4])
        assert decode_request(rest[8 : 8 + length2]) == GetRequest(2)

    def test_value_bytes_survive_arbitrary_content(self):
        value = bytes(range(256)) * 8
        frame = encode_request(PutRequest(9, value))
        decoded = decode_request(strip_frame(frame))
        assert decoded.value == value
