"""Shared-memory index images: layout, publisher/reader, seqlock safety.

These tests drive :mod:`repro.serve.shared_image` directly — one process
playing both the worker (publisher) and the frontend (reader) over a real
``multiprocessing.shared_memory`` segment — so every torn-state scenario
is deterministic: the stall hook and monkeypatched publish steps let us
observe the exact half-applied region states a concurrent reader could
race against, and prove the seqlock never lets one validate.
"""

import struct

import pytest

from repro.core.errors import ConfigurationError
from repro.serve.shared_image import (
    IMAGE_LAYOUT_VERSION,
    ImageLayout,
    ShardImagePublisher,
    SharedImageReader,
    SharedIndexImage,
    resolve_read_path,
)
from repro.serve.shm import shm_available
from repro.serve.store import ShardedLogStore

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)

N_SHARDS = 2
EXPECTED_ITEMS = 256


def value_for(key: int) -> bytes:
    return b"v%08d" % key


@pytest.fixture
def rig():
    store = ShardedLogStore(n_shards=N_SHARDS, expected_items=EXPECTED_ITEMS,
                            seed=5)
    image = SharedIndexImage.create(
        ImageLayout.for_store(N_SHARDS, EXPECTED_ITEMS)
    )
    publisher = ShardImagePublisher(image)
    reader = SharedImageReader(image)
    yield store, image, publisher, reader
    reader.close()
    image.destroy()


def publish_all(publisher: ShardImagePublisher, store: ShardedLogStore):
    for shard in range(store.n_shards):
        publisher.publish(shard, store.shard(shard))


def region_generation(image: SharedIndexImage, shard: int) -> int:
    base = image.layout.region_offset(shard)
    return struct.unpack_from("<I", image.buf, base + 8)[0]


class TestResolveReadPath:
    def test_explicit_values(self):
        assert resolve_read_path("ring") == "ring"
        assert resolve_read_path("shared") == "shared"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_read_path("mmap")

    def test_auto_defaults_to_ring(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_READ_PATH", raising=False)
        assert resolve_read_path("auto") == "ring"

    def test_auto_honours_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_READ_PATH", "shared")
        assert resolve_read_path("auto") == "shared"
        monkeypatch.setenv("REPRO_SERVE_READ_PATH", "ring")
        assert resolve_read_path("auto") == "ring"
        monkeypatch.setenv("REPRO_SERVE_READ_PATH", "bogus")
        assert resolve_read_path("auto") == "ring"


class TestImageLayout:
    def test_header_round_trip(self):
        layout = ImageLayout.for_store(4, 1024)
        image = SharedIndexImage.create(layout)
        try:
            parsed = ImageLayout.from_header(image.buf)
            assert parsed.n_shards == layout.n_shards
            assert parsed.max_slots == layout.max_slots
            assert parsed.counter_bits == layout.counter_bits
            assert parsed.max_stash == layout.max_stash
            assert parsed.log_capacity == layout.log_capacity
            assert parsed.region_stride == layout.region_stride
        finally:
            image.destroy()

    def test_attach_by_name_sees_same_layout(self):
        layout = ImageLayout.for_store(2, 256)
        image = SharedIndexImage.create(layout)
        try:
            attached = SharedIndexImage.attach(image.name)
            assert attached.layout.segment_bytes == layout.segment_bytes
            attached.close()
        finally:
            image.destroy()

    def test_region_offset_bounds(self):
        layout = ImageLayout.for_store(2, 256)
        with pytest.raises(ConfigurationError):
            layout.region_offset(-1)
        with pytest.raises(ConfigurationError):
            layout.region_offset(2)

    def test_bad_magic_rejected(self):
        layout = ImageLayout.for_store(1, 64)
        image = SharedIndexImage.create(layout)
        try:
            struct.pack_into("<I", image.buf, 0, 0xDEADBEEF)
            with pytest.raises(ConfigurationError):
                ImageLayout.from_header(image.buf)
        finally:
            image.destroy()

    def test_layout_version_is_versioned(self):
        assert IMAGE_LAYOUT_VERSION >= 1


class TestPublisherReader:
    def test_hit_miss_update_delete(self, rig):
        store, _, publisher, reader = rig
        keys = list(range(1, 61))
        for key in keys:
            store.put(key, value_for(key))
        publish_all(publisher, store)

        for key in keys:
            shard = store.shard_index(key)
            assert reader.get(shard, key) == (True, value_for(key))
        for key in range(1000, 1010):
            assert reader.get(store.shard_index(key), key) == (False, b"")

        store.put(keys[0], b"updated")
        store.delete(keys[1])
        publish_all(publisher, store)
        assert reader.get(store.shard_index(keys[0]), keys[0]) == (
            True, b"updated")
        assert reader.get(store.shard_index(keys[1]), keys[1]) == (False, b"")

    def test_get_run_matches_scalar_gets(self, rig):
        store, _, publisher, reader = rig
        present = list(range(1, 41))
        for key in present:
            store.put(key, value_for(key))
        publish_all(publisher, store)

        probe = present + list(range(5000, 5040))  # wide enough to vectorize
        by_shard = {}
        for key in probe:
            by_shard.setdefault(store.shard_index(key), []).append(key)
        for shard, shard_keys in by_shard.items():
            results = reader.get_run(shard, shard_keys)
            assert results is not None
            for key, got in zip(shard_keys, results):
                assert got == reader.get(shard, key)
                expected = (True, value_for(key)) if key in set(present) \
                    else (False, b"")
                assert got == expected

    def test_unpublished_region_falls_back(self, rig):
        store, _, publisher, reader = rig
        store.put(7, value_for(7))
        publish_all(publisher, store)
        shard = store.shard_index(7)
        publisher.unpublish(shard)
        assert reader.get(shard, 7) is None
        # unpublish is cheap to undo: the next publish re-serves
        publisher.publish(shard, store.shard(shard))
        assert reader.get(shard, 7) == (True, value_for(7))

    def test_forget_drops_mirror_state(self, rig):
        store, _, publisher, reader = rig
        store.put(7, value_for(7))
        publish_all(publisher, store)
        shard = store.shard_index(7)
        publisher.forget(shard)
        assert reader.get(shard, 7) is None

    def test_out_of_range_shard_falls_back(self, rig):
        _, _, _, reader = rig
        assert reader.get(99, 7) is None
        assert reader.get_run(99, [7]) is None

    def test_non_bytes_value_falls_back(self, rig):
        store, _, publisher, reader = rig
        store.put(3, 12345)  # not a bytes payload: only the ring can serve it
        publish_all(publisher, store)
        assert reader.get(store.shard_index(3), 3) is None

    def test_publisher_restart_bumps_generation(self, rig):
        store, image, publisher, reader = rig
        store.put(11, value_for(11))
        publish_all(publisher, store)
        shard = store.shard_index(11)
        before = region_generation(image, shard)
        # a restarted worker builds a fresh publisher over the same segment
        publisher2 = ShardImagePublisher(image)
        publisher2.publish(shard, store.shard(shard))
        assert region_generation(image, shard) > before
        assert reader.get(shard, 11) == (True, value_for(11))


class TestSeqlockSafety:
    def test_odd_version_is_never_served(self, rig):
        store, image, publisher, reader = rig
        store.put(9, value_for(9))
        publish_all(publisher, store)
        shard = store.shard_index(9)
        base = image.layout.region_offset(shard)
        version = struct.unpack_from("<Q", image.buf, base)[0]
        struct.pack_into("<Q", image.buf, base, version | 1)
        before = reader.retries
        assert reader.get(shard, 9) is None
        assert reader.retries > before  # spun the full budget, then fell back
        struct.pack_into("<Q", image.buf, base, (version | 1) + 1)
        assert reader.get(shard, 9) == (True, value_for(9))

    def test_half_applied_publish_is_never_served(self, rig):
        """The stall hook parks the publisher mid-``_write_index`` — keys
        written, offsets/counters not.  A reader probing that exact state
        must fall back, and must serve correctly once the bracket closes."""
        store, image, _, reader = rig
        keys = list(range(1, 31))
        for key in keys:
            store.put(key, value_for(key))

        observed = []

        def stall(shard: int) -> float:
            for key in keys:
                if store.shard_index(key) == shard:
                    observed.append(reader.get(shard, key))
            return 0.0  # observe, don't sleep

        publisher = ShardImagePublisher(image, stall_hook=stall)
        publish_all(publisher, store)
        assert observed  # the hook did run inside the bracket
        assert all(result is None for result in observed)
        for key in keys:
            shard = store.shard_index(key)
            assert reader.get(shard, key) == (True, value_for(key))

    def test_crashed_publish_leaves_region_unservable(self, rig):
        store, image, publisher, reader = rig
        store.put(13, value_for(13))
        publish_all(publisher, store)
        shard = store.shard_index(13)
        original = publisher._write_index

        def boom(base, table, mirror):
            original(base, table, mirror)
            raise RuntimeError("publisher dies mid-publish")

        publisher._write_index = boom
        store.put(13, b"newer")
        with pytest.raises(RuntimeError):
            publisher.publish(shard, store.shard(shard))
        # version is still odd: neither the old nor the half-new state
        # is servable, so readers take the ring
        assert reader.get(shard, 13) is None
        publisher._write_index = original
        publisher.publish(shard, store.shard(shard))  # re-enters odd version
        assert reader.get(shard, 13) == (True, b"newer")

    def test_compaction_swap_bumps_generation(self, rig):
        store, image, publisher, reader = rig
        keys = list(range(1, 25))
        for key in keys:
            store.put(key, value_for(key))
        for key in keys:
            store.put(key, value_for(key + 1000))  # garbage to collect
        publish_all(publisher, store)
        shard0_keys = [k for k in keys if store.shard_index(k) == 0]
        before = region_generation(image, 0)
        store.shard(0).compact()
        publisher.publish(0, store.shard(0))
        assert region_generation(image, 0) > before
        for key in shard0_keys:
            assert reader.get(0, key) == (True, value_for(key + 1000))

    def test_log_overflow_marks_region_unservable(self):
        layout = ImageLayout(n_shards=1, max_slots=3 * 4096,
                             log_capacity=512)
        image = SharedIndexImage.create(layout)
        try:
            store = ShardedLogStore(n_shards=1, expected_items=128, seed=9)
            publisher = ShardImagePublisher(image)
            reader = SharedImageReader(image)
            store.put(1, b"x" * 400)
            publisher.publish(0, store.shard(0))
            assert reader.get(0, 1) == (True, b"x" * 400)
            store.put(2, b"y" * 400)  # mirror would exceed log_capacity
            publisher.publish(0, store.shard(0))
            assert reader.get(0, 1) is None
            assert reader.get(0, 2) is None
        finally:
            image.destroy()
