"""Sharded log-structured store backend tests (no sockets)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.core.sharded import ShardRouter
from repro.serve.store import ShardedLogStore
from repro.workloads import distinct_keys
from tests.seeding import derive


def store(n_shards=4, expected_items=1024, seed=derive(11)):
    return ShardedLogStore(n_shards=n_shards, expected_items=expected_items,
                           seed=seed)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ShardedLogStore(n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedLogStore(expected_items=0)

    def test_routing_agrees_with_shard_router(self):
        s = store(n_shards=8, seed=derive(3))
        router = ShardRouter(8, seed=derive(3))
        for key in distinct_keys(200, seed=derive(4)):
            assert s.shard_index(key) == router.shard_of(key)


class TestOperations:
    def test_put_get_delete_roundtrip(self):
        s = store()
        assert s.get(123) is None
        result = s.put(123, b"v1")
        assert result.created
        assert s.get(123) == b"v1"
        assert not s.put(123, b"v2").created
        assert s.get(123) == b"v2"
        assert s.delete(123)
        assert not s.delete(123)
        assert s.get(123) is None

    def test_empty_value_is_not_a_miss(self):
        s = store()
        s.put(5, b"")
        assert s.get(5) == b""

    def test_writes_touch_owning_shard_only(self):
        s = store()
        key = 909
        owner = s.shard_index(key)
        s.put(key, b"v")
        for index, shard in enumerate(s.shards):
            assert len(shard) == (1 if index == owner else 0)

    def test_spread_across_shards(self):
        s = store(n_shards=4)
        keys = distinct_keys(400, seed=derive(5))
        for key in keys:
            s.put(key, key.to_bytes(8, "big"))
        assert len(s) == 400
        assert all(len(shard) > 0 for shard in s.shards)
        for key in keys:
            assert s.get(key) == key.to_bytes(8, "big")


class TestStats:
    def test_snapshot_gauges(self):
        s = store()
        for key in distinct_keys(100, seed=derive(6)):
            s.put(key, b"v")
        snapshot = s.stats_snapshot()
        assert snapshot["store_items"] == 100
        assert snapshot["store_log_records"] == 100
        assert snapshot["store_garbage_ratio"] == 0.0
        assert snapshot["index_capacity"] > 0
        assert 0.0 < snapshot["index_load_ratio"] <= 1.0
        assert snapshot["index_imbalance"] >= 1.0
        assert snapshot["index_stash_population"] >= 0

    def test_garbage_gauge_tracks_updates(self):
        s = store()
        s.put(1, b"a")
        s.put(1, b"b")
        assert s.stats_snapshot()["store_garbage_ratio"] == pytest.approx(0.5)
