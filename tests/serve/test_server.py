"""Integration tests: real asyncio server + client over a loopback port."""

import asyncio
import struct
import zlib

import pytest

from repro.serve import (
    ErrorCode,
    ErrorReply,
    GetRequest,
    McCuckooClient,
    McCuckooServer,
    RequestTimeoutError,
    ServerBusyError,
    ServerConfig,
    decode_reply,
    encode_request,
    read_frame,
)
from repro.serve.loadgen import LoadgenConfig, build_workload
from repro.workloads import distinct_keys
from tests.seeding import derive


def run(coro):
    return asyncio.run(coro)


def config(**overrides) -> ServerConfig:
    defaults = dict(n_shards=4, expected_items=4096, seed=derive(0))
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestBasicOps:
    def test_roundtrip_over_loopback(self):
        async def scenario():
            async with McCuckooServer(config()) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    assert await client.get("user:1") is None
                    assert await client.put("user:1", b"ada") is True
                    assert await client.get("user:1") == b"ada"
                    assert await client.put("user:1", b"lovelace") is False
                    assert await client.get("user:1") == b"lovelace"
                    assert await client.delete("user:1") is True
                    assert await client.delete("user:1") is False
                    assert await client.get("user:1") is None

        run(scenario())

    def test_empty_and_binary_values(self):
        async def scenario():
            async with McCuckooServer(config()) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    await client.put(1, b"")
                    assert await client.get(1) == b""
                    blob = bytes(range(256)) * 64
                    await client.put(2, blob)
                    assert await client.get(2) == blob

        run(scenario())

    def test_batch_pipelines_in_order(self):
        async def scenario():
            async with McCuckooServer(config()) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    replies = await client.batch(
                        [("put", 10, b"a"), ("get", 10), ("delete", 10),
                         ("get", 10), ("stats",)]
                    )
                    assert replies[0].created is True
                    assert replies[1].found and replies[1].value == b"a"
                    assert replies[2].deleted is True
                    assert replies[3].found is False
                    assert replies[4].stats["requests"] >= 1

        run(scenario())


class TestMixedWorkloadCorrectness:
    def test_10k_zipf_ops_match_dict_model(self):
        """Acceptance: concurrent workers drive 10k mixed zipf ops; every
        reply must match a per-worker dict model (workers own disjoint
        keys, so each worker's view is exactly sequential)."""
        n_workers = 4

        async def scenario():
            async with McCuckooServer(config(expected_items=8192)) as server:
                host, port = server.address
                async with McCuckooClient(host, port,
                                          pool_size=n_workers) as client:
                    workloads = []
                    seen = set()
                    for worker_id in range(n_workers):
                        preload, ops = build_workload(
                            LoadgenConfig(workload="zipf", n_ops=2500,
                                          n_keys=400, value_size=32,
                                          seed=derive(1000) + worker_id)
                        )
                        keys = {op[1] for op in preload}
                        assert not (keys & seen), "worker key sets overlap"
                        seen |= keys
                        workloads.append(preload + ops)

                    async def worker(ops):
                        model = {}
                        divergences = 0
                        for op in ops:
                            if op[0] == "put":
                                created = await client.put(op[1], op[2])
                                if created != (op[1] not in model):
                                    divergences += 1
                                model[op[1]] = op[2]
                            elif op[0] == "delete":
                                deleted = await client.delete(op[1])
                                if deleted != (op[1] in model):
                                    divergences += 1
                                model.pop(op[1], None)
                            else:
                                value = await client.get(op[1])
                                if value != model.get(op[1]):
                                    divergences += 1
                        return divergences, model

                    results = await asyncio.gather(
                        *(worker(ops) for ops in workloads)
                    )
                    assert sum(r[0] for r in results) == 0

                    # final state: every surviving key reads back exactly
                    for _, model in results:
                        for key, expected in list(model.items())[::7]:
                            assert await client.get(key) == expected

                    stats = await client.stats()
                    total_ops = sum(len(ops) for ops in workloads)
                    assert stats["requests"] >= total_ops
                    assert stats["gets"] == stats["get_hits"] + stats["get_misses"]
                    assert stats["store_items"] == sum(
                        len(model) for _, model in results
                    )

        run(scenario())


class TestBackpressure:
    def test_saturated_writer_queue_answers_busy(self):
        """Acceptance: a stalled single-shard writer with a depth-1 queue
        must answer overflow with BUSY frames, not buffer unboundedly."""

        async def scenario():
            cfg = config(n_shards=1, writer_queue_depth=1, write_stall=0.05,
                         request_timeout=30.0)
            async with McCuckooServer(cfg) as server:
                host, port = server.address
                async with McCuckooClient(host, port, pool_size=10) as client:
                    keys = distinct_keys(20, seed=derive(77))

                    async def put(key):
                        try:
                            await client.put(key, b"v")
                            return "ok"
                        except ServerBusyError:
                            return "busy"

                    outcomes = await asyncio.gather(*(put(k) for k in keys))
                    assert outcomes.count("busy") > 0
                    assert outcomes.count("ok") > 0
                    assert server.stats.busy_rejections == outcomes.count("busy")
                    # the queue never held more than its bound
                    assert server._write_queues[0].qsize() <= 1

        run(scenario())

    def test_busy_inside_batch_is_per_op(self):
        async def scenario():
            cfg = config(n_shards=1, writer_queue_depth=1, write_stall=0.05,
                         request_timeout=30.0)
            async with McCuckooServer(cfg) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    ops = [("put", key, b"v")
                           for key in distinct_keys(12, seed=derive(78))]
                    replies = await client.batch(ops)
                    busy = [r for r in replies
                            if isinstance(r, ErrorReply)
                            and r.code is ErrorCode.BUSY]
                    ok = [r for r in replies if not isinstance(r, ErrorReply)]
                    assert busy and ok
                    assert len(busy) + len(ok) == len(ops)

        run(scenario())


class TestTimeouts:
    def test_slow_write_times_out(self):
        async def scenario():
            cfg = config(n_shards=1, write_stall=0.5, request_timeout=0.05)
            async with McCuckooServer(cfg) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    with pytest.raises(RequestTimeoutError):
                        await client.put(1, b"v")
                    assert server.stats.timeouts == 1

        run(scenario())


class TestConnectionLimit:
    def test_excess_connection_is_greeted_with_busy(self):
        async def scenario():
            async with McCuckooServer(config(max_connections=1)) as server:
                host, port = server.address
                async with McCuckooClient(host, port, pool_size=1) as client:
                    await client.put(1, b"v")  # holds the one pooled slot
                    reader, writer = await asyncio.open_connection(host, port)
                    try:
                        body = await asyncio.wait_for(read_frame(reader), 5)
                        reply = decode_reply(body)
                        assert isinstance(reply, ErrorReply)
                        assert reply.code is ErrorCode.BUSY
                    finally:
                        writer.close()
                assert server.stats.connections_rejected == 1

        run(scenario())


class TestBadInput:
    def test_garbage_frame_gets_bad_request(self):
        async def scenario():
            async with McCuckooServer(config()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    garbage = b"hello"
                    writer.write(
                        struct.pack(">II", len(garbage), zlib.crc32(garbage))
                        + garbage
                    )
                    await writer.drain()
                    reply = decode_reply(await read_frame(reader))
                    assert isinstance(reply, ErrorReply)
                    assert reply.code is ErrorCode.BAD_REQUEST
                    # connection survives a decodable-length garbage body
                    writer.write(encode_request(GetRequest(1)))
                    await writer.drain()
                    reply = decode_reply(await read_frame(reader))
                    assert not isinstance(reply, ErrorReply)
                finally:
                    writer.close()
                assert server.stats.bad_frames == 1

        run(scenario())

    def test_oversized_frame_closes_connection(self):
        async def scenario():
            cfg = config(max_frame_bytes=1024)
            async with McCuckooServer(cfg) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(struct.pack(">II", 1 << 20, 0))
                    await writer.drain()
                    reply = decode_reply(await read_frame(reader))
                    assert isinstance(reply, ErrorReply)
                    assert reply.code is ErrorCode.TOO_LARGE
                    assert await reader.read() == b""  # server hung up
                finally:
                    writer.close()

        run(scenario())
