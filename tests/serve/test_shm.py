"""Shared-memory transport: ring mechanics, epochs, and transport parity.

The unit half exercises :class:`~repro.serve.shm.ShmRing` directly —
wrap-around at every offset, backpressure, torn-write detection, and the
generation (epoch) machinery the worker supervisor leans on.  The
integration half forks real worker processes and checks that the shm and
socketpair transports are observably equivalent, that ring-full pressure
surfaces as BUSY, and that a killed worker never replays a pre-crash
request.
"""

import asyncio

import pytest

from repro.core.errors import ConfigurationError
from repro.serve import (
    McCuckooClient,
    RetryPolicy,
    ServerBusyError,
    ServerConfig,
    WorkerServer,
)
from repro.serve.faultgen import FaultgenConfig, run_faultgen
from repro.serve.protocol import ProtocolError
from repro.serve.shm import (
    SLOT_OVERHEAD,
    RingFrameTooLarge,
    ShmRing,
    ShmTransport,
    resolve_transport,
    shm_available,
)
from repro.serve.shm import _HEADER_BYTES  # noqa: F401  (test-only poke)
from tests.seeding import derive

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def run(coro):
    return asyncio.run(coro)


def config(**overrides) -> ServerConfig:
    defaults = dict(n_shards=4, expected_items=4096, seed=derive(900))
    defaults.update(overrides)
    return ServerConfig(**defaults)


@pytest.fixture
def ring():
    ring = ShmRing.create(4096)
    yield ring
    ring.close()
    ring.unlink()


def pop_bytes(ring):
    record = ring.pop()
    if record is None:
        return None
    epoch, view = record
    body = bytes(view)
    ring.advance()
    return epoch, body


class TestRingMechanics:
    def test_roundtrip_preserves_bytes(self, ring):
        assert ring.try_push(b"hello", epoch=1)
        assert pop_bytes(ring) == (1, b"hello")
        assert ring.pop() is None

    def test_fifo_order(self, ring):
        bodies = [bytes([i]) * (i + 1) for i in range(32)]
        for body in bodies:
            assert ring.try_push(body, epoch=3)
        assert [pop_bytes(ring)[1] for _ in bodies] == bodies

    def test_wraparound_at_every_offset(self, ring):
        # varied odd sizes keep the cursors cycling through every
        # alignment of the 4096-byte data area, including slots that
        # land exactly on the boundary and remnants under 4 bytes
        sizes = [1, 7, 33, 100, 255, 512, 1023]
        pushed = popped = 0
        for step in range(2000):
            body = bytes([step % 251]) * sizes[step % len(sizes)]
            assert ring.try_push(body, epoch=1), f"full at step {step}"
            pushed += len(body)
            got = pop_bytes(ring)
            assert got == (1, body), f"mismatch at step {step}"
            popped += len(body)
        assert ring.used() == 0
        assert ring.head == ring.tail
        assert ring.head > ring.capacity  # the cursors really did wrap

    def test_exact_boundary_fit(self, ring):
        # a record whose slot ends exactly at the top of the data area,
        # followed by one that must start back at offset zero
        first = ring.capacity - SLOT_OVERHEAD - (SLOT_OVERHEAD + 100)
        filler = b"\x11" * 100
        assert ring.try_push(filler, epoch=1)
        assert pop_bytes(ring) == (1, filler)
        body = b"\x22" * (ring.capacity // 2 - SLOT_OVERHEAD)
        assert ring.try_push(body, epoch=1)  # wraps via a skip marker
        assert pop_bytes(ring) == (1, body)
        assert first > 0  # sanity: the geometry above is non-degenerate

    def test_full_ring_rejects_then_recovers(self, ring):
        body = b"\x5a" * 1024
        accepted = 0
        while ring.try_push(body, epoch=1):
            accepted += 1
        assert accepted >= 2  # 4096-byte ring holds a few 1KiB records
        assert ring.try_push(body, epoch=1) is False  # transient, no raise
        assert pop_bytes(ring) == (1, body)
        assert ring.try_push(body, epoch=1)  # space reclaimed by advance

    def test_oversized_record_is_permanent_error(self, ring):
        with pytest.raises(RingFrameTooLarge):
            ring.try_push(b"\x00" * (ring.capacity // 2 + 1), epoch=1)
        # the ring stays usable afterwards
        assert ring.try_push(b"ok", epoch=1)
        assert pop_bytes(ring) == (1, b"ok")

    def test_torn_producer_write_fails_crc(self, ring):
        assert ring.try_push(b"A" * 64, epoch=1)
        # corrupt one body byte behind the producer's back
        ring._buf[_HEADER_BYTES + SLOT_OVERHEAD + 10] ^= 0xFF
        with pytest.raises(ProtocolError, match="CRC"):
            ring.pop()


class TestRingEpochs:
    def test_pop_reports_the_producer_epoch(self, ring):
        ring.try_push(b"old", epoch=1)
        ring.try_push(b"new", epoch=2)
        assert pop_bytes(ring) == (1, b"old")
        assert pop_bytes(ring) == (2, b"new")

    def test_begin_generation_drains_stale_slots(self):
        pair = ShmTransport.create(4096)
        try:
            pair.set_epoch(1)
            for i in range(3):
                assert pair.request.try_push(b"req%d" % i, epoch=1)
            assert pair.response.try_push(b"resp", epoch=1)
            dropped = pair.begin_generation(2)
            assert dropped == 4
            assert pair.stale_discarded() >= 4
            assert pair.request.pop() is None
            assert pair.response.pop() is None
            # the new generation flows normally
            assert pair.request.try_push(b"fresh", epoch=2)
            epoch, view = pair.request.pop()
            body = bytes(view)
            view.release()  # the slot view must not outlive the segment
            pair.request.advance()
            assert (epoch, body) == (2, b"fresh")
        finally:
            pair.destroy()

    def test_begin_generation_survives_a_torn_stale_slot(self):
        pair = ShmTransport.create(4096)
        try:
            pair.set_epoch(1)
            assert pair.request.try_push(b"B" * 32, epoch=1)
            pair.request._buf[_HEADER_BYTES + SLOT_OVERHEAD] ^= 0xFF
            pair.begin_generation(2)  # must not raise
            assert pair.request.pop() is None  # cursor reset to the tail
        finally:
            pair.destroy()


class TestTransportSelection:
    def test_socket_always_resolves(self):
        assert resolve_transport("socket") == "socket"

    def test_auto_resolves_to_shm_here(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_TRANSPORT", raising=False)
        assert resolve_transport("auto") == "shm"

    def test_auto_honours_environment_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_TRANSPORT", "socket")
        assert resolve_transport("auto") == "socket"

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_transport("pigeon")

    def test_explicit_shm_errors_when_unavailable(self, monkeypatch):
        import repro.serve.shm as shm_mod

        monkeypatch.setattr(shm_mod, "_SHM_PROBE", False)
        with pytest.raises(ConfigurationError):
            resolve_transport("shm")
        with pytest.raises(ConfigurationError):
            WorkerServer(config(transport="shm"), n_workers=2)

    def test_worker_server_records_resolved_transport(self):
        assert WorkerServer(config(transport="shm"),
                            n_workers=2).transport == "shm"
        assert WorkerServer(config(transport="socket"),
                            n_workers=2).transport == "socket"


def _seeded_ops(seed: int, n_ops: int, n_keys: int):
    """A deterministic mixed op stream, chunked so that some chunks are
    pure GET runs (the KIND_BATCH_KEYS fast path) and some are mixed."""
    import random

    rng = random.Random(seed)
    chunks = []
    for chunk_id in range(n_ops // 16):
        if chunk_id % 3 == 0:  # pure-GET chunk → key-run fast path
            chunks.append([("get", rng.randrange(n_keys)) for _ in range(16)])
        else:
            chunk = []
            for _ in range(16):
                key = rng.randrange(n_keys)
                roll = rng.random()
                if roll < 0.5:
                    chunk.append(("put", key,
                                  b"v%d-%d" % (key, rng.randrange(1000))))
                elif roll < 0.7:
                    chunk.append(("delete", key))
                else:
                    chunk.append(("get", key))
            chunks.append(chunk)
    return chunks


def _normalize(reply):
    return (type(reply).__name__, getattr(reply, "found", None),
            getattr(reply, "value", None), getattr(reply, "created", None),
            getattr(reply, "deleted", None), getattr(reply, "code", None))


class TestTransportEquivalence:
    def test_same_op_stream_same_replies_on_both_transports(self):
        seed = derive(901)
        chunks = _seeded_ops(seed, n_ops=640, n_keys=96)

        async def drive(transport):
            server = WorkerServer(
                config(seed=seed, transport=transport), n_workers=2
            )
            observed = []
            async with server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for chunk in chunks:
                        for reply in await client.batch(chunk):
                            observed.append(_normalize(reply))
                    stats = await client.stats()
            counters = {name: stats.get(name) for name in
                        ("gets", "puts", "deletes", "get_hits",
                         "store_items")}
            return observed, counters

        shm_replies, shm_counters = run(drive("shm"))
        socket_replies, socket_counters = run(drive("socket"))
        assert shm_replies == socket_replies
        assert shm_counters == socket_counters

    def test_scalar_ops_equivalent_across_transports(self):
        seed = derive(902)

        async def drive(transport):
            server = WorkerServer(
                config(seed=seed, transport=transport), n_workers=2
            )
            out = []
            async with server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    for key in range(60):
                        out.append(await client.put(key, b"x%d" % key))
                    for key in range(80):
                        out.append(await client.get(key))
                    for key in range(0, 60, 7):
                        out.append(await client.delete(key))
            return out

        assert run(drive("shm")) == run(drive("socket"))


class TestRingBackpressure:
    def test_ring_full_surfaces_as_busy(self):
        # a minimum-size ring, a frontend queue too deep to trip first,
        # and a stalled worker: pushes outrun pops, so some scalar puts
        # must come back BUSY while the rest land normally
        async def scenario():
            server = WorkerServer(
                config(
                    transport="shm",
                    shm_ring_bytes=4096,
                    writer_queue_depth=100_000,
                    write_stall=0.005,
                ),
                n_workers=1,
            )
            async with server:
                host, port = server.address
                async with McCuckooClient(host, port, pool_size=32) as client:
                    value = b"\x5a" * 512
                    results = await asyncio.gather(
                        *(client.put(key, value) for key in range(64)),
                        return_exceptions=True,
                    )
            ok = sum(1 for r in results if r is True)
            busy = sum(1 for r in results if isinstance(r, ServerBusyError))
            unexpected = [r for r in results
                          if r is not True
                          and not isinstance(r, ServerBusyError)]
            assert not unexpected
            return ok, busy

        ok, busy = run(scenario())
        assert ok > 0, "no put made it through the stalled ring"
        assert busy > 0, "a 4KiB ring never filled under a 5ms write stall"

    def test_oversized_batch_value_reports_too_large(self):
        # a record bigger than half the ring can never fit: the op must
        # fail loudly (TOO_LARGE), not wedge the transport
        async def scenario():
            server = WorkerServer(
                config(transport="shm", shm_ring_bytes=4096,
                       max_frame_bytes=1 << 20),
                n_workers=1,
            )
            async with server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    from repro.serve.client import ServeError

                    with pytest.raises(ServeError):
                        await client.put(1, b"\x00" * 3000)
                    # the transport survives the rejection
                    assert await client.put(2, b"small") is True
                    assert await client.get(2) == b"small"

        run(scenario())


class TestKillWorkerNoReplay:
    def test_killed_worker_never_replays_a_pre_crash_request(self):
        # kill each worker after 120 applied ops, repeatedly, over the shm
        # transport.  The faultgen audit fails on any duplicate apply: a
        # replayed put or delete would surface as a phantom value (or a
        # lost acknowledged write) on its key.
        fg = FaultgenConfig(
            n_ops=600,
            n_keys=96,
            concurrency=4,
            seed=derive(903),
            faults="kill_worker=120",
            run_timeout=60.0,
            n_workers=2,
            transport="shm",
        )
        report = run(run_faultgen(fg))
        assert report.transport == "shm"
        assert report.worker_restarts >= 1, "the kill rule never fired"
        assert report.lost_acked_writes == 0
        assert report.phantom_values == 0
        assert report.ok, report.failures

    def test_restart_generation_discards_inflight_requests(self):
        # park requests in a dead worker's request ring, restart, and
        # check the stale-slot gauge: the replacement must not consume
        # them (they belong to the previous epoch)
        async def scenario():
            server = WorkerServer(
                config(transport="shm", write_stall=0.01,
                       writer_queue_depth=100_000, durable=True),
                n_workers=1,
            )
            async with server:
                host, port = server.address
                retry = RetryPolicy(max_attempts=6, base_delay=0.01,
                                    deadline=10.0, seed=derive(904))
                async with McCuckooClient(host, port, retry=retry) as client:
                    await client.put(0, b"seed")
                    handle = server.pool.handle_for_worker(0)
                    # queue a burst the stalled worker cannot drain, then
                    # kill it with requests still sitting in the ring
                    pending = [
                        asyncio.ensure_future(client.put(k, b"burst"))
                        for k in range(1, 40)
                    ]
                    await asyncio.sleep(0.02)
                    handle._process.kill()
                    await asyncio.gather(*pending, return_exceptions=True)
                    await server.pool.await_restarts()
                    await server.pool.barrier()
                    stats = await client.stats()
                    assert stats["worker_restarts"] >= 1
                    assert stats["ring_stale_discarded"] >= 1
                    # the store still serves reads after the generation flip
                    assert await client.get(0) == b"seed"

        run(scenario())
