"""Tests for the vectorized serving paths: store.get_many and the
run-grouped BATCH handler (bulk reads, grouped writer submissions)."""

import asyncio

import pytest

from repro.apps.kvstore import LogStructuredStore
from repro.memory.model import MemoryModel
from repro.serve import (
    ErrorCode,
    ErrorReply,
    McCuckooClient,
    McCuckooServer,
    ServerConfig,
)
from repro.serve.store import ShardedLogStore
from repro.workloads import distinct_keys
from tests.seeding import derive


def run(coro):
    return asyncio.run(coro)


class TestStoreGetMany:
    def test_log_store_get_many_matches_scalar_and_accounting(self):
        scalar = LogStructuredStore(expected_items=256, seed=derive(4), mem=MemoryModel())
        batched = LogStructuredStore(expected_items=256, seed=derive(4), mem=MemoryModel())
        keys = distinct_keys(300, seed=derive(5))
        for store in (scalar, batched):
            for i, key in enumerate(keys):
                store.put(key, i)
        queries = keys[::2] + distinct_keys(100, seed=derive(6))
        expected = [scalar.get(key, default="absent") for key in queries]
        assert batched.get_many(queries, default="absent") == expected
        assert scalar.mem.summary() == batched.mem.summary()

    def test_sharded_store_get_many_preserves_order(self):
        store = ShardedLogStore(n_shards=4, expected_items=512, seed=derive(2))
        keys = distinct_keys(200, seed=derive(7))
        for i, key in enumerate(keys):
            store.put(key, bytes([i % 256]))
        missing = distinct_keys(50, seed=derive(8))
        queries = [q for pair in zip(keys[:50], missing) for q in pair]
        values = store.get_many(queries)
        assert values == [store.get(q) for q in queries]
        assert values[0::2] == [bytes([i % 256]) for i in range(50)]
        assert values[1::2] == [None] * 50

    def test_get_many_empty(self):
        store = ShardedLogStore(n_shards=2, expected_items=64)
        assert store.get_many([]) == []


def config(**overrides) -> ServerConfig:
    defaults = dict(n_shards=4, expected_items=4096, seed=derive(0))
    defaults.update(overrides)
    return ServerConfig(**defaults)


class TestBatchedBatchPath:
    def test_batch_of_gets_served_in_bulk(self):
        async def scenario():
            async with McCuckooServer(config()) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    keys = distinct_keys(64, seed=derive(11))
                    await client.batch(
                        [("put", key, bytes([i % 256]))
                         for i, key in enumerate(keys)]
                    )
                    missing = distinct_keys(16, seed=derive(12))
                    replies = await client.batch(
                        [("get", key) for key in keys + missing]
                    )
                    for i, reply in enumerate(replies[:64]):
                        assert reply.found and reply.value == bytes([i % 256])
                    assert all(not reply.found for reply in replies[64:])
                    assert server.stats.get_hits == 64
                    assert server.stats.get_misses == 16

        run(scenario())

    def test_consecutive_read_and_write_runs_stay_ordered(self):
        async def scenario():
            async with McCuckooServer(config()) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    replies = await client.batch(
                        [("put", 1, b"a"), ("put", 2, b"b"),
                         ("get", 1), ("get", 2),
                         ("put", 1, b"a2"), ("delete", 2),
                         ("get", 1), ("get", 2)]
                    )
                    assert replies[0].created and replies[1].created
                    assert replies[2].value == b"a"
                    assert replies[3].value == b"b"
                    assert replies[4].created is False  # update
                    assert replies[5].deleted is True
                    assert replies[6].value == b"a2"
                    assert replies[7].found is False

        run(scenario())

    def test_grouped_write_run_splits_at_capacity(self):
        """A single-shard batch of 5 writes against depth=2 accepts exactly
        the first two as one grouped item and BUSYs the other three."""

        async def scenario():
            cfg = config(n_shards=1, writer_queue_depth=2, write_stall=0.05,
                         request_timeout=30.0)
            async with McCuckooServer(cfg) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    keys = distinct_keys(5, seed=derive(13))
                    replies = await client.batch(
                        [("put", key, b"v") for key in keys]
                    )
                    busy = [r for r in replies if isinstance(r, ErrorReply)]
                    ok = [r for r in replies if not isinstance(r, ErrorReply)]
                    assert replies[0] in ok and replies[1] in ok
                    assert len(ok) == 2
                    assert len(busy) == 3
                    assert all(r.code is ErrorCode.BUSY for r in busy)
                    assert server.stats.busy_rejections == 3

        run(scenario())

    def test_batch_writes_fan_out_across_shards(self):
        """Writes in one batch reach every shard's writer and all apply."""

        async def scenario():
            async with McCuckooServer(config(n_shards=4)) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    keys = distinct_keys(128, seed=derive(14))
                    replies = await client.batch(
                        [("put", key, b"x") for key in keys]
                    )
                    assert all(reply.created for reply in replies)
                    shards = {server.store.shard_index(key) for key in keys}
                    assert shards == set(range(4))
                    gets = await client.batch([("get", key) for key in keys])
                    assert all(reply.value == b"x" for reply in gets)

        run(scenario())

    def test_queued_ops_gauge_settles_to_zero(self):
        async def scenario():
            async with McCuckooServer(config()) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    keys = distinct_keys(32, seed=derive(15))
                    await client.batch([("put", key, b"v") for key in keys])
                    stats = await client.stats()
                    assert stats["writer_queue_depth"] == 0

        run(scenario())


if __name__ == "__main__":
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
