"""Protocol fuzz tests: malformed frames must fail cleanly, never hang.

Three layers are attacked with seeded random mutations:

* the codec (``decode_request``/``decode_reply``) — every mutated or
  random body must raise :class:`ProtocolError` and nothing else;
* the framing (``read_frame``) — truncations, bad checksums and oversized
  declared lengths must raise :class:`ProtocolError` (or yield ``b""`` on
  a clean EOF), never block;
* a live server — garbage over a real socket gets an error reply or a
  closed connection, the server keeps serving fresh connections, and no
  partial state is left behind.
"""

import asyncio
import random
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    BatchRequest,
    ErrorReply,
    GetRequest,
    McCuckooClient,
    McCuckooServer,
    ProtocolError,
    PutRequest,
    ServerConfig,
    StatsRequest,
    decode_reply,
    decode_request,
    encode_reply,
    encode_request,
    read_frame,
)
from repro.serve.protocol import (
    FENCE_ACTIONS,
    MIGRATE_PHASES,
    REPLICA_ACTIONS,
    DeleteRequest,
    FenceFrame,
    MigrateFrame,
    PutReply,
    ReplicaFrame,
    StatsReply,
    ValueReply,
    decode_migration_frame,
    encode_fence,
    encode_migrate,
    encode_replica,
)
from repro.serve.workers import KIND_MIGRATE, pack_ipc
from tests.seeding import derive

BODY_OFFSET = 8  # u32 length + u32 crc32


def run(coro):
    return asyncio.run(coro)


def body_of(frame: bytes) -> bytes:
    return frame[BODY_OFFSET:]


def feed(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


SAMPLE_FRAMES = [
    encode_request(GetRequest(7)),
    encode_request(PutRequest(1, b"some value bytes")),
    encode_request(DeleteRequest(2**64 - 1)),
    encode_request(StatsRequest()),
    encode_request(BatchRequest((GetRequest(1), PutRequest(2, b"x")))),
    encode_reply(ValueReply(True, bytes(range(64)))),
    encode_reply(PutReply(True)),
    encode_reply(StatsReply({"a": 1.5})),
]


class TestCodecFuzz:
    def test_seeded_mutations_only_raise_protocol_error(self):
        """Any byte mutation of a valid body either still decodes or
        raises ProtocolError — no struct.error / UnicodeDecodeError /
        IndexError ever escapes the codec."""
        rng = random.Random(derive(0xF022))
        decoders = (decode_request, decode_reply)
        for _ in range(2000):
            frame = rng.choice(SAMPLE_FRAMES)
            body = bytearray(body_of(frame))
            for _ in range(rng.randrange(1, 4)):
                body[rng.randrange(len(body))] = rng.randrange(256)
            for decode in decoders:
                try:
                    decode(bytes(body))
                except ProtocolError:
                    pass  # the only acceptable exception

    def test_truncated_bodies_raise_protocol_error(self):
        for frame in SAMPLE_FRAMES:
            body = body_of(frame)
            for cut in range(len(body)):
                for decode in (decode_request, decode_reply):
                    try:
                        decode(body[:cut])
                    except ProtocolError:
                        pass

    @settings(max_examples=200, deadline=None)
    @given(blob=st.binary(max_size=200))
    def test_arbitrary_bytes_never_crash_codec(self, blob):
        for decode in (decode_request, decode_reply):
            try:
                decode(blob)
            except ProtocolError:
                pass


class TestFramingFuzz:
    def test_checksum_mismatch_raises(self):
        frame = bytearray(encode_request(GetRequest(5)))
        frame[-1] ^= 0x40  # flip a body byte; prefix untouched
        async def scenario():
            with pytest.raises(ProtocolError, match="checksum"):
                await read_frame(feed(bytes(frame)))
        run(scenario())

    def test_every_truncation_point_fails_cleanly(self):
        frame = encode_request(PutRequest(3, b"payload-bytes"))
        async def scenario():
            for cut in range(len(frame)):
                reader = feed(frame[:cut])
                if cut == 0:
                    assert await read_frame(reader) == b""
                else:
                    with pytest.raises(ProtocolError):
                        await asyncio.wait_for(read_frame(reader), 5)
        run(scenario())

    def test_oversized_length_rejected_without_reading_body(self):
        prefix = struct.pack(">II", 1 << 30, 0)
        async def scenario():
            with pytest.raises(ProtocolError, match="exceeds"):
                await read_frame(feed(prefix), max_frame_bytes=1024)
        run(scenario())

    def test_undersized_length_rejected(self):
        body = b"xy"
        frame = struct.pack(">II", len(body), zlib.crc32(body)) + body
        async def scenario():
            with pytest.raises(ProtocolError, match="too short"):
                await read_frame(feed(frame))
        run(scenario())

    def test_seeded_random_frame_mutations(self):
        """Flip random bytes anywhere in whole frames: read_frame either
        returns a body equal to the original (mutation missed this frame's
        bytes... impossible here, we always mutate) or raises."""
        rng = random.Random(derive(0xF4A3))
        async def scenario():
            for _ in range(400):
                frame = bytearray(rng.choice(SAMPLE_FRAMES))
                frame[rng.randrange(len(frame))] ^= rng.randrange(1, 256)
                reader = feed(bytes(frame))
                try:
                    body = await asyncio.wait_for(read_frame(reader), 5)
                except ProtocolError:
                    continue
                # a length-prefix mutation can still frame a *shorter*
                # prefix of the stream; the CRC must then have matched
                assert zlib.crc32(body) & 0xFFFFFFFF == struct.unpack(
                    ">I", frame[4:8]
                )[0]
        run(scenario())


class TestServerUnderFuzz:
    def _config(self):
        return ServerConfig(n_shards=2, expected_items=1024, seed=derive(0))

    def test_garbage_connections_leave_server_healthy(self):
        rng = random.Random(derive(0x5E4F))
        payloads = []
        for _ in range(25):
            choice = rng.random()
            if choice < 0.4:  # framed garbage body
                body = bytes(rng.randrange(256) for _ in range(
                    rng.randrange(3, 40)))
                payloads.append(
                    struct.pack(">II", len(body), zlib.crc32(body)) + body)
            elif choice < 0.7:  # corrupted valid frame
                frame = bytearray(rng.choice(SAMPLE_FRAMES))
                frame[rng.randrange(len(frame))] ^= rng.randrange(1, 256)
                payloads.append(bytes(frame))
            else:  # raw noise, framing lost
                payloads.append(bytes(rng.randrange(256) for _ in range(
                    rng.randrange(1, 30))))

        async def scenario():
            async with McCuckooServer(self._config()) as server:
                host, port = server.address
                for payload in payloads:
                    reader, writer = await asyncio.open_connection(host, port)
                    try:
                        writer.write(payload)
                        await writer.drain()
                        writer.write_eof()
                        # server must answer and/or hang up — never stall
                        await asyncio.wait_for(reader.read(), 5)
                    finally:
                        writer.close()
                # the server still serves clean traffic afterwards
                async with McCuckooClient(host, port) as client:
                    await client.put(1, b"alive")
                    assert await client.get(1) == b"alive"
                    stats = await client.stats()
                    # garbage never made it into the store
                    assert stats["store_items"] == 1
        run(scenario())

    def test_fuzzed_request_gets_error_reply_and_connection_survives(self):
        async def scenario():
            async with McCuckooServer(self._config()) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    body = b"\xc3\x01\x99garbage"  # valid header, bad opcode
                    writer.write(struct.pack(
                        ">II", len(body), zlib.crc32(body)) + body)
                    await writer.drain()
                    reply = decode_reply(await asyncio.wait_for(
                        read_frame(reader), 5))
                    assert isinstance(reply, ErrorReply)
                    # same connection still works
                    writer.write(encode_request(GetRequest(1)))
                    await writer.drain()
                    reply = decode_reply(await asyncio.wait_for(
                        read_frame(reader), 5))
                    assert not isinstance(reply, ErrorReply)
                finally:
                    writer.close()
        run(scenario())


class TestMigrationFrameFuzz:
    """The resharding control frames must fail closed: a damaged
    MIGRATE/FENCE/REPLICA body raises ProtocolError — it can never decode
    into a *different-but-valid* routing instruction (silent routing
    corruption is how a migration loses a shard)."""

    FRAMES = [
        encode_migrate(MigrateFrame("snapshot", 3, 7)),
        encode_migrate(MigrateFrame("install", 0, 1, b"log-image-bytes")),
        encode_migrate(MigrateFrame("delta", 2, 9, b"\x00" * 8)),
        encode_migrate(MigrateFrame("apply", 2, 9, b"tail")),
        encode_migrate(MigrateFrame("activate", 1, 4)),
        encode_migrate(MigrateFrame("release", 1, 4)),
        encode_migrate(MigrateFrame("abort", 5, 2)),
        encode_fence(FenceFrame("fence", 6, 11)),
        encode_fence(FenceFrame("ack", 6, 11)),
        encode_replica(ReplicaFrame(
            "apply", 0, 3, body_of(encode_request(PutRequest(9, b"v"))))),
        encode_replica(ReplicaFrame("ack", 0, 3)),
    ]

    def test_round_trips(self):
        for body in self.FRAMES:
            frame = decode_migration_frame(body)
            if isinstance(frame, MigrateFrame):
                assert encode_migrate(frame) == body
            elif isinstance(frame, FenceFrame):
                assert encode_fence(frame) == body
            else:
                assert encode_replica(frame) == body

    def test_every_truncation_point_raises(self):
        for body in self.FRAMES:
            for cut in range(len(body)):
                with pytest.raises(ProtocolError):
                    decode_migration_frame(body[:cut])

    def test_trailing_bytes_raise(self):
        for body in self.FRAMES:
            with pytest.raises(ProtocolError):
                decode_migration_frame(body + b"\x00")

    def test_epoch_confusion_raises(self):
        """A header/trailer epoch mismatch — the one corruption the CRC
        layer cannot rule out once a frame is re-packed — fails closed."""
        for body in self.FRAMES:
            damaged = bytearray(body)
            damaged[-1] ^= 0x01  # trailer echo no longer matches header
            with pytest.raises(ProtocolError, match="epoch confusion"):
                decode_migration_frame(bytes(damaged))

    def test_unknown_phase_and_action_indexes_raise(self):
        for body, n_valid in (
            (encode_migrate(MigrateFrame("snapshot", 1, 2)),
             len(MIGRATE_PHASES)),
            (encode_fence(FenceFrame("fence", 1, 2)), len(FENCE_ACTIONS)),
            (encode_replica(ReplicaFrame("apply", 1, 2)),
             len(REPLICA_ACTIONS)),
        ):
            damaged = bytearray(body)
            damaged[3] = n_valid  # selector byte just past the table
            with pytest.raises(ProtocolError, match="index"):
                decode_migration_frame(bytes(damaged))

    def test_encode_rejects_unknown_names_and_oversized_fields(self):
        with pytest.raises(ProtocolError):
            encode_migrate(MigrateFrame("teleport", 0, 0))
        with pytest.raises(ProtocolError):
            encode_fence(FenceFrame("open", 0, 0))
        with pytest.raises(ProtocolError):
            encode_replica(ReplicaFrame("drop", 0, 0))
        with pytest.raises(ProtocolError):
            encode_migrate(MigrateFrame("snapshot", 1 << 32, 0))
        with pytest.raises(ProtocolError):
            encode_migrate(MigrateFrame("snapshot", 0, 1 << 32))

    def test_request_decoder_rejects_migration_bodies(self):
        """Migration opcodes live outside the client opcode space: a
        migration frame leaking into the request path is an unknown
        opcode, never a misread client op."""
        for body in self.FRAMES:
            for decode in (decode_request, decode_reply):
                with pytest.raises(ProtocolError):
                    decode(body)

    def test_seeded_mutations_never_escape_protocol_error(self):
        rng = random.Random(derive(0xF1A7))
        originals = {bytes(body) for body in self.FRAMES}
        for _ in range(3000):
            body = bytearray(rng.choice(self.FRAMES))
            for _ in range(rng.randrange(1, 4)):
                body[rng.randrange(len(body))] = rng.randrange(256)
            try:
                frame = decode_migration_frame(bytes(body))
            except ProtocolError:
                continue
            # decodable mutants must re-encode to exactly the mutated
            # bytes (i.e. the mutation landed inside payload/shard/epoch
            # fields and the frame is still self-consistent) — never to
            # some third frame
            if isinstance(frame, MigrateFrame):
                encoded = encode_migrate(frame)
            elif isinstance(frame, FenceFrame):
                encoded = encode_fence(frame)
            else:
                encoded = encode_replica(frame)
            assert encoded == bytes(body)

    def test_crc_layer_catches_transport_flips(self):
        """Through the IPC envelope (pack_ipc → read_frame), a flipped
        bit in a migration frame is caught by the CRC before the codec
        ever sees it."""
        rng = random.Random(derive(0xF1A8))
        async def scenario():
            for _ in range(200):
                body = rng.choice(self.FRAMES)
                envelope = bytearray(pack_ipc(5, KIND_MIGRATE, bytes(body)))
                envelope[BODY_OFFSET + rng.randrange(
                    len(envelope) - BODY_OFFSET)] ^= rng.randrange(1, 256)
                with pytest.raises(ProtocolError, match="checksum"):
                    await asyncio.wait_for(read_frame(feed(bytes(envelope))), 5)
        run(scenario())
