"""Live resharding: phase matrix under injected crashes, transport
parity, replica failover, and the migrating faultgen audit.

The crash matrix leans on the deterministic per-worker consult order of
``kill_worker_during=migration``: the source worker consults the rule at
snapshot=1, delta=2, fence=3, final delta=4, release=5; the target at
install=1, apply=2, final apply=3, activate=4.  So ``migration:N@W``
kills worker ``W`` at exactly one phase boundary, and the matrix proves
the one invariant that matters at every boundary: **no acknowledged
write is ever lost** — a pre-commit crash aborts with the source image
intact, a post-commit crash recovers the target from the shared durable
log file.
"""

import asyncio
import os
import signal

import pytest

from repro.core.errors import ConfigurationError
from repro.faults import FaultPlan
from repro.serve import (
    McCuckooClient,
    ServerBusyError,
    ServerConfig,
    WorkerServer,
    shm_available,
)
from repro.serve.faultgen import FaultgenConfig, run_faultgen
from tests.seeding import derive

pytestmark = pytest.mark.timeout(120)


def run(coro):
    return asyncio.run(coro)


def config(**overrides) -> ServerConfig:
    defaults = dict(n_shards=4, expected_items=4096, seed=derive(0x8E5A),
                    durable=True)
    defaults.update(overrides)
    return ServerConfig(**defaults)


def transports():
    """Both worker transports, shm only where the platform supports it."""
    values = ["socket"]
    if shm_available():
        values.insert(0, "shm")
    return values


async def fill(client, n_keys, tag=b"v"):
    """Acked writes only — the matrix audits exactly these."""
    expected = {}
    for key in range(1, n_keys + 1):
        value = tag + b"%d" % key
        if await client.put(key, value):
            expected[key] = value
    return expected


async def audit(client, expected):
    lost = [key for key, value in expected.items()
            if await client.get(key) != value]
    assert lost == [], f"lost acknowledged writes for keys {lost}"


class TestBasicMigration:
    def test_migration_moves_shard_and_keeps_data(self):
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    expected = await fill(client, 120)
                    assert server.routing.worker_of_shard(0) == 0
                    report = await server.reshard(0, 1)
                    assert report.committed, report.error
                    assert report.epoch_before == 0
                    assert report.epoch_after == 1
                    assert report.bytes_copied > 0
                    assert server.routing.worker_of_shard(0) == 1
                    assert 0 in server.routing.shards_of_worker(1)
                    await audit(client, expected)
                    # writes keep landing after the flip, on the new owner
                    routed_before = server.pool.handle_for_worker(1).ops_routed
                    for key in (k for k in expected
                                if server._router.shard_of(k) == 0):
                        await client.put(key, b"post-flip")
                        assert await client.get(key) == b"post-flip"
                        break
                    assert (server.pool.handle_for_worker(1).ops_routed
                            > routed_before)
                    stats = await client.stats()
                    assert stats["routing_epoch"] == 1
                    assert stats["migrations_committed"] == 1
                    assert stats["migrations_aborted"] == 0
                    assert stats["migrations_active"] == 0
                    assert stats["fenced_shards"] == 0
        run(scenario())

    def test_migration_round_trip_back_to_source(self):
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    expected = await fill(client, 80)
                    assert (await server.reshard(2, 1)).committed
                    assert (await server.reshard(2, 0)).committed
                    assert server.routing_epoch == 2
                    assert server.routing.worker_of_shard(2) == 0
                    await audit(client, expected)
        run(scenario())

    def test_noop_and_invalid_targets(self):
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                report = await server.reshard(0, 0)  # already the owner
                assert not report.committed
                assert server.routing_epoch == 0
                with pytest.raises(ConfigurationError):
                    await server.reshard(99, 0)
                with pytest.raises(ConfigurationError):
                    await server.reshard(0, 99)
        run(scenario())

    def test_migrated_shard_survives_target_restart(self):
        """Post-commit the target owns the shard durably: kill it after
        the migration and the supervisor's restart must re-own and
        recover the migrated shard from the shared log file."""
        async def scenario():
            async with WorkerServer(config(), n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    expected = await fill(client, 100)
                    assert (await server.reshard(0, 1)).committed
                    victim = server.pool.handle_for_worker(1)
                    os.kill(victim._process.pid, signal.SIGKILL)
                    await asyncio.sleep(0.05)
                    await server.pool.await_restarts()
                    restarted = server.pool.handle_for_worker(1)
                    assert 0 in restarted.hello["shards"]
                    await audit(client, expected)
        run(scenario())


# (victim_worker, consult_count, commits) — the full phase matrix; see
# the module docstring for the consult-order contract behind it.
PHASE_MATRIX = [
    pytest.param(0, 1, False, id="source-snapshot"),
    pytest.param(0, 2, False, id="source-delta"),
    pytest.param(0, 3, False, id="source-fence"),
    pytest.param(0, 4, False, id="source-final-delta"),
    pytest.param(0, 5, True, id="source-release"),
    pytest.param(1, 1, False, id="target-install"),
    pytest.param(1, 2, False, id="target-apply"),
    pytest.param(1, 3, False, id="target-final-apply"),
    pytest.param(1, 4, True, id="target-activate"),
]


class TestCrashMatrix:
    """Kill a worker at every migration phase boundary; acked writes
    must survive and the server must keep serving either way."""

    @pytest.mark.parametrize("victim,consult,commits", PHASE_MATRIX)
    def test_crash_at_phase_boundary(self, victim, consult, commits):
        plan = FaultPlan.parse(
            f"kill_worker_during=migration:{consult}@{victim}",
            seed=derive(0x8E5B),
        )
        async def scenario():
            async with WorkerServer(config(fault_plan=plan),
                                    n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    expected = await fill(client, 60)
                    report = await server.reshard(0, 1)
                    assert report.committed == commits, (
                        f"consult {consult}@{victim}: {report.phases} "
                        f"{report.error}"
                    )
                    expected_epoch = 1 if commits else 0
                    assert server.routing_epoch == expected_epoch
                    assert server.routing.worker_of_shard(0) == (
                        1 if commits else 0
                    )
                    assert len(server._fences) == 0  # fence always lifted
                    await server.pool.await_restarts()
                    await audit(client, expected)
                    # the server still takes writes on the shard it moved
                    # (or kept), wherever routing says it lives now
                    await client.put(1, b"after-crash")
                    assert await client.get(1) == b"after-crash"
        run(scenario())


class TestTransportParity:
    def test_same_migration_same_image_on_both_transports(self):
        """One scenario under each transport: identical final images.

        The migration machinery rides the ordinary IPC envelope, so the
        surviving key→value map — the observable store image — must be
        byte-identical between shm rings and socketpair streams.
        """
        if not shm_available():
            pytest.skip("shm transport unavailable on this platform")

        async def scenario(transport):
            image = {}
            async with WorkerServer(config(transport=transport),
                                    n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    expected = await fill(client, 150)
                    assert (await server.reshard(0, 1)).committed
                    assert (await server.reshard(3, 0)).committed
                    for key in range(1, 171):  # includes 20 absent keys
                        image[key] = await client.get(key)
                    await audit(client, expected)
                    assert server.routing_epoch == 2
            return image

        shm_image = run(scenario("shm"))
        socket_image = run(scenario("socket"))
        assert shm_image == socket_image
        assert any(value is not None for value in shm_image.values())
        run(scenario("shm"))  # deterministic under repetition too


class TestReplicaReads:
    def test_owner_death_degrades_to_replica_reads(self):
        async def scenario():
            async with WorkerServer(config(replicas=1),
                                    n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    expected = await fill(client, 80)
                    await server.drain_writes()  # replica applies drained
                    # suppress the supervisor so the degradation window
                    # is deterministic, then kill the owner of shards 0+2
                    server.pool._stopping = True
                    victim = server.pool.handle_for_worker(0)
                    os.kill(victim._process.pid, signal.SIGKILL)
                    while victim.alive:
                        await asyncio.sleep(0.01)
                    owner_keys = [
                        key for key in expected
                        if server._worker_of_key(key) == 0
                    ]
                    assert owner_keys, "seed must route keys to worker 0"
                    for key in owner_keys:  # reads fail over
                        assert await client.get(key) == expected[key]
                    stats = await client.stats()
                    assert stats["replica_reads"] >= len(owner_keys)
                    assert stats["replica_enabled"] == 1
                    # writes do NOT fail over: read-only degradation
                    with pytest.raises(ServerBusyError):
                        await client.put(owner_keys[0], b"rejected")
                    assert await client.get(owner_keys[0]) == (
                        expected[owner_keys[0]]
                    )
                    server.pool._stopping = False
        run(scenario())

    def test_replica_applies_track_acked_writes(self):
        async def scenario():
            async with WorkerServer(config(replicas=1),
                                    n_workers=2) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    await fill(client, 64)
                    await server.drain_writes()
                    stats = await client.stats()
                    assert stats["replica_applies"] == 64
                    assert stats["replica_lag"] == 0
                    assert stats["replica_errors"] == 0
        run(scenario())

    def test_single_worker_disables_replicas(self):
        async def scenario():
            async with WorkerServer(config(replicas=1),
                                    n_workers=1) as server:
                assert server.replicas == 0
                assert server.replica_of_shard(0) is None
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    assert await client.put(1, b"x")
                    stats = await client.stats()
                    assert stats["replica_enabled"] == 0
                    assert stats["replica_applies"] == 0
        run(scenario())


class TestMigratingFaultgen:
    """The extended audit: acked writes must survive live migrations —
    including migrations whose workers are killed mid-phase — on both
    transports, with the key→worker map re-derived per routing epoch."""

    @pytest.mark.parametrize("transport", transports())
    def test_zero_lost_acked_writes_with_kills_mid_migration(
            self, transport):
        report = run(run_faultgen(FaultgenConfig(
            n_ops=700, n_keys=96, concurrency=4, seed=derive(0x8E5C),
            n_workers=2, migrate=True, transport=transport,
            faults=("busy=0.01; drop_connection=0.005; "
                    "kill_worker_during=migration:2@0"),
            run_timeout=60.0,
        )))
        assert report.ok, report.failures[:5]
        assert report.lost_acked_writes == 0
        assert report.phantom_values == 0
        assert report.faults_fired.get("kill_worker_during", 0) >= 1
        assert report.migrations_committed + report.migrations_aborted >= 1

    def test_clean_migrations_commit_and_audit_holds(self):
        report = run(run_faultgen(FaultgenConfig(
            n_ops=700, n_keys=96, concurrency=4, seed=derive(0x8E5D),
            n_workers=2, migrate=True, faults="busy=0.005",
            run_timeout=60.0,
        )))
        assert report.ok, report.failures[:5]
        assert report.migrations_committed >= 1
        assert report.routing_epoch >= 1
        assert report.lost_acked_writes == 0
