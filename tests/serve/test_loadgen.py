"""Load-generator tests: pure op construction plus a live closed-loop run."""

import asyncio

import pytest

from repro.serve import (
    LoadgenConfig,
    McCuckooServer,
    ServerConfig,
    build_workload,
    run_loadgen,
)
from repro.serve.loadgen import percentile, value_bytes
from tests.seeding import derive


class TestBuildWorkload:
    def test_reproducible(self):
        cfg = LoadgenConfig(n_ops=500, n_keys=100, seed=derive(5))
        assert build_workload(cfg) == build_workload(cfg)

    def test_zipf_shape(self):
        preload, ops = build_workload(
            LoadgenConfig(workload="zipf", n_ops=1000, n_keys=200, seed=derive(1))
        )
        assert len(preload) == 200
        assert all(op[0] == "put" for op in preload)
        assert len(ops) == 1000
        assert {op[0] for op in ops} <= {"get", "put", "delete"}

    def test_zipf_skews_toward_head(self):
        preload, ops = build_workload(
            LoadgenConfig(workload="zipf", n_ops=2000, n_keys=500,
                          zipf_s=1.2, seed=derive(2), get_ratio=1.0, put_ratio=0.0,
                          delete_ratio=0.0)
        )
        hot = {op[1] for op in preload[:10]}
        hits = sum(1 for op in ops if op[1] in hot)
        assert hits > len(ops) * 0.3  # 2% of keys draw >30% of traffic

    def test_ycsb_maps_to_client_verbs(self):
        preload, ops = build_workload(
            LoadgenConfig(workload="ycsb-A", n_ops=400, n_keys=100, seed=derive(3))
        )
        assert len(preload) == 100
        kinds = {op[0] for op in ops}
        assert kinds <= {"get", "put"}
        assert "get" in kinds and "put" in kinds

    def test_mixed_has_no_preload_and_includes_deletes(self):
        preload, ops = build_workload(
            LoadgenConfig(workload="mixed", n_ops=1500, n_keys=100, seed=derive(4),
                          delete_ratio=0.2)
        )
        assert preload == []
        assert any(op[0] == "delete" for op in ops)

    def test_rejects_unknown_workload(self):
        with pytest.raises(ValueError, match="workload"):
            LoadgenConfig(workload="nope")

    def test_churn_preloads_and_turns_keys_over(self):
        preload, ops = build_workload(
            LoadgenConfig(workload="churn", n_ops=1200, n_keys=160,
                          seed=derive(11))
        )
        assert len(preload) == 160
        assert all(op[0] == "put" for op in preload)
        kinds = {op[0] for op in ops}
        assert kinds == {"get", "put", "delete"}
        # churn inserts brand-new keys, not just the preloaded set
        preloaded = {op[1] for op in preload}
        fresh_puts = [op for op in ops
                      if op[0] == "put" and op[1] not in preloaded]
        assert fresh_puts

    def test_churn_reproducible(self):
        cfg = LoadgenConfig(workload="churn", n_ops=600, n_keys=80,
                            seed=derive(12))
        assert build_workload(cfg) == build_workload(cfg)

    def test_diurnal_ramps_occupancy(self):
        preload, ops = build_workload(
            LoadgenConfig(workload="diurnal", n_ops=2000, n_keys=128,
                          seed=derive(13))
        )
        assert preload == []  # the ramp-up IS the preload
        kinds = {op[0] for op in ops}
        assert kinds == {"get", "put", "delete"}
        live, high_water = set(), 0
        for op in ops:
            if op[0] == "put":
                live.add(op[1])
            elif op[0] == "delete":
                live.discard(op[1])
            high_water = max(high_water, len(live))
        assert high_water > 128 // 2  # climbs well past base occupancy

    def test_value_bytes_deterministic_and_sized(self):
        assert value_bytes(1, 2, 64) == value_bytes(1, 2, 64)
        assert len(value_bytes(1, 2, 64)) == 64
        assert value_bytes(1, 2, 64) != value_bytes(1, 3, 64)
        assert len(value_bytes(1, 2, 8)) == 8


class TestPercentile:
    def test_empty(self):
        assert percentile([], 99) == 0.0

    def test_single(self):
        assert percentile([4.2], 50) == 4.2
        assert percentile([4.2], 99) == 4.2

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0


class TestLiveRun:
    def test_report_over_live_server(self):
        async def scenario():
            cfg = ServerConfig(n_shards=4, expected_items=4096)
            async with McCuckooServer(cfg) as server:
                host, port = server.address
                report = await run_loadgen(
                    host, port,
                    LoadgenConfig(workload="zipf", n_ops=2000, n_keys=400,
                                  concurrency=8, seed=derive(9)),
                )
                stats = server.stats
                return report, stats

        report, stats = asyncio.run(scenario())
        assert report.completed == 2000
        assert report.busy == report.timeouts == report.errors == 0
        assert report.ops_per_sec > 0
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms
        assert sum(report.per_kind.values()) == 2000
        assert stats.requests >= 2000
        rendered = report.render()
        assert "ops/s" in rendered and "p99" in rendered

    def test_batched_run(self):
        async def scenario():
            async with McCuckooServer(ServerConfig(n_shards=2)) as server:
                host, port = server.address
                return await run_loadgen(
                    host, port,
                    LoadgenConfig(workload="uniform", n_ops=1000, n_keys=200,
                                  concurrency=4, batch_size=16, seed=derive(10)),
                )

        report = asyncio.run(scenario())
        assert report.completed == 1000
        assert report.errors == 0
