"""Client resilience tests against a scripted fake server.

The fake speaks the real wire protocol but follows a per-request script
(BUSY, drop the connection, apply-then-drop, stall forever), which makes
retry/backoff/deadline behaviour exactly reproducible without any fault
timing.
"""

import asyncio
import itertools

import pytest

from repro.serve import (
    McCuckooClient,
    ProtocolError,
    RetryPolicy,
    ServerBusyError,
)
from repro.serve.client import RequestTimeoutError
from repro.serve.protocol import (
    DeleteReply,
    DeleteRequest,
    ErrorCode,
    ErrorReply,
    GetRequest,
    PutReply,
    PutRequest,
    StatsReply,
    ValueReply,
    decode_request,
    encode_reply,
    read_frame,
    write_frame,
)
from tests.seeding import derive


def run(coro):
    return asyncio.run(coro)


class ScriptedServer:
    """A protocol-correct server that consumes one scripted action per
    request: "ok", "busy", "drop" (close before replying),
    "apply_then_drop" (mutate state, then close — the lost-ack case), or
    "stall" (never reply).  An exhausted script defaults to "ok"."""

    def __init__(self, script=()):
        self.script = list(script)
        self.requests = 0
        self.store = {}
        self._server = None

    async def __aenter__(self):
        self._server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        return self

    async def __aexit__(self, *exc_info):
        self._server.close()
        await self._server.wait_closed()

    @property
    def address(self):
        return self._server.sockets[0].getsockname()[:2]

    def _apply(self, request):
        if isinstance(request, PutRequest):
            created = request.key not in self.store
            self.store[request.key] = request.value
            return PutReply(created)
        if isinstance(request, GetRequest):
            value = self.store.get(request.key)
            return ValueReply(value is not None, value or b"")
        if isinstance(request, DeleteRequest):
            return DeleteReply(self.store.pop(request.key, None) is not None)
        return StatsReply({})

    async def _handle(self, reader, writer):
        try:
            while True:
                body = await read_frame(reader)
                if not body:
                    return
                request = decode_request(body)
                self.requests += 1
                action = self.script.pop(0) if self.script else "ok"
                if action == "stall":
                    await asyncio.sleep(3600)
                    return
                if action == "drop":
                    writer.close()
                    return
                if action == "apply_then_drop":
                    self._apply(request)
                    writer.close()
                    return
                if action == "busy":
                    reply = ErrorReply(ErrorCode.BUSY, "scripted busy")
                else:
                    reply = self._apply(request)
                await write_frame(writer, encode_reply(reply))
        except (ProtocolError, ConnectionError, OSError):
            pass


def fast_policy(**overrides):
    defaults = dict(max_attempts=6, base_delay=0.001, max_delay=0.005,
                    jitter=0.2, seed=derive(9))
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestRetryPolicySchedule:
    def test_same_seed_same_delays(self):
        a = RetryPolicy(seed=derive(100))
        b = RetryPolicy(seed=derive(100))
        assert list(itertools.islice(a.delays(), 20)) == \
               list(itertools.islice(b.delays(), 20))

    def test_delays_regenerate_per_request(self):
        policy = RetryPolicy(seed=derive(101))
        assert list(itertools.islice(policy.delays(), 10)) == \
               list(itertools.islice(policy.delays(), 10))

    def test_schedule_shape(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05,
                             jitter=0.2, seed=derive(102))
        raw = [0.01, 0.02, 0.04, 0.05, 0.05, 0.05]
        for delay, expected in zip(policy.delays(), raw):
            assert expected * 0.8 <= delay <= expected * 1.2

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay=0.01, multiplier=3.0, max_delay=1.0,
                             jitter=0.0)
        assert list(itertools.islice(policy.delays(), 3)) == \
               [0.01, 0.03, 0.09]

    @pytest.mark.parametrize("kwargs", [
        dict(max_attempts=0),
        dict(base_delay=-0.1),
        dict(max_delay=-1.0),
        dict(multiplier=0.5),
        dict(jitter=1.0),
        dict(jitter=-0.2),
    ])
    def test_invalid_policies_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestBusyRetries:
    def test_busy_storm_resolves(self):
        async def scenario():
            async with ScriptedServer(["busy"] * 3) as server:
                host, port = server.address
                async with McCuckooClient(host, port,
                                          retry=fast_policy()) as client:
                    assert await client.put(1, b"v") is True
                assert server.requests == 4
                assert client.retries == 3
                assert server.store == {1: b"v"}
        run(scenario())

    def test_exhausted_attempts_surface_busy(self):
        async def scenario():
            async with ScriptedServer(["busy"] * 10) as server:
                host, port = server.address
                policy = fast_policy(max_attempts=4)
                async with McCuckooClient(host, port, retry=policy) as client:
                    with pytest.raises(ServerBusyError):
                        await client.put(1, b"v")
                assert server.requests == 4
                assert client.retries == 4
        run(scenario())

    def test_without_policy_busy_raises_immediately(self):
        async def scenario():
            async with ScriptedServer(["busy"]) as server:
                host, port = server.address
                async with McCuckooClient(host, port) as client:
                    with pytest.raises(ServerBusyError):
                        await client.put(1, b"v")
                assert server.requests == 1
                assert client.retries == 0
        run(scenario())


class TestConnectionLoss:
    def test_dropped_connection_is_replayed(self):
        async def scenario():
            async with ScriptedServer(["drop"]) as server:
                host, port = server.address
                async with McCuckooClient(host, port,
                                          retry=fast_policy()) as client:
                    assert await client.put(5, b"value") is True
                assert client.retries == 1
                assert server.store == {5: b"value"}
        run(scenario())

    def test_lost_ack_replay_is_idempotent(self):
        """The server applies the put, then drops the ack.  The replay is
        indistinguishable from a fresh request; state must converge to
        exactly one value with no corruption."""
        async def scenario():
            async with ScriptedServer(["apply_then_drop"]) as server:
                host, port = server.address
                async with McCuckooClient(host, port,
                                          retry=fast_policy()) as client:
                    created = await client.put(7, b"exact-bytes")
                    # the replay sees the already-applied write: not created
                    assert created is False
                    assert await client.get(7) == b"exact-bytes"
                assert server.requests == 3  # put, replayed put, get
                assert server.store == {7: b"exact-bytes"}
        run(scenario())


class TestDeadline:
    def test_stalled_server_hits_deadline(self):
        async def scenario():
            async with ScriptedServer(["stall"] * 10) as server:
                host, port = server.address
                policy = fast_policy(deadline=0.2, max_attempts=50)
                async with McCuckooClient(host, port, retry=policy) as client:
                    loop = asyncio.get_running_loop()
                    begin = loop.time()
                    with pytest.raises(RequestTimeoutError):
                        await client.put(1, b"v")
                    elapsed = loop.time() - begin
                    assert elapsed < 2.0  # bounded, not max_attempts * stall
                    # nothing is sent after the deadline fires
                    seen = server.requests
                    await asyncio.sleep(0.15)
                    assert server.requests == seen
                assert server.store == {}
        run(scenario())

    def test_deadline_caps_backoff_sleeps(self):
        async def scenario():
            async with ScriptedServer(["busy"] * 1000) as server:
                host, port = server.address
                policy = RetryPolicy(max_attempts=1000, base_delay=0.05,
                                     max_delay=1.0, jitter=0.0,
                                     deadline=0.15, seed=derive(11))
                async with McCuckooClient(host, port, retry=policy) as client:
                    loop = asyncio.get_running_loop()
                    begin = loop.time()
                    with pytest.raises(RequestTimeoutError):
                        await client.get(1)
                    assert loop.time() - begin < 1.0
        run(scenario())
