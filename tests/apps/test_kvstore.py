"""Tests for the log-structured KV store application layer."""

import pytest

from repro.apps import (
    CorruptLogError,
    LogStructuredStore,
    ValueLog,
    scan_log_bytes,
)
from repro.core.errors import TableFullError
from repro.core.results import InsertOutcome, InsertStatus
from repro.workloads import distinct_keys


class TestValueLog:
    def test_append_returns_sequential_offsets(self):
        log = ValueLog()
        assert log.append(1, "a") == 0
        assert log.append(2, "b") == 1
        assert len(log) == 2

    def test_read_roundtrip(self):
        log = ValueLog()
        offset = log.append(7, {"x": 1})
        record = log.read(offset)
        assert record.key == 7 and record.value == {"x": 1}
        assert not record.is_tombstone

    def test_tombstones(self):
        log = ValueLog()
        offset = log.append_tombstone(9)
        assert log.read(offset).is_tombstone

    def test_read_out_of_range(self):
        with pytest.raises(IndexError):
            ValueLog().read(0)


class TestStoreBasics:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LogStructuredStore(expected_items=0)

    def test_put_get(self):
        store = LogStructuredStore(expected_items=100, seed=1)
        store.put("user:1", {"name": "ada"})
        assert store.get("user:1") == {"name": "ada"}
        assert "user:1" in store
        assert store.get("user:2", "absent") == "absent"

    def test_update_points_to_newest(self):
        store = LogStructuredStore(expected_items=100, seed=2)
        store.put("k", "v1")
        store.put("k", "v2")
        assert store.get("k") == "v2"
        assert len(store) == 1
        assert store.log_records == 2  # old record is garbage

    def test_delete(self):
        store = LogStructuredStore(expected_items=100, seed=3)
        store.put("k", 1)
        assert store.delete("k")
        assert "k" not in store
        assert not store.delete("k")
        assert len(store) == 0

    def test_many_items(self):
        store = LogStructuredStore(expected_items=500, seed=4)
        keys = distinct_keys(500, seed=5)
        for index, key in enumerate(keys):
            store.put(key, index)
        assert len(store) == 500
        for index, key in enumerate(keys):
            assert store.get(key) == index

    def test_items_iterates_live_set(self):
        store = LogStructuredStore(expected_items=100, seed=6)
        store.put(1, "a")
        store.put(2, "b")
        store.delete(1)
        assert dict(store.items()) == {2: "b"}

    def test_index_grows_online(self):
        store = LogStructuredStore(expected_items=64, seed=7)
        keys = distinct_keys(1000, seed=8)
        for key in keys:
            store.put(key, key & 0xFF)
        assert store.index.generations >= 1
        for key in keys[::17]:
            assert store.get(key) == key & 0xFF


class TestPutAtomicity:
    """A rejected index insert must not leak an unreachable log record."""

    def test_raising_index_put_leaks_no_log_record(self, monkeypatch):
        store = LogStructuredStore(expected_items=100, seed=30)
        store.put("settled", "v")
        records_before = store.log_records
        garbage_before = store.garbage_ratio

        def explode(key, value):
            raise RuntimeError("injected index failure")

        monkeypatch.setattr(store.index, "put", explode)
        with pytest.raises(RuntimeError, match="injected"):
            store.put("doomed", "v")
        monkeypatch.undo()

        assert store.log_records == records_before
        assert store.garbage_ratio == garbage_before
        assert "doomed" not in store
        assert len(store) == 1
        # the store keeps working afterwards
        store.put("next", "w")
        assert store.get("next") == "w"

    def test_failed_index_put_leaks_no_log_record(self, monkeypatch):
        store = LogStructuredStore(expected_items=100, seed=31)
        monkeypatch.setattr(
            store.index,
            "put",
            lambda key, value: InsertOutcome(InsertStatus.FAILED),
        )
        with pytest.raises(TableFullError):
            store.put("doomed", "v")
        monkeypatch.undo()
        assert store.log_records == 0
        assert len(store) == 0
        assert store.garbage_ratio == 0.0

    def test_put_reports_index_outcome(self):
        store = LogStructuredStore(expected_items=100, seed=32)
        assert store.put("k", "v1").status is InsertStatus.STORED
        assert store.put("k", "v2").status is InsertStatus.UPDATED


class TestGarbageAndCompaction:
    def test_garbage_ratio_tracks_dead_records(self):
        store = LogStructuredStore(expected_items=100, seed=9)
        assert store.garbage_ratio == 0.0
        store.put("k", "v1")
        store.put("k", "v2")
        assert store.garbage_ratio == pytest.approx(0.5)

    def test_compact_drops_garbage_preserves_data(self):
        store = LogStructuredStore(expected_items=200, seed=10)
        keys = distinct_keys(150, seed=11)
        for key in keys:
            store.put(key, "old")
        for key in keys[:75]:
            store.put(key, "new")
        for key in keys[75:100]:
            store.delete(key)
        dropped = store.compact()
        assert dropped > 0
        assert store.garbage_ratio == 0.0
        for key in keys[:75]:
            assert store.get(key) == "new"
        for key in keys[75:100]:
            assert key not in store
        for key in keys[100:]:
            assert store.get(key) == "old"

    def test_compact_empty_store(self):
        store = LogStructuredStore(expected_items=10, seed=12)
        assert store.compact() == 0


class TestRecovery:
    def test_recover_replays_log(self):
        store = LogStructuredStore(expected_items=200, seed=13)
        keys = distinct_keys(120, seed=14)
        for index, key in enumerate(keys):
            store.put(key, index)
        for key in keys[:30]:
            store.delete(key)
        for key in keys[30:60]:
            store.put(key, "updated")
        recovered = store.recover()
        assert len(recovered) == len(store)
        for key in keys[:30]:
            assert key not in recovered
        for key in keys[30:60]:
            assert recovered.get(key) == "updated"
        for index, key in enumerate(keys):
            if index >= 60:
                assert recovered.get(key) == index

    def test_recovered_store_starts_with_zero_garbage(self):
        """Replaying tombstones verbatim used to append *fresh* tombstones
        to the recovered log; recovery must rebuild only live state."""
        store = LogStructuredStore(expected_items=200, seed=33)
        keys = distinct_keys(80, seed=34)
        for key in keys:
            store.put(key, "v1")
        for key in keys[:40]:
            store.put(key, "v2")  # superseded records
        for key in keys[40:60]:
            store.delete(key)  # tombstones
        assert store.garbage_ratio > 0.0

        recovered = store.recover()
        assert recovered.garbage_ratio == 0.0
        assert recovered.log_records == len(recovered) == 60
        for key in keys[:40]:
            assert recovered.get(key) == "v2"
        for key in keys[40:60]:
            assert key not in recovered
        for key in keys[60:]:
            assert recovered.get(key) == "v1"

    def test_recover_empty_store(self):
        recovered = LogStructuredStore(expected_items=10, seed=35).recover()
        assert len(recovered) == 0
        assert recovered.garbage_ratio == 0.0

    def test_recover_after_compaction(self):
        store = LogStructuredStore(expected_items=100, seed=15)
        keys = distinct_keys(50, seed=16)
        for key in keys:
            store.put(key, "v")
        store.delete(keys[0])
        store.compact()
        recovered = store.recover()
        assert len(recovered) == 49
        assert keys[0] not in recovered


class TestAccounting:
    def test_get_costs_index_plus_one_log_read(self):
        store = LogStructuredStore(expected_items=400, seed=17)
        keys = distinct_keys(100, seed=18)
        for key in keys:
            store.put(key, "v")
        before = store.mem.off_chip.reads
        store.get(keys[0])
        reads = store.mem.off_chip.reads - before
        # index probes (0-3) + exactly one value-log read
        assert 1 <= reads <= 4

    def test_missing_get_often_free(self):
        """The counter screen means most missing gets never touch off-chip
        memory at all — the property that makes McCuckoo a good KV index."""
        store = LogStructuredStore(expected_items=800, seed=19)
        present = distinct_keys(200, seed=20)
        for key in present:
            store.put(key, "v")
        from repro.workloads import missing_keys

        absent = missing_keys(200, set(present), seed=21)
        free = 0
        for key in absent:
            before = store.mem.off_chip.reads
            assert store.get(key) is None
            if store.mem.off_chip.reads == before:
                free += 1
        assert free > len(absent) // 2


class TestScanLogBytes:
    """scan_log_bytes edge cases: the torn-tail boundary must be exact."""

    def _image(self, n_records=5, seed=37):
        store = LogStructuredStore(expected_items=64, seed=seed, durable=True)
        for index in range(n_records):
            store.put(index, b"payload-%02d" % index)
        return store.log_bytes

    def test_empty_log(self):
        records, report = scan_log_bytes(b"")
        assert records == []
        assert report.records_replayed == 0
        assert report.bytes_scanned == 0
        assert report.bytes_truncated == 0
        assert not report.torn_tail

    def test_log_ending_exactly_at_record_boundary(self):
        image = self._image(n_records=5)
        records, report = scan_log_bytes(image)
        assert len(records) == 5
        assert not report.torn_tail
        assert report.bytes_truncated == 0
        assert sum(record.size for record in records) == len(image)
        # any clean record-boundary prefix is also not torn
        cut = image[: records[0].size + records[1].size]
        prefix, prefix_report = scan_log_bytes(cut)
        assert len(prefix) == 2
        assert not prefix_report.torn_tail

    def test_cut_inside_trailing_crc_field(self):
        """A record missing the last 2 bytes of its CRC is a torn write:
        the whole record drops, every record before it survives."""
        image = self._image(n_records=5)
        records, _ = scan_log_bytes(image)
        cut = image[: len(image) - 2]  # mid-CRC of the final record
        kept, report = scan_log_bytes(cut)
        assert len(kept) == 4
        assert report.torn_tail
        assert report.bytes_truncated == records[-1].size - 2
        assert [record.key for record in kept] == \
               [record.key for record in records[:4]]

    def test_cut_inside_length_prefix(self):
        image = self._image(n_records=3)
        records, _ = scan_log_bytes(image)
        boundary = records[0].size + records[1].size
        cut = image[: boundary + 2]  # 2 of the 4 length-prefix bytes
        kept, report = scan_log_bytes(cut)
        assert len(kept) == 2
        assert report.torn_tail
        assert report.bytes_truncated == 2

    def test_flipped_byte_in_tail_record_truncates(self):
        image = bytearray(self._image(n_records=4))
        image[-6] ^= 0x01  # payload byte of the final record
        kept, report = scan_log_bytes(bytes(image))
        assert len(kept) == 3
        assert report.torn_tail

    def test_flipped_byte_mid_log_raises(self):
        image = bytearray(self._image(n_records=4))
        records, _ = scan_log_bytes(bytes(image))
        image[records[0].size + 8] ^= 0x01  # inside record 1, not the tail
        with pytest.raises(CorruptLogError):
            scan_log_bytes(bytes(image))
