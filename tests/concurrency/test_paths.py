"""Tests for counter-guided cuckoo-path discovery."""

from repro import McCuckoo
from repro.concurrency import find_cuckoo_path
from repro.workloads import distinct_keys, key_stream


class TestFindCuckooPath:
    def test_direct_placement_on_empty_table(self):
        table = McCuckoo(32, d=3, seed=300)
        key = distinct_keys(1, seed=301)[0]
        path = find_cuckoo_path(table, table._canonical(key))
        assert path is not None
        assert len(path) == 1
        assert path[0] in table._candidates(table._canonical(key))

    def test_terminal_has_counter_not_one(self):
        table = McCuckoo(48, d=3, seed=302)
        for key in distinct_keys(120, seed=303):
            table.put(key)
        probe = distinct_keys(1, seed=304)[0]
        path = find_cuckoo_path(table, table._canonical(probe))
        assert path is not None
        assert table._counters.peek(path[-1]) != 1

    def test_interior_nodes_are_sole_copies(self):
        table = McCuckoo(32, d=3, seed=305)
        keys = key_stream(seed=306)
        path = None
        while True:
            key = next(keys)
            k = table._canonical(key)
            path = find_cuckoo_path(table, k)
            if path is not None and len(path) > 1:
                break
            table.put(key)
        for bucket in path[:-1]:
            assert table._counters.peek(bucket) == 1

    def test_path_hops_follow_occupant_candidates(self):
        """Each hop's destination must be a candidate bucket of the source's
        occupant, or the move would be illegal."""
        table = McCuckoo(32, d=3, seed=307)
        keys = key_stream(seed=308)
        while True:
            key = next(keys)
            k = table._canonical(key)
            path = find_cuckoo_path(table, k)
            if path is not None and len(path) >= 2:
                break
            table.put(key)
        for src, dst in zip(path[:-1], path[1:]):
            occupant = table._keys[src]
            assert dst in table._candidates(occupant)

    def test_root_is_candidate_of_new_key(self):
        table = McCuckoo(32, d=3, seed=309)
        keys = key_stream(seed=310)
        while True:
            key = next(keys)
            k = table._canonical(key)
            path = find_cuckoo_path(table, k)
            if path is not None and len(path) >= 2:
                break
            table.put(key)
        assert path[0] in table._candidates(k)

    def test_returns_none_when_budget_exhausted(self):
        table = McCuckoo(8, d=3, seed=311, maxloop=500)
        keys = key_stream(seed=312)
        # overfill so that paths become long or nonexistent
        for _ in range(int(table.capacity * 0.95)):
            table.put(next(keys))
        probe = table._canonical(next(keys))
        path = find_cuckoo_path(table, probe, max_nodes=0)
        if any(table._counters.peek(b) != 1 for b in table._candidates(probe)):
            assert path is not None and len(path) == 1
        else:
            assert path is None

    def test_search_charges_reads_for_expansions_only(self):
        table = McCuckoo(64, d=3, seed=313)
        key = distinct_keys(1, seed=314)[0]
        before = table.mem.off_chip.reads
        find_cuckoo_path(table, table._canonical(key))
        # empty table: direct terminal, no expansion, no off-chip reads
        assert table.mem.off_chip.reads == before
