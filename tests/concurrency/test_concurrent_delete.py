"""Concurrent (stepwise) deletion: readers never lose unrelated keys."""

import pytest

from repro import ConcurrentMcCuckoo, DeletionMode, McCuckoo
from repro.core import check_mccuckoo
from repro.core.errors import UnsupportedOperationError
from repro.workloads import distinct_keys


def concurrent_table(seed=850, mode=DeletionMode.RESET, n_buckets=64):
    return ConcurrentMcCuckoo(
        McCuckoo(n_buckets, d=3, seed=seed, maxloop=200, deletion_mode=mode)
    )


class TestBlockingDelete:
    def test_delete_removes_key(self):
        table = concurrent_table()
        keys = distinct_keys(80, seed=851)
        for key in keys:
            table.insert(key, key % 3)
        outcome = table.delete(keys[0])
        assert outcome.deleted
        assert keys[0] not in table
        assert len(table) == len(keys) - 1

    def test_delete_missing(self):
        table = concurrent_table(seed=852)
        table.insert(1)
        assert not table.delete(2).deleted

    def test_disabled_mode_raises(self):
        table = concurrent_table(seed=853, mode=DeletionMode.DISABLED)
        table.insert(1)
        with pytest.raises(UnsupportedOperationError):
            table.delete(1)

    def test_delete_from_stash_falls_back(self):
        table = ConcurrentMcCuckoo(
            McCuckoo(6, d=3, seed=854, maxloop=0, deletion_mode=DeletionMode.RESET)
        )
        from repro.workloads import key_stream

        keys = key_stream(seed=855)
        stashed = None
        while stashed is None:
            key = next(keys)
            table.insert(key)
            if table.last_outcome.stashed:
                stashed = table.table._canonical(key)
        outcome = table.delete(stashed)
        assert outcome.deleted and outcome.from_stash


class TestStepwiseDelete:
    def test_other_keys_visible_at_every_step(self):
        table = concurrent_table(seed=856)
        keys = distinct_keys(int(table.table.capacity * 0.7), seed=857)
        for key in keys:
            table.insert(key, key & 0xF)
        survivors = keys[1::2]
        for victim in keys[::2]:
            stepper = table.delete_stepwise(victim)
            for _ in stepper:
                # probe a handful of unrelated keys at each boundary
                for probe in survivors[:6]:
                    outcome = table.lookup(probe)
                    assert outcome.found
                    assert outcome.value == probe & 0xF
        for probe in survivors:
            assert table.lookup(probe).found
        check_mccuckoo(table.table)

    def test_counters_zeroed_one_per_step(self):
        table = concurrent_table(seed=858)
        keys = distinct_keys(20, seed=859)
        for key in keys:
            table.insert(key)
        victim = keys[0]
        copies = table.table.copies_of(victim)
        assert copies
        steps = [label for label in table.delete_stepwise(victim)]
        zero_steps = [label for label in steps if label.startswith("zeroed:")]
        assert len(zero_steps) == len(copies)
        assert table.last_delete.copies_removed == len(copies)

    def test_version_quiescent_after_delete(self):
        table = concurrent_table(seed=860)
        table.insert(5)
        table.delete(5)
        assert table.version % 2 == 0

    def test_mixed_insert_delete_churn(self):
        table = concurrent_table(seed=861, n_buckets=32)
        live = {}
        keys = distinct_keys(300, seed=862)
        for index, key in enumerate(keys):
            table.insert(key, index)
            live[table.table._canonical(key)] = index
            if index % 3 == 0 and len(live) > 5:
                victim = next(iter(live))
                table.delete(victim)
                del live[victim]
        for key, value in live.items():
            outcome = table.lookup(key)
            assert outcome.found and outcome.value == value
        check_mccuckoo(table.table)

    def test_deleted_key_eventually_not_found(self):
        table = concurrent_table(seed=863)
        keys = distinct_keys(30, seed=864)
        for key in keys:
            table.insert(key)
        for _ in table.delete_stepwise(keys[0]):
            pass
        assert not table.lookup(keys[0]).found
