"""SeqlockRegion protocol tests: torn reads never validate, loudly or not.

The region under test is a plain dict mutated by a scripted "writer"
that interleaves with the reader at exact points (the version-load
callback), so every schedule here is deterministic — including the one
where the writer lands mid-read and the reader's first snapshot is torn.
"""

import pytest

from repro.concurrency import SeqlockContentionError, SeqlockRegion


class TestSeqlockRegion:
    def test_uncontended_read(self):
        region = SeqlockRegion(lambda: 0)
        result, spent = region.read(lambda: 42)
        assert result == 42
        assert spent == 0
        assert region.retries == 0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            SeqlockRegion(lambda: 0, max_retries=0)
        region = SeqlockRegion(lambda: 0)
        with pytest.raises(ValueError):
            region.read(lambda: 1, max_retries=0)

    def test_stuck_odd_version_raises(self):
        region = SeqlockRegion(lambda: 7, max_retries=3)
        with pytest.raises(SeqlockContentionError) as info:
            region.read(lambda: "never")
        assert info.value.retries == 3
        assert region.retries == 3

    def test_torn_pair_never_validates(self):
        """A writer updates (a, b) non-atomically while the reader is
        mid-read.  The validated result must be a consistent pair — the
        torn (new a, old b) view the reader actually computed on its
        first attempt is thrown away."""
        state = {"version": 0, "a": 0, "b": 0}
        script = iter(["tear", "finish"])

        def load_version() -> int:
            action = next(script, None)
            if action == "tear":  # writer starts: a updated, version odd
                state["a"] += 1
                state["version"] += 1
            elif action == "finish":  # writer completes: b updated, even
                state["b"] += 1
                state["version"] += 1
            return state["version"]

        region = SeqlockRegion(load_version)
        (a, b), spent = region.read(lambda: (state["a"], state["b"]))
        assert a == b == 1
        assert spent >= 1
        assert region.retries == spent

    def test_version_move_between_snapshots_retries(self):
        """An even→even version jump across the read (a full writer pass
        landed) also invalidates: unchanged is the rule, not just even."""
        versions = iter([0, 2, 2, 2])
        region = SeqlockRegion(lambda: next(versions))
        calls = []
        result, spent = region.read(lambda: calls.append(1) or len(calls))
        assert result == 2  # second attempt's view
        assert spent == 1
        assert len(calls) == 2

    def test_retries_accumulate_across_reads(self):
        versions = iter([1, 0, 0, 1, 0, 0])
        region = SeqlockRegion(lambda: next(versions))
        region.read(lambda: None)
        region.read(lambda: None)
        assert region.retries == 2
