"""One-writer-many-readers tests: no reader ever misses a stored item."""

from repro import ConcurrentMcCuckoo, McCuckoo
from repro.concurrency import (
    InterleaveReport,
    InterleavingHarness,
    SeqlockContentionError,
)
from repro.core import check_mccuckoo
from repro.workloads import distinct_keys


def concurrent_table(n_buckets=64, seed=320):
    return ConcurrentMcCuckoo(McCuckoo(n_buckets, d=3, seed=seed, maxloop=500))


class TestBlockingInsert:
    def test_insert_and_lookup(self):
        table = concurrent_table()
        for key in distinct_keys(100, seed=321):
            outcome = table.insert(key, key % 9)
            assert outcome.stored
        for key in distinct_keys(100, seed=321):
            assert table.get(key) == key % 9
        check_mccuckoo(table.table)

    def test_high_load_insert_via_paths(self):
        table = concurrent_table(n_buckets=96, seed=322)
        keys = distinct_keys(int(table.table.capacity * 0.85), seed=323)
        for key in keys:
            table.insert(key)
        assert len(table) == len(keys)
        for key in keys[::7]:
            assert key in table
        check_mccuckoo(table.table)

    def test_version_even_after_insert(self):
        table = concurrent_table(seed=324)
        table.insert(5)
        assert table.version % 2 == 0

    def test_stash_fallback_when_no_path(self):
        table = ConcurrentMcCuckoo(
            McCuckoo(4, d=3, seed=325, maxloop=500), max_path_nodes=4
        )
        stashed = 0
        for key in distinct_keys(40, seed=326):
            outcome = table.insert(key)
            if outcome.stashed:
                stashed += 1
        assert stashed > 0
        for key in distinct_keys(40, seed=326):
            assert key in table


class TestStepwiseInterleaving:
    def test_no_reader_misses_any_item(self):
        table = concurrent_table(n_buckets=48, seed=327)
        harness = InterleavingHarness(table, probe_sample=10, seed=328)
        report = InterleaveReport()
        keys = distinct_keys(int(table.table.capacity * 0.8), seed=329)
        for key in keys:
            harness.insert_with_probes(key, key & 0xFF, report=report)
        assert report.probes > 1000
        assert report.linearizable
        assert report.missed_keys == []
        assert report.wrong_values == []

    def test_moves_duplicate_before_overwrite(self):
        """During a path execution the moved occupant is findable at every
        step (it exists in both src and dst between steps)."""
        table = concurrent_table(n_buckets=24, seed=330)
        keys = distinct_keys(200, seed=331)
        installed = []
        for key in keys:
            stepper = table.insert_stepwise(key)
            for label in stepper:
                if label.startswith("moved:"):
                    for probe in installed:
                        assert table.lookup(probe).found
            if table.last_outcome is not None and not table.last_outcome.failed:
                installed.append(key)
            if len(installed) >= int(table.table.capacity * 0.8):
                break

    def test_table_consistent_after_stepwise_inserts(self):
        table = concurrent_table(n_buckets=32, seed=332)
        for key in distinct_keys(int(table.table.capacity * 0.7), seed=333):
            for _ in table.insert_stepwise(key):
                pass
        check_mccuckoo(table.table)

    def test_last_outcome_reports_kicks(self):
        table = concurrent_table(n_buckets=16, seed=334)
        saw_path_insert = False
        for key in distinct_keys(int(table.table.capacity * 0.9), seed=335):
            table.insert(key)
            if table.last_outcome.kicks > 0:
                saw_path_insert = True
        assert saw_path_insert


class TestSeqlockReader:
    def test_reader_raises_on_stuck_odd_version(self):
        """A version stuck odd exhausts the retry budget loudly — the
        reader must never silently return a potentially torn value."""
        table = concurrent_table(seed=336)
        table.insert(1, "x")
        table.version += 1  # simulate writer mid-step
        try:
            table.lookup(1, max_retries=4)
        except SeqlockContentionError as exc:
            assert exc.retries == 4
        else:
            raise AssertionError("expected SeqlockContentionError")
        assert table.lookup_retries >= 4
        table.version += 1  # writer finishes; reads validate again
        outcome = table.lookup(1)
        assert outcome.found
        assert outcome.retries == 0

    def test_reader_retry_under_writer_churn(self):
        """Forced writer churn: every other probe's first read attempt is
        invalidated by a full writer pass landing mid-read.  The probes
        must retry (surfaced via ``lookup_retries``) and never return a
        missing key or a torn-move value."""
        table = concurrent_table(n_buckets=48, seed=340)
        harness = InterleavingHarness(table, probe_sample=6, seed=341)
        report = InterleaveReport()

        inner = table.table.lookup
        churn = {"count": 0}

        def churned_lookup(key):
            result = inner(key)
            churn["count"] += 1
            if churn["count"] % 2 == 1:
                table.version += 2  # a whole writer pass landed mid-read
            return result

        table.table.lookup = churned_lookup
        keys = distinct_keys(int(table.table.capacity * 0.6), seed=342)
        for key in keys:
            harness.insert_with_probes(key, key & 0xFF, report=report)
        assert report.probes > 500
        assert report.linearizable
        assert report.missed_keys == []
        assert report.wrong_values == []
        assert table.lookup_retries > 0

    def test_len_passthrough(self):
        table = concurrent_table(seed=337)
        table.insert(1)
        table.insert(2)
        assert len(table) == 2

    def test_get_default(self):
        table = concurrent_table(seed=338)
        assert table.get(999, "none") == "none"
