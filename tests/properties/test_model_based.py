"""Model-based testing: every table must behave exactly like a dict.

Hypothesis drives random insert/lookup/delete sequences against a table and
a shadow dict; after every step the results must agree, and the structural
invariant checkers must pass.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro import (
    BCHT,
    BlockedMcCuckoo,
    CuckooTable,
    DeletionMode,
    McCuckoo,
    SiblingTracking,
)
from repro.core import check_blocked, check_mccuckoo

KEYS = st.integers(min_value=0, max_value=400)
VALUES = st.integers(min_value=0, max_value=1 << 16)


class _TableMachine(RuleBasedStateMachine):
    """Common rules; subclasses provide make_table() and check()."""

    def __init__(self):
        super().__init__()
        self.table = self.make_table()
        self.model = {}

    @rule(key=KEYS, value=VALUES)
    def upsert(self, key, value):
        outcome = self.table.upsert(key, value)
        if not outcome.failed:
            self.model[self.table._canonical(key)] = value

    @rule(key=KEYS)
    def lookup(self, key):
        outcome = self.table.lookup(key)
        canonical = self.table._canonical(key)
        assert outcome.found == (canonical in self.model)
        if outcome.found:
            assert outcome.value == self.model[canonical]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def lookup_existing(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        outcome = self.table.lookup(key)
        assert outcome.found
        assert outcome.value == self.model[key]

    @rule(key=KEYS)
    def delete(self, key):
        outcome = self.table.delete(key)
        canonical = self.table._canonical(key)
        assert outcome.deleted == (canonical in self.model)
        self.model.pop(canonical, None)

    @invariant()
    def sizes_agree(self):
        assert len(self.table) == len(self.model)

    @invariant()
    def structure_sound(self):
        self.check()


class McCuckooResetMachine(_TableMachine):
    def make_table(self):
        return McCuckoo(24, d=3, seed=1, maxloop=100,
                        deletion_mode=DeletionMode.RESET)

    def check(self):
        check_mccuckoo(self.table)


class McCuckooTombstoneMachine(_TableMachine):
    def make_table(self):
        return McCuckoo(24, d=3, seed=2, maxloop=100,
                        deletion_mode=DeletionMode.TOMBSTONE)

    def check(self):
        check_mccuckoo(self.table)


class McCuckooMetadataMachine(_TableMachine):
    def make_table(self):
        return McCuckoo(24, d=3, seed=3, maxloop=100,
                        deletion_mode=DeletionMode.RESET,
                        sibling_tracking=SiblingTracking.METADATA)

    def check(self):
        check_mccuckoo(self.table)


class BlockedMachine(_TableMachine):
    def make_table(self):
        return BlockedMcCuckoo(10, d=3, slots=3, seed=4, maxloop=100,
                               deletion_mode=DeletionMode.RESET)

    def check(self):
        check_blocked(self.table)


class CuckooBaselineMachine(_TableMachine):
    def make_table(self):
        return CuckooTable(24, d=3, seed=5, maxloop=100)

    def check(self):
        pass


class BCHTBaselineMachine(_TableMachine):
    def make_table(self):
        return BCHT(10, d=3, slots=3, seed=6, maxloop=100)

    def check(self):
        pass


_SETTINGS = settings(max_examples=25, stateful_step_count=40, deadline=None)

TestMcCuckooReset = McCuckooResetMachine.TestCase
TestMcCuckooReset.settings = _SETTINGS
TestMcCuckooTombstone = McCuckooTombstoneMachine.TestCase
TestMcCuckooTombstone.settings = _SETTINGS
TestMcCuckooMetadata = McCuckooMetadataMachine.TestCase
TestMcCuckooMetadata.settings = _SETTINGS
TestBlocked = BlockedMachine.TestCase
TestBlocked.settings = _SETTINGS
TestCuckooBaseline = CuckooBaselineMachine.TestCase
TestCuckooBaseline.settings = _SETTINGS
TestBCHTBaseline = BCHTBaselineMachine.TestCase
TestBCHTBaseline.settings = _SETTINGS


class ResizableMachine(_TableMachine):
    def make_table(self):
        from repro.core.resize import ResizableMcCuckoo

        return ResizableMcCuckoo(
            8, d=3, seed=7, maxloop=100, grow_at=0.7, migrate_batch=2
        )

    def check(self):
        check_mccuckoo(self.table.active_table)
        if self.table.retiring_table is not None:
            check_mccuckoo(self.table.retiring_table)


TestResizable = ResizableMachine.TestCase
TestResizable.settings = _SETTINGS
