"""Property tests specific to the blocked B-McCuckoo variant."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import BlockedMcCuckoo, DeletionMode
from repro.core import check_blocked
from repro.workloads import distinct_keys, missing_keys


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    n_items=st.integers(min_value=1, max_value=140),
)
@settings(max_examples=15, deadline=None)
def test_fill_keeps_invariants_and_findability(seed, n_items):
    table = BlockedMcCuckoo(8, d=3, slots=3, seed=seed, maxloop=100)
    keys = distinct_keys(n_items, seed=seed + 1)
    for key in keys:
        table.put(key, key & 0xFF)
    check_blocked(table)
    for key in keys:
        outcome = table.lookup(key)
        assert outcome.found and outcome.value == key & 0xFF


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    n_items=st.integers(min_value=1, max_value=120),
)
@settings(max_examples=15, deadline=None)
def test_every_candidate_bucket_touched(seed, n_items):
    """Algorithm 1 phase A: after inserting k, none of k's candidate
    buckets can be all-zero (the basis of the zero-sum screen)."""
    table = BlockedMcCuckoo(8, d=3, slots=3, seed=seed, maxloop=100)
    for key in distinct_keys(n_items, seed=seed + 3):
        table.put(key)
        for bucket in table._candidates(table._canonical(key)):
            word = [
                table._counters.peek(table._slot_index(bucket, s))
                for s in range(table.slots)
            ]
            assert any(word)


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    load=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=10, deadline=None)
def test_zero_sum_screen_sound(seed, load):
    """A missing lookup that hits a dead bucket must cost zero off-chip
    reads and must be correct (the key really was never inserted)."""
    table = BlockedMcCuckoo(12, d=3, slots=3, seed=seed)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 5)
    for key in keys:
        table.put(key)
    for key in missing_keys(40, set(keys), seed=seed + 7):
        dead = any(
            not any(
                table._counters.peek(table._slot_index(bucket, s))
                for s in range(table.slots)
            )
            for bucket in table._candidates(key)
        )
        before = table.mem.off_chip.reads
        outcome = table.lookup(key)
        assert not outcome.found
        if dead:
            assert table.mem.off_chip.reads == before


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    n_items=st.integers(min_value=20, max_value=120),
    delete_every=st.integers(min_value=2, max_value=4),
)
@settings(max_examples=10, deadline=None)
def test_churn_equivalence_with_dict(seed, n_items, delete_every):
    table = BlockedMcCuckoo(10, d=3, slots=3, seed=seed,
                            deletion_mode=DeletionMode.RESET, maxloop=100)
    live = {}
    for index, key in enumerate(distinct_keys(n_items, seed=seed + 9)):
        table.put(key, index)
        live[table._canonical(key)] = index
        if index % delete_every == 0:
            victim = next(iter(live))
            table.delete(victim)
            del live[victim]
    for key, value in live.items():
        outcome = table.lookup(key)
        assert outcome.found and outcome.value == value
    check_blocked(table)


@given(seed=st.integers(min_value=0, max_value=1 << 20))
@settings(max_examples=10, deadline=None)
def test_slot_metadata_popcount_matches_counter(seed):
    """Every live slot's sibling map must name exactly counter-value slots."""
    table = BlockedMcCuckoo(10, d=3, slots=3, seed=seed, maxloop=100)
    for key in distinct_keys(150, seed=seed + 11):
        table.put(key)
    for index in range(table.capacity):
        value = table._counters.peek(index)
        if value == 0:
            continue
        slotmap = table._slotmaps[index]
        assert slotmap is not None
        assert sum(1 for slot in slotmap if slot is not None) == value
