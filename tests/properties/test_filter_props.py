"""Property-based tests for the filter substrates."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.filters import BloomFilter, CuckooFilter

KEY = st.integers(min_value=0, max_value=1 << 48)


@given(keys=st.lists(KEY, min_size=1, max_size=150, unique=True),
       seed=st.integers(min_value=0, max_value=1 << 16))
@settings(max_examples=30, deadline=None)
def test_cuckoo_filter_no_false_negatives(keys, seed):
    filt = CuckooFilter(128, slots_per_bucket=4, seed=seed)
    added = [key for key in keys if filt.add(key)]
    for key in added:
        assert key in filt


@given(keys=st.lists(KEY, min_size=1, max_size=100, unique=True),
       seed=st.integers(min_value=0, max_value=1 << 16))
@settings(max_examples=20, deadline=None)
def test_cuckoo_filter_remove_restores_count(keys, seed):
    filt = CuckooFilter(256, seed=seed)
    added = [key for key in keys if filt.add(key)]
    assert len(filt) == len(added)
    for key in added:
        assert filt.remove(key)
    assert len(filt) == 0


class CuckooFilterMachine(RuleBasedStateMachine):
    """Multiset-model check: the filter must never forget an added key."""

    @initialize(seed=st.integers(min_value=0, max_value=1 << 16))
    def setup(self, seed):
        self.filter = CuckooFilter(64, slots_per_bucket=4, maxloop=50, seed=seed)
        self.model = {}  # key -> count
        self.full = False

    @rule(key=st.integers(min_value=0, max_value=200))
    def add(self, key):
        if self.full:
            return
        if self.filter.add(key):
            self.model[key] = self.model.get(key, 0) + 1
        else:
            # the parked victim still counts as present
            self.model[key] = self.model.get(key, 0) + 1
            self.full = True

    @rule(key=st.integers(min_value=0, max_value=200))
    def remove(self, key):
        removed = self.filter.remove(key)
        if self.model.get(key, 0) > 0:
            assert removed
            self.model[key] -= 1
            if not self.model[key]:
                del self.model[key]
        # a remove of an absent key may false-positively remove another
        # key's identical fingerprint; the reference implementation has the
        # same caveat, so we only track definite members
        elif removed:
            self.model = {
                k: c for k, c in self.model.items() if k in self.filter or c == 0
            }

    @invariant()
    def no_false_negatives(self):
        for key, count in self.model.items():
            if count > 0:
                assert key in self.filter

    @invariant()
    def count_at_least_model(self):
        assert len(self.filter) >= sum(self.model.values()) - len(self.model)


TestCuckooFilterMachine = CuckooFilterMachine.TestCase
TestCuckooFilterMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)


@given(
    keys=st.lists(KEY, min_size=1, max_size=200, unique=True),
    m_bits=st.integers(min_value=64, max_value=4096),
    k_hashes=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_bloom_filter_properties(keys, m_bits, k_hashes):
    bloom = BloomFilter(m_bits, k_hashes, seed=1)
    for key in keys:
        bloom.add(key)
    # no false negatives, monotone bit count, sane fp estimate
    assert all(key in bloom for key in keys)
    assert 0 < bloom.bits_set <= min(m_bits, len(keys) * k_hashes)
    assert 0.0 < bloom.expected_fp_rate() <= 1.0
