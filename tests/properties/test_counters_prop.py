"""Property-based tests: PackedArray behaves like a bounded list of ints."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.counters import PackedArray

BITS = st.sampled_from([1, 2, 4, 8])


@given(
    bits=BITS,
    length=st.integers(min_value=1, max_value=200),
    data=st.data(),
)
@settings(max_examples=50)
def test_poke_peek_roundtrip(bits, length, data):
    array = PackedArray(length, bits=bits)
    writes = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=length - 1),
                st.integers(min_value=0, max_value=(1 << bits) - 1),
            ),
            max_size=50,
        )
    )
    model = [0] * length
    for index, value in writes:
        array.poke(index, value)
        model[index] = value
    assert list(array) == model


@given(bits=BITS, length=st.integers(min_value=1, max_value=100))
@settings(max_examples=30)
def test_fill_sets_every_counter(bits, length):
    array = PackedArray(length, bits=bits)
    top = (1 << bits) - 1
    array.fill(top)
    assert all(value == top for value in array)
    assert array.nonzero_count() == length


class PackedArrayMachine(RuleBasedStateMachine):
    """Stateful comparison against a plain list."""

    @initialize(
        length=st.integers(min_value=1, max_value=64),
        bits=BITS,
    )
    def setup(self, length, bits):
        self.array = PackedArray(length, bits=bits)
        self.model = [0] * length
        self.length = length
        self.top = (1 << bits) - 1

    @rule(data=st.data())
    def write(self, data):
        index = data.draw(st.integers(min_value=0, max_value=self.length - 1))
        value = data.draw(st.integers(min_value=0, max_value=self.top))
        self.array.poke(index, value)
        self.model[index] = value

    @rule(data=st.data())
    def read(self, data):
        index = data.draw(st.integers(min_value=0, max_value=self.length - 1))
        assert self.array.peek(index) == self.model[index]

    @invariant()
    def same_content(self):
        assert list(self.array) == self.model

    @invariant()
    def same_nonzero_count(self):
        assert self.array.nonzero_count() == sum(1 for v in self.model if v)


TestPackedArrayMachine = PackedArrayMachine.TestCase
