"""Property tests for the hashing layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters import BloomFilter
from repro.hashing import FAMILIES, MASK64, canonical_key

KEY64 = st.integers(min_value=0, max_value=MASK64)


@given(key=st.one_of(st.integers(), st.binary(max_size=64), st.text(max_size=32)))
@settings(max_examples=100)
def test_canonical_key_is_deterministic_and_64bit(key):
    first = canonical_key(key)
    second = canonical_key(key)
    assert first == second
    assert 0 <= first <= MASK64


@given(key=KEY64, family=st.sampled_from(sorted(FAMILIES)))
@settings(max_examples=100)
def test_hash64_range(key, family):
    fn = FAMILIES[family].make(0, seed=1)
    assert 0 <= fn.hash64(key) <= MASK64


@given(
    key=KEY64,
    n_buckets=st.integers(min_value=1, max_value=1 << 20),
    family=st.sampled_from(sorted(FAMILIES)),
)
@settings(max_examples=100)
def test_bucket_always_in_range(key, n_buckets, family):
    fn = FAMILIES[family].make(1, seed=2)
    assert 0 <= fn.bucket(key, n_buckets) < n_buckets


@given(keys=st.lists(KEY64, min_size=1, max_size=100, unique=True))
@settings(max_examples=30)
def test_bloom_never_false_negative(keys):
    bloom = BloomFilter(512, 3, seed=5)
    for key in keys:
        bloom.add(key)
    assert all(key in bloom for key in keys)


@given(
    text_keys=st.lists(st.text(min_size=1, max_size=16), min_size=2, max_size=50,
                       unique=True)
)
@settings(max_examples=30)
def test_canonical_key_rarely_collides_on_text(text_keys):
    canonicals = [canonical_key(key) for key in text_keys]
    # 64-bit space: collisions among <=50 random strings are astronomically
    # unlikely; any collision indicates a digest bug.
    assert len(set(canonicals)) == len(text_keys)
