"""Property tests for the paper's theorems and stated guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DeletionMode, McCuckoo
from repro.core import check_mccuckoo
from repro.workloads import distinct_keys, missing_keys


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    n_buckets=st.integers(min_value=16, max_value=96),
    load=st.floats(min_value=0.1, max_value=0.85),
)
@settings(max_examples=20, deadline=None)
def test_theorem2_redundant_write_bound(seed, n_buckets, load):
    """Theorem 2: total proactive redundant writes never exceed
    S * (1 + sum_{t=3..d} 1/t) — for d=3, 4/3 of the table size S
    (the paper quotes the redundant-only part as 5/6 S; with the one
    mandatory write per item the total is items + redundant <= S + 5S/6).

    We verify the redundant-write count (total copy writes minus one per
    item) stays below 5/6 * S while filling to any load.
    """
    table = McCuckoo(n_buckets, d=3, seed=seed)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 1)
    redundant = 0
    for key in keys:
        outcome = table.put(key)
        if outcome.copies > 1:
            redundant += outcome.copies - 1
    assert redundant <= (5 / 6) * table.capacity + 1


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    load=st.floats(min_value=0.1, max_value=0.8),
)
@settings(max_examples=15, deadline=None)
def test_theorem3_probe_budget(seed, load):
    """Theorem 3: the lookup principles always narrow the probe set unless
    every candidate has value 1 — i.e. buckets_read < d whenever any
    candidate counter differs from 1."""
    table = McCuckoo(64, d=3, seed=seed)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 7)
    for key in keys:
        table.put(key)
    for key in missing_keys(60, {table._canonical(k) for k in keys}, seed=seed):
        vals = [table._counters.peek(b) for b in table._candidates(key)]
        outcome = table.lookup(key)
        if any(v != 1 for v in vals):
            assert outcome.buckets_read < table.d


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    n_items=st.integers(min_value=1, max_value=150),
)
@settings(max_examples=15, deadline=None)
def test_counters_never_exceed_d(seed, n_items):
    table = McCuckoo(64, d=3, seed=seed)
    for key in distinct_keys(n_items, seed=seed + 3):
        table.put(key)
    assert all(value <= table.d for value in table._counters)


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    n_items=st.integers(min_value=1, max_value=120),
)
@settings(max_examples=15, deadline=None)
def test_bloom_property_no_false_negatives(seed, n_items):
    """Counters-as-Bloom: after inserting a key, none of its candidate
    counters can ever be zero (no-deletion mode)."""
    table = McCuckoo(48, d=3, seed=seed)
    keys = distinct_keys(n_items, seed=seed + 11)
    for key in keys:
        table.put(key)
        for bucket in table._candidates(table._canonical(key)):
            assert table._counters.peek(bucket) > 0
    # and it stays true after the whole fill
    for key in keys:
        assert all(
            table._counters.peek(b) > 0
            for b in table._candidates(table._canonical(key))
        )


@given(
    seed=st.integers(min_value=0, max_value=1 << 20),
    n_items=st.integers(min_value=10, max_value=120),
    delete_every=st.integers(min_value=2, max_value=5),
)
@settings(max_examples=15, deadline=None)
def test_no_false_results_under_churn(seed, n_items, delete_every):
    """End-to-end dict-equivalence under mixed insert/delete churn."""
    table = McCuckoo(48, d=3, seed=seed, deletion_mode=DeletionMode.RESET)
    keys = distinct_keys(n_items, seed=seed + 13)
    live = {}
    for index, key in enumerate(keys):
        table.put(key, index)
        live[table._canonical(key)] = index
        if index % delete_every == 0:
            victim = next(iter(live))
            table.delete(victim)
            del live[victim]
    for key, value in live.items():
        outcome = table.lookup(key)
        assert outcome.found and outcome.value == value
    check_mccuckoo(table)


@given(seed=st.integers(min_value=0, max_value=1 << 20))
@settings(max_examples=10, deadline=None)
def test_copies_share_one_counter_value(seed):
    table = McCuckoo(48, d=3, seed=seed)
    keys = distinct_keys(100, seed=seed + 17)
    for key in keys:
        table.put(key)
    for key in keys:
        copies = table.copies_of(key)
        values = {table._counters.peek(b) for b in copies}
        assert values == {len(copies)}
