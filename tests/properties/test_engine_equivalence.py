"""Property tests: the NumPy engine is observationally identical to the
pure-Python engine.

The engine contract (``core/engine.py``): backend choice can change
wall-clock only.  Twin tables (same seed and configuration, one per
backend) driven through the same seeded op stream must produce
byte-identical outcomes, identical raw counter bytes, identical counter
histograms, and identical :class:`MemoryModel` totals in both charging
modes — including kick-outs, stash spills, and the AMAC batched-lookup
composition.

Skips cleanly when NumPy is not installed (the fallback-only CI leg).
"""

import random

import pytest

from repro._numpy import numpy_available
from repro.core.batch import batched_lookup
from repro.core.config import DeletionMode
from repro.core.engine import EngineConfig
from repro.core.errors import ConfigurationError
from repro.core.mccuckoo import McCuckoo
from repro.core.resize import ResizableMcCuckoo
from repro.core.sharded import ShardedMcCuckoo, ShardRouter
from repro.memory.model import CounterCharging, MemoryModel
from tests.seeding import derive

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy engine not installed"
)

MODES = (DeletionMode.DISABLED, DeletionMode.RESET, DeletionMode.TOMBSTONE)
CHARGING = (CounterCharging.PER_COUNTER, CounterCharging.PER_WORD)


def twin_engines(mode, charging, n_buckets=401, d=3, **kwargs):
    """One python-backend and one numpy-backend table, otherwise identical.

    min_batch=1 forces the array kernels onto every batch, however small,
    so the equivalence claim covers the whole dispatch range.
    """
    make = lambda backend: McCuckoo(  # noqa: E731
        n_buckets, d=d, seed=derive(3), deletion_mode=mode,
        mem=MemoryModel(counter_charging=charging),
        engine=EngineConfig(backend=backend, min_batch=1), **kwargs)
    return make("python"), make("numpy")


def counter_histogram(table):
    counters = table._counters
    histogram = {}
    for index in range(table.d * table.n_buckets):
        value = counters.peek(index)
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def assert_same_state(py, np_):
    assert bytes(py._counters._data) == bytes(np_._counters._data)
    assert counter_histogram(py) == counter_histogram(np_)
    assert sorted(py.items()) == sorted(np_.items())
    assert py.mem.summary() == np_.mem.summary()


@requires_numpy
@pytest.mark.parametrize("charging", CHARGING, ids=lambda c: c.name.lower())
@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name.lower())
class TestSeededStreams:
    def test_mixed_op_stream(self, mode, charging):
        """A seeded put/lookup/delete stream, batched and scalar ops mixed,
        leaves both backends in byte-identical states throughout."""
        py, np_ = twin_engines(mode, charging)
        rng = random.Random(derive(31))
        live = []
        for round_no in range(12):
            pairs = [(rng.getrandbits(64), rng.randrange(1000))
                     for _ in range(90)]
            live.extend(key for key, _ in pairs)
            assert py.put_many(pairs) == np_.put_many(pairs)

            queries = [rng.choice(live) if rng.random() < 0.7
                       else rng.getrandbits(64) for _ in range(150)]
            assert py.lookup_many(queries) == np_.lookup_many(queries)
            probe = queries[0]
            assert py.lookup(probe) == np_.lookup(probe)

            if mode is not DeletionMode.DISABLED and round_no % 3 == 2:
                victims = [rng.choice(live) for _ in range(30)]
                victims += [rng.getrandbits(64) for _ in range(10)]
                assert py.delete_many(victims) == np_.delete_many(victims)
            assert_same_state(py, np_)

    def test_kicks_and_stash_spills(self, mode, charging):
        """Driving tiny twins past capacity: kick-outs and stash spills
        happen on both backends in exactly the same places."""
        py, np_ = twin_engines(mode, charging, n_buckets=40, maxloop=30,
                               stash_buckets=8)
        rng = random.Random(derive(32))
        pairs = [(rng.getrandbits(64), i) for i in range(135)]
        py_out = py.put_many(pairs)
        np_out = np_.put_many(pairs)
        assert py_out == np_out
        assert any(outcome.stashed for outcome in py_out), "workload too small"
        assert py.total_kicks == np_.total_kicks > 0
        assert_same_state(py, np_)
        queries = [key for key, _ in pairs]
        queries += [rng.getrandbits(64) for _ in range(200)]
        assert py.lookup_many(queries) == np_.lookup_many(queries)
        assert py.mem.summary() == np_.mem.summary()

    def test_prescreen_and_batched_lookup(self, mode, charging):
        """prescreen_absent and the AMAC composition agree across backends
        (outcomes and charged totals)."""
        py, np_ = twin_engines(mode, charging)
        rng = random.Random(derive(33))
        pairs = [(rng.getrandbits(64), i) for i in range(700)]
        py.put_many(pairs)
        np_.put_many(pairs)
        queries = [key for key, _ in pairs[::3]]
        queries += [rng.getrandbits(64) for _ in range(300)]
        assert py.prescreen_absent(queries) == np_.prescreen_absent(queries)
        py_res = batched_lookup(py, queries, prescreen=True)
        np_res = batched_lookup(np_, queries, prescreen=True)
        assert py_res.outcomes == np_res.outcomes
        assert py_res.prescreened == np_res.prescreened
        assert (py_res.epochs, py_res.total_steps) == \
            (np_res.epochs, np_res.total_steps)
        assert py.mem.summary() == np_.mem.summary()


@requires_numpy
@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name.lower())
@pytest.mark.parametrize("d", (3, 4))
class TestBubblingTwins:
    """The labeled-slot policy is deterministic state: twin tables driven
    to 0.95+ load must agree byte-for-byte — including the label array —
    on both backends, for d=3 and d=4 under every deletion mode."""

    def test_high_load_stream(self, mode, d):
        py, np_ = twin_engines(mode, CounterCharging.PER_COUNTER,
                               n_buckets=120, d=d, kick_policy="bubbling",
                               maxloop=60, stash_buckets=8)
        rng = random.Random(derive(38) ^ d)
        live = []
        target = int(0.96 * py.capacity)
        while len(py) < target:
            pairs = [(rng.getrandbits(64), rng.randrange(1000))
                     for _ in range(60)]
            live.extend(key for key, _ in pairs)
            assert py.put_many(pairs) == np_.put_many(pairs)
            queries = [rng.choice(live) if rng.random() < 0.7
                       else rng.getrandbits(64) for _ in range(80)]
            assert py.lookup_many(queries) == np_.lookup_many(queries)
            if mode is not DeletionMode.DISABLED:
                victims = [rng.choice(live) for _ in range(10)]
                assert py.delete_many(victims) == np_.delete_many(victims)
            assert_same_state(py, np_)
            assert bytes(py._policy._labels._data) == \
                bytes(np_._policy._labels._data)
        assert py.total_kicks == np_.total_kicks > 0


@requires_numpy
class TestHigherLayers:
    def test_d4_generic_path(self):
        """d=4 exercises the non-unrolled probe loop on both backends."""
        py, np_ = twin_engines(DeletionMode.RESET,
                               CounterCharging.PER_COUNTER, d=4)
        rng = random.Random(derive(34))
        pairs = [(rng.getrandbits(64), i) for i in range(1000)]
        assert py.put_many(pairs) == np_.put_many(pairs)
        queries = [key for key, _ in pairs[::2]]
        queries += [rng.getrandbits(64) for _ in range(300)]
        assert py.lookup_many(queries) == np_.lookup_many(queries)
        assert_same_state(py, np_)

    def test_sharded_twins(self):
        make = lambda backend: ShardedMcCuckoo(  # noqa: E731
            4, 200, seed=derive(35),
            engine=EngineConfig(backend=backend, min_batch=1))
        py, np_ = make("python"), make("numpy")
        rng = random.Random(derive(35))
        pairs = [(rng.getrandbits(64), i) for i in range(1500)]
        assert py.put_many(pairs) == np_.put_many(pairs)
        queries = [key for key, _ in pairs[::2]]
        queries += [rng.getrandbits(64) for _ in range(400)]
        assert py.lookup_many(queries) == np_.lookup_many(queries)
        assert py.mem.summary() == np_.mem.summary()

    def test_shard_router_batch_matches_scalar(self):
        router = ShardRouter(9, seed=derive(36))
        rng = random.Random(derive(36))
        keys = [rng.getrandbits(64) for _ in range(2000)]
        scalar = [router.shard_of(key) for key in keys]
        assert router.shard_of_many(keys) == scalar
        assert router.shard_of_many(keys, use_numpy=True) == scalar

    def test_resizable_growth_keeps_engine(self):
        make = lambda backend: ResizableMcCuckoo(  # noqa: E731
            64, seed=derive(37),
            engine=EngineConfig(backend=backend, min_batch=1))
        py, np_ = make("python"), make("numpy")
        rng = random.Random(derive(37))
        keys = [rng.getrandbits(64) for _ in range(900)]
        for key in keys:
            assert py.put(key, key) == np_.put(key, key)
        assert py.generations == np_.generations > 0
        assert np_.active_table._engine_numpy
        queries = keys[::2] + [rng.getrandbits(64) for _ in range(200)]
        assert py.lookup_many(queries) == np_.lookup_many(queries)


class TestEngineConfig:
    def test_defaults_and_coercion(self):
        assert EngineConfig.coerce(None) == EngineConfig()
        assert EngineConfig.coerce("python").backend == "python"
        config = EngineConfig(backend="auto", min_batch=4)
        assert EngineConfig.coerce(config) is config
        with pytest.raises(ConfigurationError):
            EngineConfig.coerce("vectorized")
        with pytest.raises(ConfigurationError):
            EngineConfig(backend="python", min_batch=0)

    def test_python_always_resolves(self):
        assert EngineConfig(backend="python").resolve() == "python"

    def test_auto_resolution_matches_availability(self):
        expected = "numpy" if numpy_available() else "python"
        assert EngineConfig(backend="auto").resolve() == expected

    @requires_numpy
    def test_numpy_resolves_when_available(self):
        assert EngineConfig(backend="numpy").resolve() == "numpy"
        table = McCuckoo(64, engine="numpy")
        assert table._engine_numpy
