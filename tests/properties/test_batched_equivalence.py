"""Property tests: the batched kernels are observationally equivalent to
scalar loops.

The contract (``interface.py``): ``lookup_many``/``delete_many`` return
exactly what a loop of scalar calls would return and, in the default
``PER_COUNTER`` charging mode, record identical access totals.
``put_many`` may execute collided keys after non-collided ones, so its
outcomes equal scalar puts of the *reordered* sequence — non-collided
keys in submission order, then collided keys in submission order — which
is derivable from the returned ``InsertOutcome.collided`` flags.

Each test drives a "batched" table and a "scalar" twin (same seed and
configuration) through the same workload and compares outcomes, memory
summaries, raw counter bytes, and surviving items.
"""

import random

import pytest

from repro.core.blocked import BlockedMcCuckoo
from repro.core.config import DeletionMode
from repro.core.errors import UnsupportedOperationError
from repro.core.mccuckoo import McCuckoo
from repro.core.resize import ResizableMcCuckoo
from repro.core.sharded import ShardedMcCuckoo
from repro.memory.model import CounterCharging, MemoryModel
from tests.seeding import derive

MODES = (DeletionMode.DISABLED, DeletionMode.RESET, DeletionMode.TOMBSTONE)


def twin_tables(mode, n_buckets=500, **kwargs):
    make = lambda: McCuckoo(n_buckets, d=3, seed=derive(3), deletion_mode=mode,
                            mem=MemoryModel(), **kwargs)  # noqa: E731
    return make(), make()


def scalar_puts_reordered(table, pairs, batched_outcomes):
    """Replay ``pairs`` scalar-wise in the order ``put_many`` executed them."""
    order = [i for i, o in enumerate(batched_outcomes) if not o.collided]
    order += [i for i, o in enumerate(batched_outcomes) if o.collided]
    outcomes = {}
    for i in order:
        outcomes[i] = table.put(*pairs[i])
    return [outcomes[i] for i in range(len(pairs))]


def assert_same_state(scalar, batched):
    assert scalar.mem.summary() == batched.mem.summary()
    assert bytes(scalar._counters._data) == bytes(batched._counters._data)
    assert sorted(scalar.items()) == sorted(batched.items())


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name.lower())
class TestMcCuckoo:
    def test_put_many_matches_reordered_scalar(self, mode):
        scalar, batched = twin_tables(mode)
        rng = random.Random(derive(11))
        pairs = [(rng.getrandbits(64), i) for i in range(1300)]
        batched_outcomes = batched.put_many(pairs)
        scalar_outcomes = scalar_puts_reordered(scalar, pairs, batched_outcomes)
        assert batched_outcomes == scalar_outcomes
        assert_same_state(scalar, batched)

    def test_lookup_many_matches_scalar(self, mode):
        scalar, batched = twin_tables(mode)
        rng = random.Random(derive(12))
        pairs = [(rng.getrandbits(64), i) for i in range(1200)]
        batched_outcomes = batched.put_many(pairs)
        scalar_puts_reordered(scalar, pairs, batched_outcomes)
        present = [key for key, _ in pairs[::3]]
        absent = [rng.getrandbits(64) for _ in range(300)]
        queries = present + absent
        rng.shuffle(queries)
        assert [scalar.lookup(q) for q in queries] == batched.lookup_many(queries)
        assert scalar.mem.summary() == batched.mem.summary()

    def test_delete_many_matches_scalar(self, mode):
        if mode is DeletionMode.DISABLED:
            scalar, batched = twin_tables(mode)
            with pytest.raises(UnsupportedOperationError):
                batched.delete_many([1, 2])
            return
        scalar, batched = twin_tables(mode)
        rng = random.Random(derive(13))
        pairs = [(rng.getrandbits(64), i) for i in range(1200)]
        batched_outcomes = batched.put_many(pairs)
        scalar_puts_reordered(scalar, pairs, batched_outcomes)
        victims = [key for key, _ in pairs[::4]]
        victims += [rng.getrandbits(64) for _ in range(100)]  # absent keys
        victims += victims[:40]  # double deletes
        assert [scalar.delete(v) for v in victims] == batched.delete_many(victims)
        assert_same_state(scalar, batched)
        # lookups after deletion agree too (tombstone/reset screens differ)
        queries = [key for key, _ in pairs[::5]]
        assert [scalar.lookup(q) for q in queries] == batched.lookup_many(queries)
        assert scalar.mem.summary() == batched.mem.summary()


class TestStashSpill:
    def test_put_many_overfill_spills_identically(self):
        # a tiny table driven past capacity: some keys land in the stash
        make = lambda: McCuckoo(40, d=3, seed=derive(5), maxloop=30,  # noqa: E731
                                stash_buckets=8, mem=MemoryModel())
        scalar, batched = make(), make()
        rng = random.Random(derive(21))
        pairs = [(rng.getrandbits(64), i) for i in range(135)]
        batched_outcomes = batched.put_many(pairs)
        scalar_outcomes = scalar_puts_reordered(scalar, pairs, batched_outcomes)
        assert batched_outcomes == scalar_outcomes
        assert any(o.stashed for o in batched_outcomes), "workload too small"
        assert_same_state(scalar, batched)
        # misses now route through the Bloom-style stash screen
        queries = [key for key, _ in pairs] + [rng.getrandbits(64)
                                               for _ in range(200)]
        assert [scalar.lookup(q) for q in queries] == batched.lookup_many(queries)
        assert scalar.mem.summary() == batched.mem.summary()


class TestBlocked:
    @pytest.mark.parametrize("screen", (True, False), ids=("screened", "raw"))
    def test_batched_equivalence(self, screen):
        mode = DeletionMode.DISABLED if not screen else DeletionMode.RESET
        make = lambda: BlockedMcCuckoo(  # noqa: E731
            120, d=3, slots=3, seed=derive(7), deletion_mode=mode,
            lookup_counter_screen=screen, mem=MemoryModel())
        scalar, batched = make(), make()
        rng = random.Random(derive(31))
        pairs = [(rng.getrandbits(64), i) for i in range(900)]
        batched_outcomes = batched.put_many(pairs)
        scalar_outcomes = scalar_puts_reordered(scalar, pairs, batched_outcomes)
        assert batched_outcomes == scalar_outcomes
        assert scalar.mem.summary() == batched.mem.summary()
        assert sorted(scalar.items()) == sorted(batched.items())
        queries = [key for key, _ in pairs[::3]]
        queries += [rng.getrandbits(64) for _ in range(250)]
        assert [scalar.lookup(q) for q in queries] == batched.lookup_many(queries)
        assert scalar.mem.summary() == batched.mem.summary()
        if mode is not DeletionMode.DISABLED:
            victims = [key for key, _ in pairs[::5]]
            assert [scalar.delete(v) for v in victims] == batched.delete_many(victims)
            assert scalar.mem.summary() == batched.mem.summary()


class TestSharded:
    def test_batched_ops_match_scalar_per_shard(self):
        make = lambda: ShardedMcCuckoo(  # noqa: E731
            4, 150, d=3, seed=derive(9), deletion_mode=DeletionMode.RESET,
            mem=MemoryModel())
        scalar, batched = make(), make()
        rng = random.Random(derive(41))
        pairs = [(rng.getrandbits(64), i) for i in range(1100)]
        batched_outcomes = batched.put_many(pairs)
        # put_many reorders within each shard; the collided flag projects
        # the same order on the scalar twin globally because shards are
        # independent.
        scalar_outcomes = scalar_puts_reordered(scalar, pairs, batched_outcomes)
        assert batched_outcomes == scalar_outcomes
        assert scalar.mem.summary() == batched.mem.summary()
        queries = [key for key, _ in pairs[::2]]
        queries += [rng.getrandbits(64) for _ in range(300)]
        assert [scalar.lookup(q) for q in queries] == batched.lookup_many(queries)
        victims = [key for key, _ in pairs[::3]]
        assert [scalar.delete(v) for v in victims] == batched.delete_many(victims)
        assert scalar.mem.summary() == batched.mem.summary()
        assert sorted(scalar.items()) == sorted(batched.items())


class TestResizable:
    def test_lookup_many_spans_migration(self):
        make = lambda: ResizableMcCuckoo(64, d=3, grow_at=0.7, seed=derive(13),  # noqa: E731
                                         mem=MemoryModel())
        scalar, batched = make(), make()
        rng = random.Random(derive(51))
        keys = [rng.getrandbits(64) for _ in range(200)]
        for table in (scalar, batched):
            for key in keys:
                table.put(key, key & 0xFF)
        assert batched.retiring_table is not None or batched.capacity > 64 * 3
        queries = keys + [rng.getrandbits(64) for _ in range(100)]
        assert [scalar.lookup(q) for q in queries] == batched.lookup_many(queries)
        assert scalar.mem.summary() == batched.mem.summary()


class TestPerWordCharging:
    def test_per_word_reads_fewer_counters_same_results(self):
        per_counter = McCuckoo(500, d=3, seed=derive(3), mem=MemoryModel())
        per_word = McCuckoo(
            500, d=3, seed=derive(3),
            mem=MemoryModel(counter_charging=CounterCharging.PER_WORD))
        rng = random.Random(derive(61))
        pairs = [(rng.getrandbits(64), i) for i in range(1200)]
        assert per_counter.put_many(pairs) == per_word.put_many(pairs)
        queries = [key for key, _ in pairs[::2]] + [rng.getrandbits(64)
                                                    for _ in range(200)]
        assert per_counter.lookup_many(queries) == per_word.lookup_many(queries)
        counter_reads = per_counter.mem.summary()
        word_reads = per_word.mem.summary()
        assert counter_reads != word_reads, "PER_WORD should coalesce reads"

    def test_scalar_paths_ignore_per_word_mode(self):
        # per-counter charging of the scalar accessors is unaffected: the
        # paper-figure pipelines never see the PER_WORD option.
        default = McCuckoo(200, d=3, seed=derive(3), mem=MemoryModel())
        word = McCuckoo(
            200, d=3, seed=derive(3),
            mem=MemoryModel(counter_charging=CounterCharging.PER_WORD))
        rng = random.Random(derive(71))
        keys = [rng.getrandbits(64) for _ in range(400)]
        for table in (default, word):
            for key in keys:
                table.put(key)
        for key in keys[::7]:
            default.lookup(key)
            word.lookup(key)
        assert default.mem.summary() == word.mem.summary()
