"""BloomFrontedCuckoo: the EMOMA/DEHT-style on-chip pre-screen baseline."""

from repro import McCuckoo
from repro.baselines import BloomFrontedCuckoo
from repro.workloads import distinct_keys, missing_keys


def filled(load=0.6, n_buckets=256, seed=50, **kwargs):
    table = BloomFrontedCuckoo(n_buckets, d=3, seed=seed, **kwargs)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 1)
    for key in keys:
        table.put(key, key % 5)
    return table, keys


class TestBehaviour:
    def test_roundtrip(self):
        table, keys = filled()
        for key in keys:
            outcome = table.lookup(key)
            assert outcome.found and outcome.value == key % 5

    def test_screen_answers_missing_without_offchip_reads(self):
        table, keys = filled()
        screened = 0
        for key in missing_keys(300, set(keys), seed=51):
            before = table.mem.off_chip.reads
            outcome = table.lookup(key)
            assert not outcome.found
            if table.mem.off_chip.reads == before:
                screened += 1
        assert screened > 270  # 1 % fp-rate filter screens ~99 %

    def test_false_positives_fall_through_correctly(self):
        table, keys = filled(seed=52)
        for key in missing_keys(2000, set(keys), seed=53):
            assert not table.lookup(key).found  # never a wrong answer

    def test_screen_charged_onchip(self):
        table, keys = filled(seed=54)
        before = table.mem.on_chip.reads
        table.lookup(missing_keys(1, set(keys), seed=55)[0])
        assert table.mem.on_chip.reads - before == table.bloom.k_hashes

    def test_screen_degrades_under_deletion(self):
        """Bloom bits cannot be cleared: after deleting a key its lookups
        pay the off-chip probes again (the asymmetry vs McCuckoo)."""
        table, keys = filled(seed=56)
        victim = keys[0]
        table.delete(victim)
        before = table.mem.off_chip.reads
        outcome = table.lookup(victim)
        assert not outcome.found
        assert table.mem.off_chip.reads > before  # filter still says maybe

    def test_failed_inserts_not_added_to_filter(self):
        table = BloomFrontedCuckoo(4, d=3, maxloop=2, seed=57)
        failed_key = None
        for key in distinct_keys(60, seed=58):
            if table.put(key).failed:
                failed_key = table._canonical(key)
                break
        assert failed_key is not None
        assert failed_key not in table.bloom


class TestOnChipMemoryComparison:
    """The paper's contribution 2: counters screen with less on-chip memory
    than a Bloom front sized for a useful fp-rate."""

    def test_counters_use_less_onchip_memory(self):
        n_buckets = 512
        bloom_table = BloomFrontedCuckoo(n_buckets, d=3, fp_rate=0.01, seed=59)
        mccuckoo = McCuckoo(n_buckets, d=3, seed=59)
        # 2 bits/bucket vs ~9.6 bits/expected-item
        assert mccuckoo.onchip_bytes < bloom_table.onchip_bytes / 3

    def test_screening_quality_comparable_at_matched_load(self):
        n_buckets = 256
        seed = 60
        keys = distinct_keys(int(3 * n_buckets * 0.5), seed=seed)
        bloom_table = BloomFrontedCuckoo(n_buckets, d=3, fp_rate=0.01, seed=seed)
        mccuckoo = McCuckoo(n_buckets, d=3, seed=seed)
        for key in keys:
            bloom_table.put(key)
            mccuckoo.put(key)
        absent = missing_keys(400, set(keys), seed=seed + 1)

        def offchip_rate(table):
            probed = 0
            for key in absent:
                before = table.mem.off_chip.reads
                table.lookup(key)
                if table.mem.off_chip.reads > before:
                    probed += 1
            return probed / len(absent)

        # the Bloom front screens better per query at 1 % fp, but McCuckoo
        # stays within a small factor while ALSO accelerating inserts and
        # supporting deletion — assert it screens most queries too
        assert offchip_rate(mccuckoo) < 0.6
        assert offchip_rate(bloom_table) < 0.05
