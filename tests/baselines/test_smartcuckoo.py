"""SmartCuckoo: pseudoforest loop prediction for 2-hash cuckoo."""

import pytest

from repro.baselines import CuckooTable, SmartCuckoo
from repro.baselines.smartcuckoo import _UnionFind
from repro.core import InsertStatus
from repro.core.errors import ConfigurationError, UnsupportedOperationError
from repro.workloads import distinct_keys, key_stream, missing_keys


class TestUnionFind:
    def test_singletons(self):
        forest = _UnionFind(4)
        assert forest.find(0) == 0
        assert not forest.is_maximal(0)

    def test_tree_not_maximal(self):
        forest = _UnionFind(4)
        forest.add_edge(0, 1)
        forest.add_edge(1, 2)
        assert not forest.is_maximal(0)

    def test_cycle_is_maximal(self):
        forest = _UnionFind(4)
        forest.add_edge(0, 1)
        forest.add_edge(1, 2)
        forest.add_edge(2, 0)  # closes the cycle: 3 vertices, 3 edges
        assert forest.is_maximal(0)
        assert forest.is_maximal(2)
        assert not forest.is_maximal(3)

    def test_self_loop_is_maximal(self):
        forest = _UnionFind(4)
        forest.add_edge(1, 1)
        assert forest.is_maximal(1)

    def test_merging_cyclic_with_tree_not_maximal(self):
        forest = _UnionFind(6)
        forest.add_edge(0, 1)
        forest.add_edge(0, 1)  # 2 vertices, 2 edges: cyclic
        forest.add_edge(2, 3)  # tree
        forest.add_edge(1, 2)  # merge: 4 vertices, 4 edges -> maximal
        assert forest.is_maximal(3)


class TestSmartCuckoo:
    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            SmartCuckoo(0)

    def test_roundtrip(self):
        table = SmartCuckoo(128, seed=30)
        keys = distinct_keys(100, seed=31)
        for key in keys:
            assert table.put(key, key % 7).stored
        for key in keys:
            assert table.get(key) == key % 7

    def test_missing_not_found(self):
        table = SmartCuckoo(128, seed=32)
        keys = distinct_keys(50, seed=33)
        for key in keys:
            table.put(key)
        for key in missing_keys(50, set(keys), seed=34):
            assert not table.lookup(key).found

    def test_predicted_failures_are_walk_free(self):
        """Once the pseudoforest proves both components maximal, failure is
        declared with zero kicks and zero off-chip reads."""
        table = SmartCuckoo(24, seed=35, maxloop=500)
        keys = key_stream(seed=36)
        predicted = 0
        while predicted == 0:
            key = next(keys)
            before_reads = table.mem.off_chip.reads
            before_kicks = table.total_kicks
            outcome = table.put(key)
            if outcome.failed:
                predicted += 1
                assert table.total_kicks == before_kicks
                assert table.mem.off_chip.reads == before_reads
        assert table.predicted_failures >= 1

    def test_prediction_is_sound_no_walked_failures(self):
        """If the forest says a slot exists, the walk must find it: the
        maxloop safety net must never fire."""
        table = SmartCuckoo(64, seed=37, maxloop=10_000)
        keys = key_stream(seed=38)
        for _ in range(table.capacity * 2):
            table.put(next(keys))
        assert table.walked_failures == 0

    def test_no_items_lost(self):
        table = SmartCuckoo(48, seed=39)
        stored = []
        for key in distinct_keys(150, seed=40):
            if table.put(key).stored:
                stored.append(key)
        for key in stored:
            assert table.lookup(key).found
        assert len(table) == len(stored)

    def test_first_failure_near_d2_threshold(self):
        """The first unplaceable item appears around the d=2 threshold
        (≈50 % load for a random key set)."""
        table = SmartCuckoo(256, seed=41)
        keys = iter(distinct_keys(2000, seed=42))
        while table.events.first_failure_items is None:
            table.put(next(keys))
        onset = table.events.first_failure_items / table.capacity
        assert 0.3 < onset <= 0.65

    def test_rejection_lets_occupancy_exceed_threshold(self):
        """Unlike bulk insertion, admitting only provably-placeable items
        drives occupancy past 50 % (every component may become unicyclic)."""
        table = SmartCuckoo(256, seed=41)
        for key in distinct_keys(2000, seed=42):
            table.put(key)
        assert table.load_ratio > 0.5
        assert table.walked_failures == 0

    def test_delete_unsupported(self):
        table = SmartCuckoo(16, seed=43)
        table.put(1)
        with pytest.raises(UnsupportedOperationError):
            table.delete(1)

    def test_update(self):
        table = SmartCuckoo(32, seed=44)
        table.put(1, "a")
        assert table.upsert(1, "b").status is InsertStatus.UPDATED
        assert table.get(1) == "b"

    def test_fewer_wasted_kicks_than_blind_cuckoo(self):
        """The headline: at saturation, blind d=2 cuckoo burns maxloop kicks
        per doomed insert; SmartCuckoo predicts and skips them."""
        smart = SmartCuckoo(64, seed=45, maxloop=200)
        blind = CuckooTable(64, d=2, seed=45, maxloop=200)
        keys = distinct_keys(220, seed=46)
        for key in keys:
            smart.put(key)
            blind.put(key)
        assert smart.predicted_failures > 0
        assert smart.total_kicks < blind.total_kicks

    def test_onchip_bytes_reported(self):
        table = SmartCuckoo(64, seed=47)
        assert table.onchip_bytes > 0
