"""Chaining and linear-probing comparators from the paper's introduction."""

import pytest

from repro import ChainedHashTable, LinearProbingTable
from repro.core import InsertStatus
from repro.core.errors import ConfigurationError
from repro.workloads import distinct_keys, missing_keys


class TestChained:
    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            ChainedHashTable(0)

    def test_roundtrip(self):
        table = ChainedHashTable(32, seed=250)
        keys = distinct_keys(100, seed=251)
        for key in keys:
            table.put(key, key % 3)
        for key in keys:
            assert table.get(key) == key % 3
        assert len(table) == 100

    def test_load_can_exceed_one(self):
        table = ChainedHashTable(16, seed=252)
        for key in distinct_keys(64, seed=253):
            table.put(key)
        assert table.load_ratio == 4.0

    def test_lookup_cost_grows_with_load(self):
        light = ChainedHashTable(64, seed=254)
        heavy = ChainedHashTable(64, seed=254)
        light_keys = distinct_keys(32, seed=255)
        heavy_keys = distinct_keys(512, seed=255)
        for key in light_keys:
            light.put(key)
        for key in heavy_keys:
            heavy.put(key)

        def avg_reads(table, keys):
            before = table.mem.off_chip.reads
            for key in keys:
                table.lookup(key)
            return (table.mem.off_chip.reads - before) / len(keys)

        assert avg_reads(heavy, heavy_keys) > avg_reads(light, light_keys)

    def test_delete(self):
        table = ChainedHashTable(16, seed=256)
        table.put(1, "a")
        table.put(2, "b")
        assert table.delete(1).deleted
        assert not table.delete(1).deleted
        assert table.get(2) == "b"

    def test_update(self):
        table = ChainedHashTable(16, seed=257)
        table.put(1, "a")
        assert table.upsert(1, "z").status is InsertStatus.UPDATED
        assert table.get(1) == "z"

    def test_max_chain_length(self):
        table = ChainedHashTable(1, seed=258)
        for key in range(5):
            table.put(key)
        assert table.max_chain_length == 5


class TestLinearProbing:
    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            LinearProbingTable(0)

    def test_roundtrip(self):
        table = LinearProbingTable(128, seed=260)
        keys = distinct_keys(90, seed=261)
        for key in keys:
            table.put(key, key % 5)
        for key in keys:
            assert table.get(key) == key % 5

    def test_full_table_fails(self):
        table = LinearProbingTable(8, seed=262)
        keys = distinct_keys(9, seed=263)
        for key in keys[:8]:
            assert not table.put(key).failed
        assert table.put(keys[8]).failed

    def test_probe_cost_explodes_near_full(self):
        table = LinearProbingTable(256, seed=264)
        keys = distinct_keys(250, seed=265)
        costs = []
        for key in keys:
            before = table.mem.off_chip.reads
            table.put(key)
            costs.append(table.mem.off_chip.reads - before)
        early = sum(costs[:50]) / 50
        late = sum(costs[-50:]) / 50
        assert late > early * 3

    def test_tombstone_delete_keeps_probe_chain(self):
        table = LinearProbingTable(64, seed=266)
        keys = distinct_keys(40, seed=267)
        for key in keys:
            table.put(key)
        table.delete(keys[0])
        # all remaining keys must still be findable through the tombstone
        for key in keys[1:]:
            assert table.lookup(key).found

    def test_tombstone_slot_reused(self):
        table = LinearProbingTable(8, seed=268)
        keys = distinct_keys(8, seed=269)
        for key in keys:
            table.put(key)
        table.delete(keys[0])
        extra = missing_keys(1, set(keys), seed=270)[0]
        assert not table.put(extra).failed
        assert table.lookup(extra).found

    def test_update(self):
        table = LinearProbingTable(16, seed=271)
        table.put(1, "a")
        assert table.upsert(1, "b").status is InsertStatus.UPDATED
        assert table.get(1) == "b"

    def test_items(self):
        table = LinearProbingTable(32, seed=272)
        keys = distinct_keys(10, seed=273)
        for key in keys:
            table.put(key)
        table.delete(keys[0])
        listed = dict(table.items())
        assert len(listed) == 9
