"""CHS (cuckoo with a small on-chip stash) baseline tests."""

from repro import CHS, TableFullError
from repro.workloads import distinct_keys, key_stream, missing_keys


class TestCHS:
    def test_is_stash_backed(self):
        table = CHS(64, seed=230)
        assert table.stash is not None
        assert table.stash.capacity == 4

    def test_failed_inserts_go_to_stash(self):
        table = CHS(8, maxloop=0, seed=231)
        keys = key_stream(seed=232)
        while len(table.stash) == 0:
            outcome = table.put(next(keys))
        assert outcome.stashed

    def test_stashed_items_findable(self):
        table = CHS(8, maxloop=0, seed=233)
        keys = key_stream(seed=234)
        stashed = []
        while len(stashed) < 2:
            key = next(keys)
            if table.put(key).stashed:
                stashed.append(table._canonical(key))
        for key in stashed:
            outcome = table.lookup(key)
            assert outcome.found and outcome.from_stash

    def test_every_missing_lookup_checks_stash(self):
        """The cost the paper's pre-screening removes: CHS probes its stash
        on every single failed main-table lookup."""
        table = CHS(64, seed=235)
        keys = distinct_keys(100, seed=236)
        for key in keys:
            table.put(key)
        for key in missing_keys(50, set(keys), seed=237):
            outcome = table.lookup(key)
            assert outcome.checked_stash

    def test_stash_scan_charged_onchip(self):
        table = CHS(8, maxloop=0, seed=238)
        keys = key_stream(seed=239)
        while len(table.stash) == 0:
            table.put(next(keys))
        before = table.mem.on_chip.reads
        table.lookup(0xDEADBEEF)
        assert table.mem.on_chip.reads > before

    def test_retry_frees_stash_capacity(self):
        """When the stash is full, CHS retries stashed items against the
        main table before giving up."""
        table = CHS(32, maxloop=1, seed=240, stash_capacity=2)
        keys = key_stream(seed=241)
        inserted = []
        try:
            for _ in range(int(table.capacity * 0.95)):
                key = next(keys)
                table.put(key)
                inserted.append(table._canonical(key))
        except TableFullError:
            pass
        # regardless of how far it got, no successfully inserted key is lost
        for key in inserted:
            assert table.lookup(key).found

    def test_stash_delete(self):
        table = CHS(8, maxloop=0, seed=242)
        keys = key_stream(seed=243)
        stashed_key = None
        while stashed_key is None:
            key = next(keys)
            if table.put(key).stashed:
                stashed_key = table._canonical(key)
        outcome = table.delete(stashed_key)
        assert outcome.deleted and outcome.from_stash
