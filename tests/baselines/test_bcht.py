"""BCHT (blocked single-copy cuckoo) baseline tests."""

import pytest

from repro import BCHT, FailurePolicy, TableFullError
from repro.core import InsertStatus
from repro.core.errors import ConfigurationError
from repro.workloads import distinct_keys, missing_keys


def filled(load=0.8, n_buckets=48, seed=210, **kwargs):
    table = BCHT(n_buckets, d=3, slots=3, seed=seed, **kwargs)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 1)
    for key in keys:
        table.put(key, key % 23)
    return table, keys


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BCHT(0)
        with pytest.raises(ConfigurationError):
            BCHT(8, d=1)
        with pytest.raises(ConfigurationError):
            BCHT(8, slots=0)
        with pytest.raises(ConfigurationError):
            BCHT(8, on_failure=FailurePolicy.REHASH)

    def test_capacity_counts_slots(self):
        assert BCHT(10, d=3, slots=3).capacity == 90


class TestBehaviour:
    def test_roundtrip(self):
        table, keys = filled()
        for key in keys:
            outcome = table.lookup(key)
            assert outcome.found and outcome.value == key % 23

    def test_reaches_95_percent_load(self):
        table, keys = filled(load=0.95, n_buckets=96, seed=211)
        assert table.load_ratio >= 0.94
        for key in keys[::9]:
            assert table.lookup(key).found

    def test_one_access_per_bucket(self):
        """Reading a bucket (all 3 slots) is one off-chip access."""
        table, keys = filled(load=0.5, seed=212)
        before = table.mem.off_chip.reads
        outcome = table.lookup(keys[0])
        assert table.mem.off_chip.reads - before == outcome.buckets_read
        assert outcome.buckets_read <= table.d

    def test_missing_reads_all_d_buckets(self):
        table, keys = filled(load=0.5, seed=213)
        for key in missing_keys(50, set(keys), seed=214):
            assert table.lookup(key).buckets_read == table.d

    def test_delete_single_write(self):
        table, keys = filled()
        before = table.mem.off_chip.writes
        assert table.delete(keys[0]).deleted
        assert table.mem.off_chip.writes == before + 1

    def test_update(self):
        table, keys = filled()
        assert table.upsert(keys[0], "v").status is InsertStatus.UPDATED
        assert table.get(keys[0]) == "v"

    def test_fail_rolls_back(self):
        table = BCHT(2, d=3, slots=3, maxloop=3, seed=215,
                     on_failure=FailurePolicy.FAIL)
        stored, failed = [], 0
        for key in distinct_keys(80, seed=216):
            if table.put(key).failed:
                failed += 1
            else:
                stored.append(key)
        assert failed > 0
        for key in stored:
            assert table.lookup(key).found

    def test_onchip_stash_mode(self):
        table = BCHT(2, d=3, slots=3, maxloop=2, seed=217,
                     on_failure=FailurePolicy.STASH, stash_capacity=4)
        stashed = 0
        with pytest.raises(TableFullError):
            for key in distinct_keys(200, seed=218):
                outcome = table.put(key)
                if outcome.stashed:
                    stashed += 1
        assert stashed == 4  # filled the small stash, then overflowed

    def test_items_counts_distinct(self):
        table, keys = filled(load=0.4, seed=219)
        assert len(dict(table.items())) == len(keys)

    def test_kick_events(self):
        table, _ = filled(load=0.95, n_buckets=64, seed=220)
        assert table.total_kicks > 0
        assert table.events.first_collision_items is not None
