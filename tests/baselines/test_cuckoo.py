"""Standard single-copy cuckoo baseline tests (random-walk and BFS)."""

import pytest

from repro import CuckooTable, FailurePolicy
from repro.core import InsertStatus
from repro.core.errors import ConfigurationError
from repro.workloads import distinct_keys, missing_keys


def filled(strategy="random", load=0.6, n_buckets=128, seed=190, **kwargs):
    table = CuckooTable(n_buckets, d=3, strategy=strategy, seed=seed, **kwargs)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 1)
    for key in keys:
        table.put(key, key % 17)
    return table, keys


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CuckooTable(0)
        with pytest.raises(ConfigurationError):
            CuckooTable(8, d=1)
        with pytest.raises(ConfigurationError):
            CuckooTable(8, strategy="dfs")

    def test_capacity(self):
        assert CuckooTable(100, d=3).capacity == 300


@pytest.mark.parametrize("strategy", ["random", "bfs"])
class TestCommonBehaviour:
    def test_roundtrip(self, strategy):
        table, keys = filled(strategy)
        for key in keys:
            outcome = table.lookup(key)
            assert outcome.found
            assert outcome.value == key % 17

    def test_single_copy_only(self, strategy):
        table, keys = filled(strategy)
        for key in keys[:50]:
            k = table._canonical(key)
            copies = [
                b for b in table._candidates(k) if table._keys[b] == k
            ]
            assert len(copies) == 1

    def test_missing_not_found(self, strategy):
        table, keys = filled(strategy)
        for key in missing_keys(100, set(keys), seed=191):
            assert not table.lookup(key).found

    def test_missing_lookup_always_reads_d_buckets(self, strategy):
        """The baseline's blindness: without counters every candidate must
        be read to conclude absence."""
        table, keys = filled(strategy)
        for key in missing_keys(50, set(keys), seed=192):
            assert table.lookup(key).buckets_read == table.d

    def test_delete(self, strategy):
        table, keys = filled(strategy)
        before_writes = table.mem.off_chip.writes
        outcome = table.delete(keys[0])
        assert outcome.deleted
        assert table.mem.off_chip.writes == before_writes + 1  # paper: always 1
        assert not table.lookup(keys[0]).found
        assert len(table) == len(keys) - 1

    def test_delete_missing(self, strategy):
        table, keys = filled(strategy)
        assert not table.delete(missing_keys(1, set(keys), seed=193)[0]).deleted

    def test_update(self, strategy):
        table, keys = filled(strategy)
        outcome = table.upsert(keys[0], "new")
        assert outcome.status is InsertStatus.UPDATED
        assert table.get(keys[0]) == "new"

    def test_items(self, strategy):
        table, keys = filled(strategy, load=0.4)
        assert len(dict(table.items())) == len(keys)

    def test_high_load_fill(self, strategy):
        table, keys = filled(strategy, load=0.85, n_buckets=256, seed=194)
        assert len(table) == len(keys)
        for key in keys[::5]:
            assert table.lookup(key).found


class TestKickAccounting:
    def test_kicks_counted(self):
        table, _ = filled("random", load=0.85, n_buckets=256, seed=195)
        assert table.total_kicks > 0

    def test_collision_event_recorded(self):
        table, _ = filled("random", load=0.7, seed=196)
        assert table.events.first_collision_items is not None

    def test_bfs_finds_shorter_paths_than_random(self):
        """BFS moves at most as many items as the shortest eviction path;
        random-walk wanders.  Compare writes at equal high load."""
        random_table, _ = filled("random", load=0.88, n_buckets=512, seed=197)
        bfs_table, _ = filled("bfs", load=0.88, n_buckets=512, seed=197)
        assert bfs_table.total_kicks <= random_table.total_kicks


class TestFailurePolicies:
    def test_fail_rolls_back(self):
        table = CuckooTable(8, d=3, maxloop=3, seed=198,
                            on_failure=FailurePolicy.FAIL)
        keys = distinct_keys(200, seed=199)
        stored = []
        failed = 0
        for key in keys:
            outcome = table.put(key)
            if outcome.failed:
                failed += 1
            else:
                stored.append(key)
        assert failed > 0
        # every successfully stored key must still be present (rollback!)
        for key in stored:
            assert table.lookup(key).found

    def test_rehash_grows_and_preserves(self):
        table = CuckooTable(8, d=3, maxloop=2, seed=200,
                            on_failure=FailurePolicy.REHASH)
        keys = distinct_keys(120, seed=201)
        for index, key in enumerate(keys):
            table.put(key, index)
        assert table.rehash_count >= 1
        for index, key in enumerate(keys):
            assert table.get(key) == index

    def test_bfs_failure_keeps_table_intact(self):
        table = CuckooTable(4, d=3, maxloop=4, seed=202, strategy="bfs",
                            on_failure=FailurePolicy.FAIL)
        stored = []
        for key in distinct_keys(60, seed=203):
            if not table.put(key).failed:
                stored.append(key)
        for key in stored:
            assert table.lookup(key).found
