"""Property-based crash-recovery tests for the durable log store.

The durable store's log image is "the disk".  These tests crash the store
at *every* record boundary and at offsets inside records (a torn write),
recover from the truncated image, and check the recovered state against a
dict model replayed to the same point — the definition of "no acknowledged
write is lost, no unacknowledged write is resurrected" at the store layer.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    CorruptLogError,
    LogStructuredStore,
    RecoveryReport,
    scan_log_bytes,
)
from repro.faults import FaultPlan, InjectedCrash
from tests.seeding import derive


def _apply_ops(store, ops):
    """Apply (verb, key, value) ops; yield a boundary after each append.

    Returns ``[(byte_offset, model_snapshot), ...]`` starting at offset 0
    with the empty model — one entry per state the disk ever showed.
    """
    model = {}
    boundaries = [(0, {})]
    for verb, key, value in ops:
        if verb == "put":
            store.put(key, value)
            model[key] = value
        else:
            existed = store.delete(key)
            assert existed == (key in model)
            if not existed:
                continue  # nothing appended, no new boundary
            model.pop(key)
        boundaries.append((len(store.log_bytes), dict(model)))
    return boundaries


def _random_ops(rng, n_ops, key_space=24):
    """A seeded mixed op sequence over a small key space."""
    ops = []
    for index in range(n_ops):
        key = rng.randrange(1, key_space)
        if rng.random() < 0.70:
            kind = rng.random()
            if kind < 0.5:
                value = bytes([index % 256]) * rng.randrange(0, 40)
            elif kind < 0.8:
                value = f"value-{index}"
            else:
                value = {"op": index, "k": key}
            ops.append(("put", key, value))
        else:
            ops.append(("delete", key, None))
    return ops


def _recover(data, seed):
    return LogStructuredStore.recover_from_bytes(
        data, expected_items=64, seed=seed
    )


class TestCrashAtEveryBoundary:
    def test_full_boundary_matrix(self):
        """Crash cleanly between any two records: exact replay, no tail."""
        rng = random.Random(derive(0x600D))
        store = LogStructuredStore(expected_items=64, seed=derive(41),
                                   durable=True)
        boundaries = _apply_ops(store, _random_ops(rng, 60))
        image = store.log_bytes
        assert boundaries[-1][0] == len(image)

        appends = 0
        for offset, model in boundaries:
            recovered = _recover(image[:offset], seed=derive(42))
            assert dict(recovered.items()) == model
            report = recovered.recovery_report
            assert report.records_replayed == appends
            assert report.live_keys == len(model)
            assert report.bytes_truncated == 0
            assert not report.torn_tail
            appends += 1

    def test_mid_record_offsets_truncate_torn_tail(self):
        """Crash inside a record: the torn tail is dropped, state rolls
        back to the last complete record, and the report says how much."""
        rng = random.Random(derive(0xBAD))
        store = LogStructuredStore(expected_items=64, seed=derive(43),
                                   durable=True)
        boundaries = _apply_ops(store, _random_ops(rng, 40))
        image = store.log_bytes

        for (prev, model), (nxt, _) in zip(boundaries, boundaries[1:]):
            cuts = {prev + 1, (prev + nxt) // 2, nxt - 1} - {prev, nxt}
            for cut in cuts:
                recovered = _recover(image[:cut], seed=derive(44))
                assert dict(recovered.items()) == model
                report = recovered.recovery_report
                assert report.torn_tail
                assert report.bytes_truncated == cut - prev
                assert report.bytes_scanned == cut

    @settings(max_examples=25, deadline=None)
    @given(data=st.data(),
           op_seed=st.integers(min_value=0, max_value=1 << 20),
           n_ops=st.integers(min_value=1, max_value=25))
    def test_any_prefix_recovers_some_boundary_state(self, data, op_seed,
                                                     n_ops):
        """Property: recovery of ANY byte prefix of the image lands exactly
        on one of the states the disk passed through."""
        store = LogStructuredStore(expected_items=64, seed=1, durable=True)
        boundaries = _apply_ops(store, _random_ops(random.Random(op_seed),
                                                   n_ops))
        image = store.log_bytes
        cut = data.draw(st.integers(min_value=0, max_value=len(image)),
                        label="cut")
        recovered = _recover(image[:cut], seed=2)
        states = [model for offset, model in boundaries if offset <= cut]
        assert dict(recovered.items()) == states[-1]


class TestCorruptionDetection:
    def test_mid_log_bitflip_raises(self):
        store = LogStructuredStore(expected_items=64, seed=derive(45),
                                   durable=True)
        for key in range(1, 30):
            store.put(key, b"x" * 20)
        image = bytearray(store.log_bytes)
        image[10] ^= 0xFF  # inside the first record, not the tail
        with pytest.raises(CorruptLogError):
            LogStructuredStore.recover_from_bytes(bytes(image))

    def test_tail_bitflip_is_a_torn_write(self):
        store = LogStructuredStore(expected_items=64, seed=derive(46),
                                   durable=True)
        store.put(1, b"a")
        store.put(2, b"b")
        image = bytearray(store.log_bytes)
        image[-1] ^= 0x01  # corrupts the LAST record's CRC: torn, not fatal
        recovered = LogStructuredStore.recover_from_bytes(bytes(image))
        assert dict(recovered.items()) == {1: b"a"}
        assert recovered.recovery_report.torn_tail


class TestInjectedCrashes:
    def test_torn_write_injection_loses_only_the_torn_record(self):
        plan = FaultPlan.parse("torn_write=5", seed=derive(47))
        store = LogStructuredStore(expected_items=64, seed=derive(48),
                                   durable=True, faults=plan)
        written = {}
        with pytest.raises(InjectedCrash):
            for key in range(1, 100):
                store.put(key, bytes([key]) * 8)
                written[key] = bytes([key]) * 8
        assert len(written) == 4  # the 5th append tore before acking
        recovered = LogStructuredStore.recover_from_bytes(store.log_bytes)
        assert dict(recovered.items()) == written
        assert recovered.recovery_report.torn_tail
        assert recovered.recovery_report.bytes_truncated > 0

    def test_crash_after_append_keeps_the_record(self):
        plan = FaultPlan.parse("crash_after_appends=3", seed=derive(49))
        store = LogStructuredStore(expected_items=64, seed=derive(50),
                                   durable=True, faults=plan)
        with pytest.raises(InjectedCrash):
            for key in range(1, 100):
                store.put(key, b"v")
        # crash_after_appends persists the record before crashing: the
        # un-acked 3rd write may legitimately survive recovery
        recovered = LogStructuredStore.recover_from_bytes(store.log_bytes)
        assert dict(recovered.items()) == {1: b"v", 2: b"v", 3: b"v"}
        assert not recovered.recovery_report.torn_tail

    def test_recovered_store_is_usable_and_fault_free(self):
        plan = FaultPlan.parse("torn_write=3", seed=derive(51))
        store = LogStructuredStore(expected_items=64, seed=derive(52),
                                   durable=True, faults=plan)
        with pytest.raises(InjectedCrash):
            for key in range(1, 50):
                store.put(key, b"v")
        recovered = LogStructuredStore.recover_from_bytes(store.log_bytes)
        # no fault plan attached: the recovered store must take writes
        for key in range(100, 150):
            recovered.put(key, b"w")
        assert recovered.get(120) == b"w"


class TestReportShape:
    def test_report_counts_and_render(self):
        store = LogStructuredStore(expected_items=64, seed=derive(53),
                                   durable=True)
        store.put(1, b"a")
        store.put(2, b"b")
        store.put(1, b"a2")
        store.delete(2)
        records, report = scan_log_bytes(store.log_bytes)
        assert len(records) == 4
        assert report.records_replayed == 4
        assert report.tombstones_replayed == 1
        assert report.bytes_scanned == len(store.log_bytes)
        recovered = store.recover()
        assert isinstance(recovered.recovery_report, RecoveryReport)
        assert recovered.recovery_report.live_keys == 1
        text = recovered.recovery_report.render()
        assert "1 live keys" in text and "4 records" in text
