"""End-to-end faultgen harness tests: the zero-lost-acked-writes check.

These run the real server + client + fault plan in-process.  The smoke
shape keeps runtime low; the assertions are the acceptance criteria —
verdict PASS, faults actually fired, recoveries actually happened, and
nothing hung.
"""

import asyncio
import dataclasses

import pytest

from repro.serve import FaultgenConfig, run_faultgen
from repro.serve.faultgen import DEFAULT_FAULT_SPEC
from tests.seeding import derive


def run_config(config):
    return asyncio.run(run_faultgen(config))


class TestSmokeRun:
    def test_smoke_passes_with_zero_lost_acked_writes(self):
        config = FaultgenConfig.smoke(seed=derive(0))
        report = run_config(config)
        assert report.ok, report.render()
        assert report.lost_acked_writes == 0
        assert report.phantom_values == 0
        assert not report.hung
        assert report.ops_acked + report.ops_unacked == report.ops_issued
        assert report.ops_issued == config.n_ops
        # the run was actually hostile: the fault classes fired
        assert report.faults_fired.get("busy", 0) > 0
        assert report.faults_fired.get("crash", 0) + \
            report.faults_fired.get("torn_write", 0) > 0
        assert report.shard_recoveries > 0

    def test_report_render_mentions_seed_and_verdict(self):
        config = FaultgenConfig.smoke(seed=derive(3))
        report = run_config(config)
        text = report.render()
        assert f"seed={config.seed}" in text
        assert "verdict" in text
        assert "PASS" in text

    @pytest.mark.parametrize("seed_tag", [1, 2])
    def test_multiple_seeds_pass(self, seed_tag):
        report = run_config(FaultgenConfig.smoke(seed=derive(seed_tag)))
        assert report.ok, report.render()


class TestConfigShapes:
    def test_custom_fault_spec(self):
        config = dataclasses.replace(
            FaultgenConfig.smoke(seed=derive(5)),
            faults="busy=0.05; drop_connection=0.02",
        )
        report = run_config(config)
        assert report.ok, report.render()
        assert report.faults_fired.get("busy", 0) > 0
        # no crash rules configured: no recoveries should happen
        assert report.shard_recoveries == 0

    def test_default_spec_is_the_hostile_one(self):
        assert "crash_after_appends" in DEFAULT_FAULT_SPEC
        assert "torn_write" in DEFAULT_FAULT_SPEC
        assert "corrupt_frame" in DEFAULT_FAULT_SPEC


class TestMaintenanceAudit:
    """Maintenance must never cost an acknowledged write — even when the
    faults strike *inside* a compaction or a checkpoint write."""

    def test_effective_faults_extends_spec_per_mode(self):
        single = FaultgenConfig.smoke(seed=0, maintenance=True)
        assert "crash_during_compaction=1" in single.effective_faults()
        assert "torn_checkpoint=1" in single.effective_faults()
        worker = dataclasses.replace(single, n_workers=2)
        assert "kill_worker_during=compaction:1" in worker.effective_faults()
        assert "kill_worker_during=checkpoint:1" in worker.effective_faults()
        plain = FaultgenConfig.smoke(seed=0)
        assert plain.effective_faults() == plain.faults

    def test_smoke_passes_with_maintenance_strikes(self):
        config = FaultgenConfig.smoke(seed=derive(7), maintenance=True)
        report = run_config(config)
        assert report.ok, report.render()
        assert report.lost_acked_writes == 0
        assert report.phantom_values == 0
        # the strikes landed inside maintenance, and recovery absorbed them
        fired = report.faults_fired
        assert fired.get("crash_during_compaction", 0) > 0
        assert fired.get("torn_checkpoint", 0) > 0
        assert report.shard_recoveries > 0
