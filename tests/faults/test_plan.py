"""FaultPlan unit tests: grammar, determinism, counters, lifecycle."""

import pytest

from repro.faults import (
    FRAME_CORRUPT,
    FRAME_DROP,
    FRAME_OK,
    FaultPlan,
    FaultSpecError,
)
from tests.seeding import derive


class TestGrammar:
    def test_full_spec_parses_and_describes(self):
        spec = ("crash_after_appends=10@2; torn_write=5:7@1; "
                "delay_shard=0:0.01:3; busy=0.1; drop_connection=0.2; "
                "corrupt_frame=0.3")
        plan = FaultPlan.parse(spec, seed=4)
        assert [rule.kind for rule in plan.rules] == [
            "crash_after_appends", "torn_write", "delay_shard", "busy",
            "drop_connection", "corrupt_frame",
        ]
        assert "crash_after_appends=10@2" in plan.describe()
        assert "torn_write=5:7@1" in plan.describe()
        assert "delay_shard=0:0.01:3" in plan.describe()
        assert "seed=4" in plan.describe()

    def test_comma_and_semicolon_separators_equivalent(self):
        a = FaultPlan.parse("busy=0.1, corrupt_frame=0.2", seed=0)
        b = FaultPlan.parse("busy=0.1; corrupt_frame=0.2", seed=0)
        assert a.describe() == b.describe()

    def test_torn_write_defaults(self):
        rule = FaultPlan.parse("torn_write=3", seed=0).rules[0]
        assert rule.count == 3
        assert rule.keep_bytes is None
        assert rule.shard is None

    def test_delay_shard_default_every(self):
        rule = FaultPlan.parse("delay_shard=2:0.5", seed=0).rules[0]
        assert (rule.shard, rule.seconds, rule.every) == (2, 0.5, 1)

    @pytest.mark.parametrize("bad", [
        "",
        "   ;  , ",
        "explode=1",
        "crash_after_appends",
        "crash_after_appends=zero",
        "crash_after_appends=0",
        "crash_after_appends=-3",
        "torn_write=5:x",
        "delay_shard=1",
        "busy=1.5",
        "drop_connection=-0.1",
        "crash_during_compaction=0",
        "torn_checkpoint=1:x",
        "kill_worker_during=1",
        "kill_worker_during=frobnicate:1",
        "kill_worker_during=compaction:zero",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad, seed=0)


class TestDeterminism:
    def _frame_schedule(self, plan, n=200):
        return [plan.on_frame_send(b"xyz-body")[0] for _ in range(n)]

    def test_same_seed_same_schedule(self):
        seed = derive(17)
        spec = "drop_connection=0.2; corrupt_frame=0.2; busy=0.3"
        one = FaultPlan.parse(spec, seed=seed)
        two = FaultPlan.parse(spec, seed=seed)
        assert self._frame_schedule(one) == self._frame_schedule(two)
        assert [one.should_reject_busy() for _ in range(100)] == \
               [two.should_reject_busy() for _ in range(100)]
        assert one.fired_counts() == two.fired_counts()

    def test_different_seeds_diverge(self):
        spec = "corrupt_frame=0.5"
        one = self._frame_schedule(FaultPlan.parse(spec, seed=1))
        two = self._frame_schedule(FaultPlan.parse(spec, seed=2))
        assert one != two  # 2^-200 false-failure odds

    def test_reset_replays_identically(self):
        plan = FaultPlan.parse("corrupt_frame=0.3; crash_after_appends=2",
                               seed=derive(23))
        first = self._frame_schedule(plan, 50)
        first_append = [plan.on_append() is not None for _ in range(5)]
        plan.reset()
        assert self._frame_schedule(plan, 50) == first
        assert [plan.on_append() is not None for _ in range(5)] == first_append

    def test_corruption_flips_exactly_one_byte(self):
        plan = FaultPlan.parse("corrupt_frame=1.0", seed=derive(3))
        body = bytes(range(64))
        verdict, mutated = plan.on_frame_send(body)
        assert verdict == FRAME_CORRUPT
        assert len(mutated) == len(body)
        assert sum(a != b for a, b in zip(body, mutated)) == 1


class TestCounters:
    def test_crash_fires_on_nth_append_once(self):
        plan = FaultPlan.parse("crash_after_appends=3", seed=0)
        hits = [plan.on_append() for _ in range(10)]
        assert [fault is not None for fault in hits] == \
               [False, False, True] + [False] * 7
        assert hits[2].crash and not hits[2].torn
        assert plan.fired_counts() == {"crash": 1}

    def test_shard_filter_counts_only_matching_shard(self):
        plan = FaultPlan.parse("crash_after_appends=2@1", seed=0)
        assert plan.on_append(shard=0) is None
        assert plan.on_append(shard=1) is None
        assert plan.on_append(shard=0) is None  # shard 0 never counts
        assert plan.on_append(shard=1) is not None  # 2nd shard-1 append

    def test_torn_write_carries_keep_bytes(self):
        plan = FaultPlan.parse("torn_write=1:9", seed=0)
        fault = plan.on_append()
        assert fault.torn and fault.crash and fault.keep_bytes == 9
        assert plan.fired_counts() == {"torn_write": 1}

    def test_delay_every_n(self):
        plan = FaultPlan.parse("delay_shard=1:0.25:3", seed=0)
        delays = [plan.writer_delay(1) for _ in range(6)]
        assert delays == [0.0, 0.0, 0.25, 0.0, 0.0, 0.25]
        assert plan.writer_delay(0) == 0.0  # other shards unaffected
        assert plan.fired_counts() == {"delay": 2}


class TestLifecycle:
    def test_disarmed_plan_is_inert(self):
        plan = FaultPlan.parse(
            "crash_after_appends=1; busy=1.0; drop_connection=1.0", seed=0
        )
        plan.disarm()
        assert not plan.armed
        assert plan.on_append() is None
        assert plan.should_reject_busy() is False
        assert plan.on_frame_send(b"abc") == (FRAME_OK, b"abc")
        assert plan.fired_counts() == {}
        plan.arm()
        assert plan.on_frame_send(b"abc")[0] == FRAME_DROP

    def test_disarm_does_not_consume_one_shots(self):
        plan = FaultPlan.parse("crash_after_appends=1", seed=0)
        plan.disarm()
        for _ in range(5):
            assert plan.on_append() is None
        plan.arm()
        assert plan.on_append() is not None


class TestKillWorker:
    def test_parse_describe_roundtrip(self):
        plan = FaultPlan.parse("kill_worker=3@1", seed=derive(60))
        assert "kill_worker=3@1" in plan.describe()
        rebuilt = FaultPlan.parse(plan.spec(), seed=plan.seed)
        assert rebuilt.describe() == plan.describe()

    def test_fires_once_on_nth_write(self):
        plan = FaultPlan.parse("kill_worker=3", seed=0)
        fired = [plan.should_kill_worker(0) for _ in range(6)]
        assert fired == [False, False, True, False, False, False]
        assert plan.fired_counts() == {"kill_worker": 1}

    def test_worker_scope_counts_only_that_worker(self):
        plan = FaultPlan.parse("kill_worker=2@1", seed=0)
        assert plan.should_kill_worker(0) is False
        assert plan.should_kill_worker(1) is False
        assert plan.should_kill_worker(0) is False  # worker 0 never counts
        assert plan.should_kill_worker(1) is True
        assert plan.should_kill_worker(1) is False  # one-shot

    def test_disarmed_plan_never_kills(self):
        plan = FaultPlan.parse("kill_worker=1", seed=0)
        plan.disarm()
        assert all(not plan.should_kill_worker(0) for _ in range(5))
        plan.arm()
        assert plan.should_kill_worker(0) is True

    def test_spec_ships_every_rule_kind(self):
        spec = ("crash_after_appends=10@2; torn_write=5:7@1; busy=0.25; "
                "kill_worker=4; delay_shard=0:0.01:3; "
                "crash_during_compaction=2@1; torn_checkpoint=1:10; "
                "kill_worker_during=checkpoint:3@0")
        plan = FaultPlan.parse(spec, seed=9)
        rebuilt = FaultPlan.parse(plan.spec(), seed=9)
        assert rebuilt.describe() == plan.describe()


class TestMaintenanceRules:
    """The compaction/checkpoint fault surface (repro.maintenance)."""

    def test_parse_describe_roundtrip(self):
        spec = ("crash_during_compaction=2@1; torn_checkpoint=1:10; "
                "kill_worker_during=compaction:1@0")
        plan = FaultPlan.parse(spec, seed=derive(61))
        assert "crash_during_compaction=2@1" in plan.describe()
        assert "torn_checkpoint=1:10" in plan.describe()
        assert "kill_worker_during=compaction:1@0" in plan.describe()
        rebuilt = FaultPlan.parse(plan.spec(), seed=plan.seed)
        assert rebuilt.describe() == plan.describe()

    def test_compaction_crash_fires_on_nth_record_once(self):
        plan = FaultPlan.parse("crash_during_compaction=3", seed=0)
        fired = [plan.on_compaction_record() for _ in range(6)]
        assert fired == [False, False, True, False, False, False]
        assert plan.fired_counts() == {"crash_during_compaction": 1}

    def test_compaction_crash_shard_scoped(self):
        plan = FaultPlan.parse("crash_during_compaction=2@1", seed=0)
        assert plan.on_compaction_record(shard=0) is False
        assert plan.on_compaction_record(shard=1) is False
        assert plan.on_compaction_record(shard=0) is False  # never counts
        assert plan.on_compaction_record(shard=1) is True

    def test_torn_checkpoint_carries_keep_bytes(self):
        plan = FaultPlan.parse("torn_checkpoint=2:10", seed=0)
        assert plan.on_checkpoint_write() is None  # 1st write is clean
        fault = plan.on_checkpoint_write()
        assert fault is not None
        assert fault.torn and fault.crash and fault.keep_bytes == 10
        assert plan.on_checkpoint_write() is None  # one-shot
        assert plan.fired_counts() == {"torn_checkpoint": 1}

    def test_torn_checkpoint_default_keep_is_unset(self):
        fault = FaultPlan.parse("torn_checkpoint=1", seed=0).on_checkpoint_write()
        assert fault.keep_bytes is None  # store tears at half the artifact

    def test_kill_during_site_is_exact(self):
        plan = FaultPlan.parse("kill_worker_during=checkpoint:1", seed=0)
        assert plan.should_kill_maintenance("compaction", 0) is False
        assert plan.should_kill_maintenance("checkpoint", 0) is True
        assert plan.should_kill_maintenance("checkpoint", 0) is False  # spent
        assert plan.fired_counts() == {"kill_worker_during": 1}

    def test_kill_during_worker_scoped(self):
        plan = FaultPlan.parse("kill_worker_during=compaction:2@1", seed=0)
        assert plan.should_kill_maintenance("compaction", 0) is False
        assert plan.should_kill_maintenance("compaction", 1) is False
        assert plan.should_kill_maintenance("compaction", 0) is False
        assert plan.should_kill_maintenance("compaction", 1) is True

    def test_disarmed_plan_skips_maintenance_rules(self):
        plan = FaultPlan.parse(
            "crash_during_compaction=1; torn_checkpoint=1; "
            "kill_worker_during=compaction:1", seed=0
        )
        plan.disarm()
        assert plan.on_compaction_record() is False
        assert plan.on_checkpoint_write() is None
        assert plan.should_kill_maintenance("compaction", 0) is False
        assert plan.fired_counts() == {}
        plan.arm()
        assert plan.on_compaction_record() is True
