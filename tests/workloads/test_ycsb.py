"""Tests for the YCSB-style workload generator."""

import pytest

from repro import BCHT, DeletionMode, McCuckoo
from repro.workloads import MIXES, OpKind, YCSBConfig, YCSBWorkload, replay


class TestConfig:
    def test_rejects_unknown_mix(self):
        with pytest.raises(ValueError):
            YCSBConfig(workload="E")

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            YCSBConfig(n_records=0)
        with pytest.raises(ValueError):
            YCSBConfig(n_ops=0)

    def test_all_mixes_sum_to_one(self):
        for name, mix in MIXES.items():
            assert sum(mix.values()) == pytest.approx(1.0), name


class TestGeneration:
    def _ops(self, workload, n_records=300, n_ops=2000, seed=1):
        w = YCSBWorkload(YCSBConfig(workload, n_records, n_ops, seed=seed))
        return list(w.load_phase()), list(w.run_phase())

    def test_load_phase_inserts_every_record(self):
        load, _ = self._ops("A")
        assert len(load) == 300
        assert all(op.kind is OpKind.INSERT for op in load)
        assert len({op.key for op in load}) == 300

    def test_workload_a_mix(self):
        _, run = self._ops("A")
        reads = sum(1 for op in run if op.kind is OpKind.LOOKUP)
        updates = sum(1 for op in run if op.kind is OpKind.UPDATE)
        assert 0.4 < reads / len(run) < 0.6
        assert 0.4 < updates / len(run) < 0.6

    def test_workload_c_read_only(self):
        _, run = self._ops("C")
        assert all(op.kind is OpKind.LOOKUP for op in run)

    def test_workload_d_inserts_fresh_keys(self):
        load, run = self._ops("D")
        loaded = {op.key for op in load}
        inserts = [op for op in run if op.kind is OpKind.INSERT]
        assert inserts
        assert all(op.key not in loaded for op in inserts)

    def test_workload_f_rmw_pairs(self):
        _, run = self._ops("F")
        updates = [i for i, op in enumerate(run) if op.kind is OpKind.UPDATE]
        assert updates
        for index in updates:
            assert run[index - 1].kind is OpKind.LOOKUP
            assert run[index - 1].key == run[index].key

    def test_zipf_skew_concentrates_reads(self):
        _, run = self._ops("C", seed=2)
        counts = {}
        for op in run:
            counts[op.key] = counts.get(op.key, 0) + 1
        top = max(counts.values())
        assert top > len(run) / 300 * 5  # far above uniform share

    def test_reads_target_loaded_or_inserted_keys(self):
        load, run = self._ops("D", seed=3)
        known = {op.key for op in load}
        for op in run:
            if op.kind is OpKind.INSERT:
                known.add(op.key)
            elif op.kind is OpKind.LOOKUP:
                assert op.key in known

    def test_deterministic(self):
        a = self._ops("B", seed=5)
        b = self._ops("B", seed=5)
        assert a == b


@pytest.mark.parametrize("workload", sorted(MIXES))
class TestReplayThroughTables:
    def test_mccuckoo_serves_mix_cleanly(self, workload):
        config = YCSBConfig(workload, n_records=400, n_ops=1500, seed=7)
        generator = YCSBWorkload(config)
        table = McCuckoo(200, d=3, seed=8, deletion_mode=DeletionMode.RESET)
        load_stats = replay(table, generator.load_phase())
        run_stats = replay(table, generator.run_phase(), check=False)
        assert load_stats.false_negatives == 0
        assert run_stats.lookups + run_stats.updates + run_stats.inserts > 0

    def test_bcht_serves_mix_cleanly(self, workload):
        config = YCSBConfig(workload, n_records=400, n_ops=1000, seed=9)
        generator = YCSBWorkload(config)
        table = BCHT(70, d=3, slots=3, seed=10)
        replay(table, generator.load_phase())
        stats = replay(table, generator.run_phase(), check=False)
        assert stats.false_negatives == 0


class TestReplayValidation:
    def test_update_validated_against_shadow(self):
        """Full end-to-end with check=True over a mixed load+run trace."""
        config = YCSBConfig("A", n_records=300, n_ops=1200, seed=11)
        generator = YCSBWorkload(config)
        table = McCuckoo(200, d=3, seed=12, deletion_mode=DeletionMode.RESET)

        def combined():
            yield from generator.load_phase()
            yield from generator.run_phase()

        stats = replay(table, combined())
        assert stats.false_negatives == 0
        assert stats.false_positives == 0
        assert stats.updates > 0
