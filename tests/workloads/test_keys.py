"""Tests for key-stream generators."""

import itertools

import pytest

from repro.hashing import MASK64
from repro.workloads import distinct_keys, key_stream, missing_keys, sample_keys


class TestDistinctKeys:
    def test_count(self):
        assert len(distinct_keys(100, seed=1)) == 100

    def test_zero(self):
        assert distinct_keys(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            distinct_keys(-1)

    def test_distinct(self):
        keys = distinct_keys(5000, seed=2)
        assert len(set(keys)) == 5000

    def test_deterministic(self):
        assert distinct_keys(50, seed=3) == distinct_keys(50, seed=3)

    def test_seed_changes_keys(self):
        assert distinct_keys(50, seed=4) != distinct_keys(50, seed=5)

    def test_range(self):
        assert all(0 <= key <= MASK64 for key in distinct_keys(100, seed=6))


class TestKeyStream:
    def test_matches_distinct_keys(self):
        stream = key_stream(seed=7)
        assert list(itertools.islice(stream, 20)) == distinct_keys(20, seed=7)

    def test_endless_and_distinct(self):
        seen = set(itertools.islice(key_stream(seed=8), 2000))
        assert len(seen) == 2000


class TestMissingKeys:
    def test_disjoint_from_present(self):
        present = set(distinct_keys(500, seed=9))
        absent = missing_keys(500, present, seed=10)
        assert not set(absent) & present
        assert len(set(absent)) == 500

    def test_deterministic(self):
        present = set(distinct_keys(10, seed=11))
        assert missing_keys(20, present, seed=12) == missing_keys(20, present, seed=12)


class TestSampleKeys:
    def test_sample_is_subset(self):
        keys = distinct_keys(100, seed=13)
        sample = sample_keys(keys, 30, seed=14)
        assert len(sample) == 30
        assert set(sample) <= set(keys)
        assert len(set(sample)) == 30  # without replacement

    def test_deterministic(self):
        keys = distinct_keys(100, seed=15)
        assert sample_keys(keys, 10, seed=16) == sample_keys(keys, 10, seed=16)

    def test_oversample_rejected(self):
        with pytest.raises(ValueError):
            sample_keys(distinct_keys(5, seed=17), 6)
