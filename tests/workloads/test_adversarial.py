"""Adversarial key sets: the schemes must degrade gracefully, never lose data."""

import pytest

from repro import CuckooTable, FailurePolicy, McCuckoo
from repro.core import check_mccuckoo
from repro.workloads.adversarial import (
    attack_overload_factor,
    expected_capacity_of_window,
    mine_colliding_keys,
)

WINDOW = 3


def small_table(**kwargs):
    return McCuckoo(48, d=3, seed=70, maxloop=100, **kwargs)


class TestMining:
    def test_rejects_bad_parameters(self):
        table = small_table()
        with pytest.raises(ValueError):
            mine_colliding_keys(table, 0)
        with pytest.raises(ValueError):
            mine_colliding_keys(table, 5, window=0)

    def test_mined_keys_land_in_window(self):
        table = small_table()
        keys = mine_colliding_keys(table, 12, window=WINDOW, seed=71)
        assert len(set(keys)) == 12
        for key in keys:
            for bucket in table._candidates(key):
                assert bucket % table.n_buckets < WINDOW

    def test_budget_exhaustion_raises(self):
        table = McCuckoo(5000, d=3, seed=72)
        with pytest.raises(RuntimeError):
            mine_colliding_keys(table, 10, window=1, max_draws=200)

    def test_capacity_formula(self):
        table = small_table()
        assert expected_capacity_of_window(table, WINDOW) == 9
        keys = list(range(18))
        assert attack_overload_factor(keys, table, WINDOW) == 2.0


class TestAttackResilience:
    def _attack(self, table, overload=2.0):
        capacity = expected_capacity_of_window(table, WINDOW)
        return mine_colliding_keys(
            table, int(capacity * overload), window=WINDOW, seed=73
        )

    def test_mccuckoo_spills_to_stash_without_losing_items(self):
        table = small_table()
        keys = self._attack(table)
        for key in keys:
            outcome = table.put(key)
            assert not outcome.failed  # stash absorbs everything
        assert len(table.stash) > 0
        for key in keys:
            assert table.lookup(key).found, "attack caused data loss"
        check_mccuckoo(table)

    def test_stashed_fraction_bounded_by_window_math(self):
        table = small_table()
        keys = self._attack(table, overload=2.0)
        for key in keys:
            table.put(key)
        capacity = expected_capacity_of_window(table, WINDOW)
        # at most capacity items fit in the window; the rest must be stashed
        assert len(table.stash) >= len(keys) - capacity

    def test_baseline_fail_mode_keeps_stored_items(self):
        table = CuckooTable(48, d=3, seed=70, maxloop=100,
                            on_failure=FailurePolicy.FAIL)
        keys = self._attack(table)
        stored = [key for key in keys if not table.put(key).failed]
        assert len(stored) < len(keys)  # the attack does cause failures
        for key in stored:
            assert table.lookup(key).found

    def test_normal_keys_unaffected_by_attack(self):
        """The attack only saturates its window; keys elsewhere still work."""
        from repro.workloads import distinct_keys

        table = small_table()
        for key in self._attack(table):
            table.put(key)
        normal = [
            key
            for key in distinct_keys(400, seed=74)
            if all(b % table.n_buckets >= WINDOW for b in table._candidates(key))
        ][:40]
        for key in normal:
            assert not table.put(key).failed
        for key in normal:
            assert table.lookup(key).found
