"""Tests for operation traces and the replay validator."""

import pytest

from repro import CuckooTable, DeletionMode, McCuckoo
from repro.workloads import OpKind, TraceGenerator, replay


class TestTraceGenerator:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TraceGenerator(0)
        with pytest.raises(ValueError):
            TraceGenerator(10, insert_ratio=-1)
        with pytest.raises(ValueError):
            TraceGenerator(10, 0, 0, 0, 0)

    def test_emits_requested_count(self):
        trace = list(TraceGenerator(200, seed=1))
        assert len(trace) == 200

    def test_deterministic(self):
        a = list(TraceGenerator(100, seed=2))
        b = list(TraceGenerator(100, seed=2))
        assert a == b

    def test_inserts_have_distinct_keys(self):
        inserts = [
            op.key for op in TraceGenerator(300, seed=3) if op.kind is OpKind.INSERT
        ]
        assert len(inserts) == len(set(inserts))

    def test_lookups_target_live_keys(self):
        live = set()
        for op in TraceGenerator(400, seed=4):
            if op.kind is OpKind.INSERT:
                live.add(op.key)
            elif op.kind is OpKind.LOOKUP:
                assert op.key in live
            elif op.kind is OpKind.DELETE:
                assert op.key in live
                live.discard(op.key)
            else:
                assert op.key not in live

    def test_missing_keys_never_inserted(self):
        ops = list(TraceGenerator(500, seed=5))
        inserted = {op.key for op in ops if op.kind is OpKind.INSERT}
        for op in ops:
            if op.kind is OpKind.LOOKUP_MISSING:
                assert op.key not in inserted

    def test_pure_insert_trace(self):
        ops = list(TraceGenerator(50, 1.0, 0.0, 0.0, 0.0, seed=6))
        assert all(op.kind is OpKind.INSERT for op in ops)

    def test_mix_roughly_matches_ratios(self):
        ops = list(
            TraceGenerator(2000, 0.4, 0.4, 0.1, 0.1, seed=7)
        )
        inserts = sum(1 for op in ops if op.kind is OpKind.INSERT)
        # inserts also absorb draws made while no key is live yet
        assert 0.3 < inserts / len(ops) < 0.55


class TestReplay:
    def test_mccuckoo_replay_clean(self):
        table = McCuckoo(128, d=3, seed=8, deletion_mode=DeletionMode.RESET)
        stats = replay(table, iter(TraceGenerator(800, seed=9)))
        assert stats.false_negatives == 0
        assert stats.false_positives == 0
        assert stats.inserts > 0
        assert stats.lookups > 0
        assert stats.deletes > 0

    def test_baseline_replay_clean(self):
        table = CuckooTable(128, d=3, seed=10)
        stats = replay(table, iter(TraceGenerator(800, seed=11)))
        assert stats.false_negatives == 0
        assert stats.false_positives == 0

    def test_tombstone_replay_clean(self):
        table = McCuckoo(128, d=3, seed=12, deletion_mode=DeletionMode.TOMBSTONE)
        stats = replay(table, iter(TraceGenerator(800, seed=13)))
        assert stats.false_negatives == 0
        assert stats.false_positives == 0

    def test_hit_and_miss_counting(self):
        table = McCuckoo(128, d=3, seed=14, deletion_mode=DeletionMode.RESET)
        stats = replay(
            table,
            iter(TraceGenerator(500, 0.5, 0.3, 0.2, 0.0, seed=15)),
        )
        assert stats.hits == stats.per_kind.get("lookup", 0)
        assert stats.delete_misses == 0

    def test_per_kind_totals(self):
        table = McCuckoo(128, d=3, seed=16, deletion_mode=DeletionMode.RESET)
        stats = replay(table, iter(TraceGenerator(300, seed=17)))
        assert sum(stats.per_kind.values()) == 300
