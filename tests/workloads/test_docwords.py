"""Tests for the synthetic DocWords corpus generator."""

import pytest

from repro.workloads import (
    DocWordsConfig,
    DocWordsGenerator,
    combine_ids,
    split_key,
)


class TestKeyPacking:
    def test_roundtrip(self):
        key = combine_ids(123, 456)
        assert split_key(key) == (123, 456)

    def test_extremes(self):
        key = combine_ids((1 << 32) - 1, (1 << 32) - 1)
        assert split_key(key) == ((1 << 32) - 1, (1 << 32) - 1)
        assert split_key(combine_ids(0, 0)) == (0, 0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            combine_ids(1 << 32, 0)
        with pytest.raises(ValueError):
            combine_ids(0, -1)

    def test_distinct_pairs_distinct_keys(self):
        assert combine_ids(1, 2) != combine_ids(2, 1)


class TestConfig:
    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            DocWordsConfig(n_docs=0)
        with pytest.raises(ValueError):
            DocWordsConfig(words_per_doc=0)

    def test_rejects_oversized_ids(self):
        with pytest.raises(ValueError):
            DocWordsConfig(n_words=(1 << 32) + 1)


class TestGenerator:
    def _small(self, seed=20):
        return DocWordsGenerator(
            DocWordsConfig(n_docs=20, n_words=500, words_per_doc=50, seed=seed)
        )

    def test_pairs_are_distinct_within_doc(self):
        for _doc_id, group in _group_by_doc(self._small().pairs()):
            assert len(group) == len(set(group))

    def test_all_keys_distinct(self):
        keys = self._small().materialise()
        assert len(keys) == len(set(keys))

    def test_keys_decode_to_valid_ids(self):
        config = DocWordsConfig(n_docs=20, n_words=500, words_per_doc=50)
        for key in DocWordsGenerator(config).materialise():
            doc, word = split_key(key)
            assert 0 <= doc < config.n_docs
            assert 0 <= word < config.n_words

    def test_deterministic(self):
        assert self._small(seed=21).materialise() == self._small(seed=21).materialise()

    def test_zipf_skew_present(self):
        """The most frequent word must appear in far more documents than the
        median word (the corpus is Zipfian, like real news text)."""
        generator = self._small(seed=22)
        doc_counts = {}
        for _, word in generator.pairs():
            doc_counts[word] = doc_counts.get(word, 0) + 1
        counts = sorted(doc_counts.values(), reverse=True)
        assert counts[0] >= 5 * counts[len(counts) // 2]

    def test_materialise_limit(self):
        keys = self._small().materialise(limit=17)
        assert len(keys) == 17

    def test_materialise_zero_means_all(self):
        generator = self._small(seed=23)
        assert len(generator.materialise(0)) == len(list(generator.keys()))

    def test_duplicate_draws_deduplicated(self):
        """words_per_doc draws with a hot Zipf head must yield fewer
        distinct pairs than draws (duplicates are dropped)."""
        config = DocWordsConfig(n_docs=10, n_words=50, words_per_doc=100, zipf_s=1.5)
        keys = DocWordsGenerator(config).materialise()
        assert len(keys) < 10 * 100


def _group_by_doc(pairs):
    groups = {}
    for doc_id, word_id in pairs:
        groups.setdefault(doc_id, []).append(word_id)
    return groups.items()


class TestFileLoader:
    def _write_sample(self, tmp_path, body):
        path = tmp_path / "docword.sample.txt"
        path.write_text(body, encoding="utf-8")
        return str(path)

    def test_loads_uci_format(self, tmp_path):
        from repro.workloads import load_docwords_file

        path = self._write_sample(
            tmp_path,
            "3\n5\n4\n1 2 10\n1 3 1\n2 2 7\n3 5 2\n",
        )
        keys = load_docwords_file(path)
        assert keys == [
            combine_ids(1, 2),
            combine_ids(1, 3),
            combine_ids(2, 2),
            combine_ids(3, 5),
        ]

    def test_limit(self, tmp_path):
        from repro.workloads import load_docwords_file

        path = self._write_sample(tmp_path, "2\n2\n3\n1 1 1\n1 2 1\n2 1 1\n")
        assert len(load_docwords_file(path, limit=2)) == 2

    def test_missing_header_rejected(self, tmp_path):
        from repro.workloads import load_docwords_file

        path = self._write_sample(tmp_path, "1\n2\n")
        with pytest.raises(ValueError):
            load_docwords_file(path)

    def test_malformed_line_rejected(self, tmp_path):
        from repro.workloads import load_docwords_file

        path = self._write_sample(tmp_path, "1\n1\n1\nbroken\n")
        with pytest.raises(ValueError):
            load_docwords_file(path)

    def test_blank_lines_skipped(self, tmp_path):
        from repro.workloads import load_docwords_file

        path = self._write_sample(tmp_path, "1\n1\n1\n\n1 1 5\n\n")
        assert load_docwords_file(path) == [combine_ids(1, 1)]
