"""Tests for the time-varying workloads: hot-key churn and diurnal ramps."""

import pytest

from repro import DeletionMode, McCuckoo
from repro.workloads import (
    DiurnalLoadGenerator,
    HotKeyChurnGenerator,
    OpKind,
    replay,
)
from tests.seeding import derive


class TestHotKeyChurn:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HotKeyChurnGenerator(0)
        with pytest.raises(ValueError):
            HotKeyChurnGenerator(10, n_keys=100, hot_size=101)
        with pytest.raises(ValueError):
            HotKeyChurnGenerator(10, rotate_every=0)
        with pytest.raises(ValueError):
            HotKeyChurnGenerator(10, hot_fraction=1.5)
        with pytest.raises(ValueError):
            HotKeyChurnGenerator(10, get_ratio=0, update_ratio=0,
                                 churn_ratio=0)

    def test_deterministic(self):
        seed = derive(6100)
        make = lambda: list(  # noqa: E731
            HotKeyChurnGenerator(400, n_keys=64, seed=seed))
        assert make() == make()

    def test_preload_covers_working_set_once(self):
        gen = HotKeyChurnGenerator(100, n_keys=50, hot_size=8,
                                   seed=derive(6101))
        ops = list(gen)
        preload = ops[:50]
        assert all(op.kind is OpKind.INSERT for op in preload)
        assert len({op.key for op in preload}) == 50
        body = ops[50:]
        assert not any(op.kind is OpKind.LOOKUP_MISSING for op in body)

    def test_no_preload_starts_with_traffic(self):
        ops = list(HotKeyChurnGenerator(60, n_keys=32, hot_size=8,
                                        seed=derive(6102),
                                        preload=False, churn_ratio=0.0))
        assert len(ops) == 60
        assert any(op.kind is not OpKind.INSERT for op in ops[:5])

    def test_hot_window_rotates(self):
        gen = HotKeyChurnGenerator(100, n_keys=128, hot_size=16,
                                   rotate_every=25, seed=derive(6103))
        starts = [gen.hot_window_start(i) for i in (0, 25, 50, 75)]
        assert starts == [0, 16, 32, 48]
        # wraps around the working set
        assert gen.hot_window_start(25 * 8) == 0

    def test_traffic_concentrates_on_current_window(self):
        n_keys, hot_size = 256, 16
        gen = HotKeyChurnGenerator(
            600, n_keys=n_keys, hot_size=hot_size, rotate_every=10_000,
            hot_fraction=1.0, churn_ratio=0.0, seed=derive(6104))
        ops = list(gen)
        preload = {op.key: i for i, op in enumerate(ops[:n_keys])}
        window = set(range(hot_size))  # window 0 never rotates here
        in_window = sum(1 for op in ops[n_keys:]
                        if preload[op.key] in window)
        assert in_window == len(ops) - n_keys

    def test_churn_pairs_delete_with_fresh_insert(self):
        gen = HotKeyChurnGenerator(
            300, n_keys=64, seed=derive(6105),
            get_ratio=0.0, update_ratio=0.0, churn_ratio=1.0)
        ops = list(gen)
        preload, body = ops[:64], ops[64:]
        seen = {op.key for op in preload}
        for delete_op, insert_op in zip(body[::2], body[1::2]):
            assert delete_op.kind is OpKind.DELETE
            assert insert_op.kind is OpKind.INSERT
            assert delete_op.key in seen
            assert insert_op.key not in seen
            seen.discard(delete_op.key)
            seen.add(insert_op.key)
        # occupancy is conserved by construction
        assert len(seen) == 64

    def test_replay_clean_against_mccuckoo(self):
        table = McCuckoo(128, d=3, seed=derive(6106),
                         deletion_mode=DeletionMode.TOMBSTONE,
                         stash_buckets=32)
        gen = HotKeyChurnGenerator(800, n_keys=256, seed=derive(6107))
        stats = replay(table, iter(gen))
        assert stats.false_negatives == 0
        assert stats.false_positives == 0
        assert stats.deletes > 0 and stats.lookups > 0


class TestDiurnal:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DiurnalLoadGenerator(0)
        with pytest.raises(ValueError):
            DiurnalLoadGenerator(10, base_keys=0)
        with pytest.raises(ValueError):
            DiurnalLoadGenerator(10, base_keys=20, peak_keys=10)
        with pytest.raises(ValueError):
            DiurnalLoadGenerator(10, period=1)
        with pytest.raises(ValueError):
            DiurnalLoadGenerator(10, get_ratio=1.0)

    def test_deterministic(self):
        seed = derive(6200)
        make = lambda: list(  # noqa: E731
            DiurnalLoadGenerator(500, base_keys=16, peak_keys=64,
                                 period=200, seed=seed))
        assert make() == make()

    def test_target_wave_shape(self):
        gen = DiurnalLoadGenerator(10, base_keys=100, peak_keys=500,
                                   period=1000)
        assert gen.target_keys(0) == 100          # trough at phase 0
        assert gen.target_keys(500) == 500        # peak half a period in
        assert gen.target_keys(1000) == 100       # periodic
        assert 100 < gen.target_keys(250) < 500

    def test_occupancy_tracks_target(self):
        period = 400
        gen = DiurnalLoadGenerator(2 * period, base_keys=20, peak_keys=120,
                                   period=period, get_ratio=0.3,
                                   seed=derive(6201))
        live = set()
        for i, op in enumerate(gen):
            if op.kind is OpKind.INSERT:
                assert op.key not in live
                live.add(op.key)
            elif op.kind is OpKind.DELETE:
                assert op.key in live
                live.discard(op.key)
            else:
                assert op.key in live
        # after two full periods we are back near the trough; lookups
        # interleave so allow slack proportional to the read share
        assert len(live) <= gen.target_keys(0) / (1 - gen.get_ratio) + 5

    def test_reaches_peak_occupancy(self):
        period = 300
        gen = DiurnalLoadGenerator(period, base_keys=10, peak_keys=80,
                                   period=period, get_ratio=0.2,
                                   seed=derive(6202))
        live, high_water = set(), 0
        for op in gen:
            if op.kind is OpKind.INSERT:
                live.add(op.key)
            elif op.kind is OpKind.DELETE:
                live.discard(op.key)
            high_water = max(high_water, len(live))
        assert high_water >= 70  # ~peak_keys, minus read interleaving

    def test_replay_clean_against_mccuckoo(self):
        table = McCuckoo(64, d=3, seed=derive(6203),
                         deletion_mode=DeletionMode.RESET, stash_buckets=32)
        gen = DiurnalLoadGenerator(1200, base_keys=16, peak_keys=128,
                                   period=400, zipf_s=0.9, seed=derive(6204))
        stats = replay(table, iter(gen))
        assert stats.false_negatives == 0
        assert stats.false_positives == 0
        assert stats.deletes > 0 and stats.inserts > stats.deletes
