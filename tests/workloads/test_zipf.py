"""Tests for the Zipf sampler."""

import pytest

from repro.workloads import ZipfSampler, zipf_choices


class TestZipfSampler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, s=-0.5)

    def test_samples_in_range(self):
        sampler = ZipfSampler(100, seed=1)
        for _ in range(500):
            assert 0 <= sampler.sample() < 100

    def test_rank_zero_most_frequent(self):
        sampler = ZipfSampler(50, s=1.0, seed=2)
        counts = {}
        for rank in sampler.sample_many(5000):
            counts[rank] = counts.get(rank, 0) + 1
        assert counts.get(0, 0) == max(counts.values())

    def test_skew_controls_concentration(self):
        flat = ZipfSampler(100, s=0.0, seed=3)
        steep = ZipfSampler(100, s=2.0, seed=3)

        def top_share(sampler):
            draws = sampler.sample_many(4000)
            return sum(1 for rank in draws if rank < 5) / len(draws)

        assert top_share(steep) > top_share(flat) + 0.3

    def test_uniform_when_s_zero(self):
        sampler = ZipfSampler(10, s=0.0, seed=4)
        counts = [0] * 10
        for rank in sampler.sample_many(10000):
            counts[rank] += 1
        assert min(counts) > 700

    def test_pmf_sums_to_one(self):
        sampler = ZipfSampler(20, s=1.2, seed=5)
        assert sum(sampler.pmf(rank) for rank in range(20)) == pytest.approx(1.0)

    def test_pmf_monotone_decreasing(self):
        sampler = ZipfSampler(20, s=1.0, seed=6)
        pmf = [sampler.pmf(rank) for rank in range(20)]
        assert all(a >= b for a, b in zip(pmf, pmf[1:]))

    def test_pmf_bounds(self):
        sampler = ZipfSampler(5, seed=7)
        with pytest.raises(IndexError):
            sampler.pmf(5)
        with pytest.raises(IndexError):
            sampler.pmf(-1)

    def test_empirical_matches_pmf(self):
        sampler = ZipfSampler(10, s=1.0, seed=8)
        n = 20000
        counts = [0] * 10
        for rank in sampler.sample_many(n):
            counts[rank] += 1
        for rank in range(3):
            expected = sampler.pmf(rank)
            assert counts[rank] / n == pytest.approx(expected, rel=0.15)

    def test_deterministic(self):
        a = ZipfSampler(30, seed=9).sample_many(20)
        b = ZipfSampler(30, seed=9).sample_many(20)
        assert a == b


def test_zipf_choices_draws_items():
    items = ["a", "b", "c", "d"]
    chosen = zipf_choices(items, 100, s=1.0, seed=10)
    assert len(chosen) == 100
    assert set(chosen) <= set(items)
