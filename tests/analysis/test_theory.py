"""The closed-form expectations, and the simulator checked against them."""

import pytest

from repro import CuckooTable, McCuckoo
from repro.analysis import theory
from repro.workloads import distinct_keys, key_stream, missing_keys


class TestFormulas:
    def test_theorem2_d3_is_five_sixths(self):
        assert theory.max_redundant_writes_fraction(3) == pytest.approx(5 / 6)

    def test_theorem2_d2_is_half(self):
        assert theory.max_redundant_writes_fraction(2) == pytest.approx(0.5)

    def test_theorem2_monotone_in_d(self):
        values = [theory.max_redundant_writes_fraction(d) for d in range(2, 8)]
        assert values == sorted(values)

    def test_theorem2_rejects_small_d(self):
        with pytest.raises(ValueError):
            theory.max_redundant_writes_fraction(1)

    def test_first_collision_scales_down_with_capacity(self):
        small = theory.expected_first_collision_load(3_000)
        large = theory.expected_first_collision_load(70_000_000)
        assert small > large

    def test_dary_thresholds(self):
        assert theory.dary_load_threshold(2) == 0.5
        assert theory.dary_load_threshold(3) == pytest.approx(0.9179)
        with pytest.raises(ValueError):
            theory.dary_load_threshold(12)

    def test_bloom_fp_rate_limits(self):
        assert theory.bloom_false_positive_rate(1000, 3, 0) == 0.0
        nearly_full = theory.bloom_false_positive_rate(10, 1, 10_000)
        assert nearly_full == pytest.approx(1.0, abs=1e-6)

    def test_counter_screen_rate_bounds(self):
        assert theory.counters_zero_screen_rate(0.0) == 1.0
        assert theory.counters_zero_screen_rate(1.0) == 0.0
        with pytest.raises(ValueError):
            theory.counters_zero_screen_rate(1.5)

    def test_stash_exponent(self):
        assert theory.stash_rehash_probability_exponent(4) == 5

    def test_memory_formulas(self):
        assert theory.onchip_counter_bytes(3000, d=3) == 750
        assert theory.bloom_front_bytes(3000, 0.01) > 3000  # ~9.6 bits/key


class TestSimulatorAgainstTheory:
    def test_first_collision_matches_prediction(self):
        """Measured first-collision load of standard cuckoo tracks the
        ((d+1) S^d)^(1/(d+1)) / S prediction within a factor of 2."""
        capacity_small, capacity_large = 600, 6000
        onsets = {}
        for n_buckets in (capacity_small // 3, capacity_large // 3):
            measured = []
            for seed in range(3):
                table = CuckooTable(n_buckets, d=3, seed=seed)
                keys = key_stream(seed=seed + 100)
                while table.events.first_collision_items is None:
                    table.put(next(keys))
                measured.append(table.events.first_collision_items / table.capacity)
            onsets[n_buckets * 3] = sum(measured) / len(measured)
        for capacity, onset in onsets.items():
            predicted = theory.expected_first_collision_load(capacity)
            assert predicted / 2 < onset < predicted * 2
        # and the scale trend holds: bigger table, relatively earlier onset
        assert onsets[capacity_large] < onsets[capacity_small]

    def test_redundant_writes_respect_theorem2(self):
        table = McCuckoo(500, d=3, seed=7)
        redundant = 0
        for key in distinct_keys(int(table.capacity * 0.9), seed=8):
            outcome = table.put(key)
            redundant += max(0, outcome.copies - 1)
        bound = theory.max_redundant_writes_fraction(3) * table.capacity
        assert redundant <= bound

    def test_fill_beyond_threshold_fails(self):
        """Filling a d=3 table past the 91.8 % threshold must hit failures."""
        table = McCuckoo(300, d=3, seed=9, maxloop=500)
        keys = key_stream(seed=10)
        target = int(table.capacity * 0.96)
        while len(table) < target:
            table.put(next(keys))
        assert len(table.stash) > 0

    def test_fill_below_threshold_rarely_fails(self):
        table = McCuckoo(300, d=3, seed=11, maxloop=500)
        keys = key_stream(seed=12)
        while len(table) < int(table.capacity * 0.85):
            table.put(next(keys))
        assert len(table.stash) == 0

    def test_zero_screen_rate_at_least_pessimistic_bound(self):
        load = 0.25
        table = McCuckoo(400, d=3, seed=13)
        keys = distinct_keys(int(table.capacity * load), seed=14)
        for key in keys:
            table.put(key)
        absent = missing_keys(500, set(keys), seed=15)
        screened = 0
        for key in absent:
            before = table.mem.off_chip.reads
            table.lookup(key)
            if table.mem.off_chip.reads == before:
                screened += 1
        assert screened / len(absent) >= theory.counters_zero_screen_rate(load)

    def test_onchip_comparison_favours_counters(self):
        capacity = 3 * 2000
        counters = theory.onchip_counter_bytes(capacity, d=3)
        bloom = theory.bloom_front_bytes(capacity, 0.01)
        assert counters < bloom / 4
