"""Tests for the terminal plotting helpers."""

from repro.analysis.plots import chart_experiment, line_chart, sparkline
from repro.analysis.tables import ExperimentResult


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "".join(sorted(line))
        assert line[0] == "▁" and line[-1] == "█"

    def test_length_matches(self):
        assert len(sparkline(range(13))) == 13


class TestLineChart:
    def _series(self):
        return {
            "A": {0.1: 1.0, 0.5: 2.0, 0.9: 8.0},
            "B": {0.1: 0.5, 0.5: 0.7, 0.9: 1.0},
        }

    def test_no_data(self):
        assert line_chart({}) == "(no data)"
        assert line_chart({"A": {}}) == "(no data)"

    def test_contains_markers_and_legend(self):
        chart = line_chart(self._series(), title="t")
        assert "o" in chart and "x" in chart
        assert "o=A" in chart and "x=B" in chart
        assert chart.splitlines()[0] == "t"

    def test_axis_extremes_labelled(self):
        chart = line_chart(self._series())
        assert "8" in chart  # y max
        assert "0.5" in chart  # y min
        assert "0.1" in chart and "0.9" in chart  # x range

    def test_height_and_width_respected(self):
        chart = line_chart(self._series(), width=30, height=8)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert len(rows) == 8
        assert all(len(line.split("|", 1)[1]) == 30 for line in rows)

    def test_log_scale(self):
        series = {"A": {1: 1.0, 2: 10.0, 3: 1000.0}}
        chart = line_chart(series, log_y=True)
        assert "(log)" not in chart  # only shown with y_label
        chart = line_chart(series, log_y=True, y_label="v")
        assert "(log)" in chart

    def test_single_point(self):
        chart = line_chart({"A": {1.0: 2.0}})
        assert "o" in chart

    def test_labels_in_footer(self):
        chart = line_chart(self._series(), x_label="load", y_label="kicks")
        assert "x: load" in chart
        assert "y: kicks" in chart


class TestChartExperiment:
    def _result(self):
        result = ExperimentResult("figX", "Demo", columns=("scheme", "load", "v"))
        for scheme in ("A", "B"):
            for load in (0.1, 0.5, 0.9):
                result.add_row(scheme=scheme, load=load,
                               v=load * (2 if scheme == "A" else 1))
        return result

    def test_auto_groups(self):
        chart = chart_experiment(self._result(), "load", "v")
        assert "o=A" in chart and "x=B" in chart
        assert chart.splitlines()[0].startswith("figX:")

    def test_explicit_groups_subset(self):
        chart = chart_experiment(self._result(), "load", "v", groups=["B"])
        assert "o=B" in chart
        assert "=A" not in chart
