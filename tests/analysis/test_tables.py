"""Tests for the ExperimentResult container and its renderers."""

from repro.analysis.tables import ExperimentResult, render, to_markdown


def sample_result():
    result = ExperimentResult(
        "figX",
        "Sample",
        columns=("scheme", "load", "value"),
        notes="a note",
    )
    result.add_row(scheme="A", load=0.5, value=1.25)
    result.add_row(scheme="A", load=0.9, value=2.0)
    result.add_row(scheme="B", load=0.5, value=0.0001)
    return result


class TestContainer:
    def test_add_and_column(self):
        result = sample_result()
        assert result.column("scheme") == ["A", "A", "B"]
        assert result.column("value") == [1.25, 2.0, 0.0001]

    def test_filter_rows(self):
        result = sample_result()
        assert len(result.filter_rows(scheme="A")) == 2
        assert result.filter_rows(scheme="B", load=0.5)[0]["value"] == 0.0001
        assert result.filter_rows(scheme="C") == []

    def test_series(self):
        result = sample_result()
        assert result.series("load", "value", scheme="A") == {0.5: 1.25, 0.9: 2.0}

    def test_missing_column_gives_none(self):
        result = sample_result()
        assert result.column("nonexistent") == [None, None, None]


class TestRender:
    def test_contains_header_and_rows(self):
        text = render(sample_result())
        assert "figX" in text
        assert "scheme" in text
        assert "0.9" in text

    def test_notes_included(self):
        assert "a note" in render(sample_result())

    def test_small_floats_scientific(self):
        assert "1.00e-04" in render(sample_result())

    def test_empty_result_renders(self):
        empty = ExperimentResult("e", "Empty", columns=("a", "b"))
        text = render(empty)
        assert "a" in text and "Empty" in text

    def test_alignment_consistent(self):
        lines = render(sample_result()).splitlines()
        data_lines = lines[1:-1]  # drop title and note
        widths = {len(line) for line in data_lines}
        assert len(widths) == 1


class TestMarkdown:
    def test_table_structure(self):
        md = to_markdown(sample_result())
        lines = md.splitlines()
        assert lines[0].startswith("### figX")
        assert lines[2].startswith("| scheme")
        assert lines[3].startswith("|---")
        assert md.count("| A") == 2

    def test_notes_italicised(self):
        assert "*a note*" in to_markdown(sample_result())

    def test_no_notes_no_italics(self):
        result = ExperimentResult("e", "t", columns=("a",))
        result.add_row(a=1)
        assert "*" not in to_markdown(result)


class TestCsv:
    def test_basic_structure(self):
        from repro.analysis.tables import to_csv

        csv = to_csv(sample_result())
        lines = csv.splitlines()
        assert lines[0] == "scheme,load,value"
        assert lines[1] == "A,0.5,1.25"
        assert len(lines) == 4

    def test_quoting(self):
        from repro.analysis.tables import to_csv

        result = ExperimentResult("e", "t", columns=("a", "b"))
        result.add_row(a='say "hi", ok', b=None)
        csv = to_csv(result)
        assert '"say ""hi"", ok",' in csv
