"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig9", "fig16", "table2", "ablation-stash"):
            assert name in out


class TestExperiments:
    def test_single_experiment(self, capsys):
        code = main(["experiments", "--only", "table1",
                     "--scale", "200", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "first_collision_load" in out
        assert "B-McCuckoo" in out

    def test_sweep_based_experiment(self, capsys):
        code = main(["experiments", "--only", "fig9",
                     "--scale", "200", "--repeats", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "kicks_per_insert" in out
        assert "shared load sweep" in out

    def test_unknown_experiment_rejected(self, capsys):
        code = main(["experiments", "--only", "fig99", "--scale", "200"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err


class TestFill:
    def test_fill_reports_stats(self, capsys):
        code = main(["fill", "McCuckoo", "--scale", "200", "--load", "0.6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "filled to 60.00%" in out
        assert "counter histogram" in out
        assert "modelled insert latency" in out

    def test_fill_baseline_scheme(self, capsys):
        code = main(["fill", "Cuckoo", "--scale", "200", "--load", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Cuckoo: filled" in out

    def test_fill_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            main(["fill", "NotATable"])


class TestWorkload:
    def test_workload_clean_run(self, capsys):
        code = main(["workload", "McCuckoo", "--ops", "600", "--scale", "200"])
        assert code == 0
        out = capsys.readouterr().out
        assert "false_negatives=0" in out
        assert "false_positives=0" in out

    def test_workload_custom_mix(self, capsys):
        code = main([
            "workload", "BCHT", "--ops", "400", "--scale", "200",
            "--insert", "1.0", "--lookup", "0", "--missing", "0",
            "--delete", "0",
        ])
        assert code == 0
        assert "deletes=0" in capsys.readouterr().out


class TestValidate:
    def test_validate_passes_at_small_scale(self, capsys):
        code = main(["validate", "--scale", "400", "--repeats", "1"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "FAIL" not in out
        assert "9/9 checks passed" in out
