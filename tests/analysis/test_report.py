"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import generate_report, run_all, write_report
from repro.analysis.sweep import Scale
from repro.cli import main

TINY = Scale(n_single=150, repeats=1, n_queries=60)


class TestRunAll:
    def test_subset(self):
        results = run_all(TINY, only=["table1"])
        assert set(results) == {"table1"}
        assert results["table1"].rows

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            run_all(TINY, only=["nope"])

    def test_sweep_shared_across_figures(self):
        results = run_all(TINY, only=["fig9", "fig10"])
        assert set(results) == {"fig9", "fig10"}
        # both derive from one sweep: identical (scheme, load) coverage
        fig9_cells = {(r["scheme"], r["load"]) for r in results["fig9"].rows}
        fig10_cells = {(r["scheme"], r["load"]) for r in results["fig10"].rows}
        assert fig9_cells == fig10_cells


class TestGenerateReport:
    def test_contains_tables_and_charts(self):
        text = generate_report(TINY, only=["fig9"])
        assert "### fig9" in text
        assert "| scheme |" in text
        assert "```" in text  # the chart block
        assert "o=Cuckoo" in text

    def test_charts_can_be_disabled(self):
        text = generate_report(TINY, only=["fig9"], include_charts=False)
        assert "```" not in text

    def test_header_mentions_scale(self):
        text = generate_report(TINY, only=["table1"])
        assert "150 buckets/sub-table" in text

    def test_non_charted_experiment(self):
        text = generate_report(TINY, only=["table1"])
        assert "first_collision_load" in text
        assert "```" not in text


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "report.md"
        text = write_report(str(path), TINY, only=["table1"])
        assert path.read_text(encoding="utf-8").startswith(
            "# Multi-copy Cuckoo Hashing"
        )
        assert text in path.read_text(encoding="utf-8")

    def test_cli_report_command(self, tmp_path, capsys):
        path = tmp_path / "cli-report.md"
        code = main(["report", "-o", str(path), "--scale", "150",
                     "--repeats", "1", "--only", "table1"])
        assert code == 0
        assert path.exists()
        assert "report written" in capsys.readouterr().out

    def test_cli_report_unknown_experiment(self, tmp_path):
        code = main(["report", "-o", str(tmp_path / "x.md"),
                     "--scale", "150", "--only", "nope"])
        assert code == 2
