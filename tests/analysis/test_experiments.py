"""Tests for the per-figure experiment functions (tiny scale, shape only).

A single shared sweep is computed once per module and reused, so this file
stays fast despite touching every experiment.
"""

import pytest

from repro.analysis import (
    ALL_EXPERIMENTS,
    Scale,
    ablation_deletion_mode,
    ablation_kick_policy,
    ablation_sibling_tracking,
    ablation_stash_screen,
    fig9_kickouts,
    fig10_memaccess,
    fig11_first_failure,
    fig12_lookup_existing,
    fig13_lookup_missing,
    fig14_deletion,
    fig15_insert_latency,
    fig16_lookup_latency,
    run_core_sweep,
    table1_first_collision,
    table2_stash_single,
    table3_stash_blocked,
)

TINY = Scale(n_single=240, repeats=1, n_queries=120)


@pytest.fixture(scope="module")
def sweep():
    return run_core_sweep(TINY)


class TestCoreSweep:
    def test_covers_all_schemes_and_loads(self, sweep):
        schemes = {scheme for scheme, _ in sweep}
        assert schemes == {"Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"}

    def test_each_cell_has_insert_stats(self, sweep):
        for cell in sweep.values():
            assert cell.insert.operations > 0


class TestFig9(object):
    def test_rows_and_shape(self, sweep):
        result = fig9_kickouts(TINY, sweep=sweep)
        assert set(result.columns) == {"scheme", "load", "kicks_per_insert"}
        mc = result.series("load", "kicks_per_insert", scheme="McCuckoo")
        cu = result.series("load", "kicks_per_insert", scheme="Cuckoo")
        assert mc[0.85] < cu[0.85]  # the headline claim

    def test_low_load_kick_free(self, sweep):
        result = fig9_kickouts(TINY, sweep=sweep)
        for scheme in ("Cuckoo", "McCuckoo"):
            assert result.series("load", "kicks_per_insert", scheme=scheme)[0.1] == 0


class TestFig10:
    def test_multicopy_reads_lower(self, sweep):
        result = fig10_memaccess(TINY, sweep=sweep)
        mc = result.series("load", "reads_per_insert", scheme="McCuckoo")
        cu = result.series("load", "reads_per_insert", scheme="Cuckoo")
        for load in (0.1, 0.5, 0.85):
            assert mc[load] < cu[load]

    def test_multicopy_writes_higher_at_low_load(self, sweep):
        result = fig10_memaccess(TINY, sweep=sweep)
        mc = result.series("load", "writes_per_insert", scheme="McCuckoo")
        cu = result.series("load", "writes_per_insert", scheme="Cuckoo")
        assert mc[0.1] > cu[0.1]


class TestTable1:
    def test_multicopy_collides_later(self):
        result = table1_first_collision(TINY)
        loads = {row["scheme"]: row["first_collision_load"] for row in result.rows}
        assert loads["McCuckoo"] > loads["Cuckoo"]
        assert loads["B-McCuckoo"] > loads["BCHT"]
        assert loads["BCHT"] > loads["Cuckoo"]


class TestFig11:
    def test_failure_load_rises_with_maxloop(self):
        result = fig11_first_failure(TINY, maxloops=(20, 200))
        for scheme in ("Cuckoo", "McCuckoo"):
            series = result.series(
                "maxloop", "first_failure_load", scheme=scheme
            )
            assert series[200] >= series[20]

    def test_blocked_schemes_fail_later(self):
        result = fig11_first_failure(TINY, maxloops=(100,))
        loads = {row["scheme"]: row["first_failure_load"] for row in result.rows}
        assert loads["B-McCuckoo"] > loads["Cuckoo"]


class TestFig12And13:
    def test_lookup_existing_mccuckoo_cheaper(self, sweep):
        result = fig12_lookup_existing(TINY, sweep=sweep)
        mc = result.series("load", "offchip_accesses_per_lookup", scheme="McCuckoo")
        cu = result.series("load", "offchip_accesses_per_lookup", scheme="Cuckoo")
        assert mc[0.5] < cu[0.5]

    def test_lookup_missing_near_zero_at_low_load(self, sweep):
        result = fig13_lookup_missing(TINY, sweep=sweep)
        mc = result.series("load", "offchip_accesses_per_lookup", scheme="McCuckoo")
        cu = result.series("load", "offchip_accesses_per_lookup", scheme="Cuckoo")
        assert mc[0.2] < 0.3
        assert cu[0.2] == pytest.approx(3.0)  # blind d-probe baseline


class TestFig14:
    def test_deletion_shape(self):
        result = fig14_deletion(TINY, loads=(0.5,))
        rows = {row["scheme"]: row for row in result.rows}
        assert rows["McCuckoo"]["writes_per_delete"] == 0
        assert rows["Cuckoo"]["writes_per_delete"] == 1
        assert rows["McCuckoo"]["reads_per_delete"] > rows["Cuckoo"]["reads_per_delete"] * 0.5


class TestStashTables:
    def test_table2_ramp(self):
        result = table2_stash_single(TINY, loads=(0.88, 0.93), maxloops=(100,))
        series = result.series("load", "stash_items", maxloop=100)
        assert series[0.93] >= series[0.88]

    def test_table2_visit_rate_near_zero(self):
        result = table2_stash_single(TINY, loads=(0.9,), maxloops=(200,))
        assert result.rows[0]["stash_visit_pct_missing_lookups"] < 1.0

    def test_table3_blocked_stays_empty_longer(self):
        result = table3_stash_blocked(TINY, loads=(0.975,), maxloops=(200,))
        assert result.rows[0]["stash_items"] == pytest.approx(0.0, abs=1.0)


class TestLatencyFigures:
    def test_fig15_latency_rows(self, sweep):
        result = fig15_insert_latency(TINY, sweep=sweep)
        assert all(row["latency_us"] > 0 for row in result.rows)
        # throughput advantage grows with record size at 50 % load
        mc = result.series("record_bytes", "throughput_mops",
                           scheme="McCuckoo", load=0.5)
        assert mc[8] > mc[128]

    def test_fig16_existing_and_missing_populations(self, sweep):
        result = fig16_lookup_latency(TINY, sweep=sweep)
        populations = {row["population"] for row in result.rows}
        assert populations == {"existing", "missing"}

    def test_fig16_missing_lookups_faster_for_mccuckoo(self, sweep):
        result = fig16_lookup_latency(TINY, sweep=sweep)
        mc = [
            row
            for row in result.filter_rows(scheme="McCuckoo", population="missing")
            if row["load"] == 0.5 and row["record_bytes"] == 8
        ][0]
        cu = [
            row
            for row in result.filter_rows(scheme="Cuckoo", population="missing")
            if row["load"] == 0.5 and row["record_bytes"] == 8
        ][0]
        assert mc["latency_us"] < cu["latency_us"]


class TestAblations:
    def test_sibling_tracking_tradeoff(self):
        result = ablation_sibling_tracking(TINY, loads=(0.7,))
        rows = {row["mode"]: row for row in result.rows}
        # metadata mode trades reads for writes
        assert rows["metadata"]["writes_per_insert"] >= rows["read"]["writes_per_insert"]

    def test_kick_policy_rows(self):
        result = ablation_kick_policy(TINY, loads=(0.85,))
        policies = {row["policy"] for row in result.rows}
        assert policies == {"random-walk", "mincounter", "bubbling"}

    def test_deletion_mode_rows(self):
        result = ablation_deletion_mode(TINY)
        modes = {row["mode"] for row in result.rows}
        assert modes == {"reset", "tombstone"}

    def test_stash_screen_gap(self):
        result = ablation_stash_screen(TINY, load=0.9)
        rows = {row["scheme"]: row["stash_visit_pct"] for row in result.rows}
        assert rows["CHS"] == 100.0
        assert rows["McCuckoo"] < 5.0


class TestRegistry:
    def test_all_experiments_registered(self):
        assert {"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
                "fig16", "table1", "table2", "table3"} <= set(ALL_EXPERIMENTS)


class TestAblationDSweep:
    def test_d_sweep_shape(self):
        from repro.analysis import ablation_d_sweep

        result = ablation_d_sweep(TINY, ds=(2, 3))
        rows = {row["d"]: row for row in result.rows}
        # d=2 hits its first failure far earlier than d=3
        assert rows[2]["first_failure_load"] < rows[3]["first_failure_load"]
        # 2-bit counters suffice up to d=3
        assert rows[2]["counter_bits"] == 2
        assert rows[3]["counter_bits"] == 2

    def test_d4_needs_wider_counters(self):
        from repro.analysis import ablation_d_sweep

        result = ablation_d_sweep(TINY, ds=(4,))
        assert result.rows[0]["counter_bits"] == 4


class TestAblationCounterScreen:
    def test_screen_helps_missing_lookups_at_low_load(self):
        from repro.analysis import ablation_blocked_counter_screen

        result = ablation_blocked_counter_screen(TINY, loads=(0.2,))
        rows = {row["screen"]: row for row in result.rows}
        assert rows["on"]["latency_us_missing"] < rows["off"]["latency_us_missing"]

    def test_old_way_wins_for_existing_at_high_load(self):
        """§IV.C: near full, counter checking is pure overhead for existing
        items with tiny records."""
        from repro.analysis import ablation_blocked_counter_screen

        result = ablation_blocked_counter_screen(TINY, loads=(0.98,))
        rows = {row["screen"]: row for row in result.rows}
        assert rows["off"]["latency_us_existing"] <= rows["on"]["latency_us_existing"]


class TestAblationPathInsert:
    def test_path_reduces_kicks(self):
        from repro.analysis import ablation_path_insert

        result = ablation_path_insert(TINY, load=0.85)
        rows = {row["strategy"]: row for row in result.rows}
        assert rows["path"]["kicks_per_insert"] < rows["random-walk"]["kicks_per_insert"]
