"""Tests for the sweep building blocks."""

from repro.analysis.sweep import (
    BLOCKED_LOADS,
    SINGLE_SLOT_LOADS,
    Scale,
    fill_fresh,
    loads_for,
    make_schemes,
    measure_deletes,
    measured_fill,
    measure_lookups,
)
from repro.core import DeletionMode
from repro.workloads import key_stream, sample_keys


SMALL = Scale(n_single=120, repeats=1, n_queries=50)


class TestScale:
    def test_capacity(self):
        assert Scale(n_single=100).capacity == 300

    def test_blocked_buckets_match_capacity(self):
        scale = Scale(n_single=120)
        blocked_capacity = scale.d * scale.n_blocked * scale.slots
        assert blocked_capacity == scale.capacity


class TestMakeSchemes:
    def test_all_four_schemes(self):
        schemes = make_schemes(SMALL, seed=1)
        assert set(schemes) == {"Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo"}

    def test_matched_capacity(self):
        schemes = make_schemes(SMALL, seed=2)
        capacities = {name: factory().capacity for name, factory in schemes.items()}
        assert len(set(capacities.values())) == 1

    def test_deletion_mode_propagates(self):
        schemes = make_schemes(SMALL, seed=3, deletion_mode=DeletionMode.RESET)
        assert schemes["McCuckoo"]().deletion_mode is DeletionMode.RESET
        assert schemes["B-McCuckoo"]().deletion_mode is DeletionMode.RESET


class TestLoadGrids:
    def test_blocked_schemes_go_higher(self):
        assert max(loads_for("B-McCuckoo")) > max(loads_for("McCuckoo"))
        assert loads_for("BCHT") == BLOCKED_LOADS
        assert loads_for("Cuckoo") == SINGLE_SLOT_LOADS


class TestMeasuredFill:
    def test_reaches_each_target(self):
        table = make_schemes(SMALL, seed=4)["McCuckoo"]()
        points = measured_fill(table, (0.2, 0.4, 0.6), key_stream(seed=5))
        assert [point.load for point in points] == [0.2, 0.4, 0.6]
        assert len(table) == int(0.6 * table.capacity)

    def test_band_stats_are_marginal(self):
        table = make_schemes(SMALL, seed=6)["McCuckoo"]()
        points = measured_fill(table, (0.3, 0.6), key_stream(seed=7))
        total_ops = sum(point.insert_stats.operations for point in points)
        assert total_ops == len(table)
        assert points[0].insert_stats.operations == int(0.3 * table.capacity)

    def test_inserted_keys_recorded(self):
        table = make_schemes(SMALL, seed=8)["McCuckoo"]()
        points = measured_fill(table, (0.5,), key_stream(seed=9))
        assert len(points[0].inserted_keys) == len(table)

    def test_saturation_stops_early(self):
        table = make_schemes(Scale(n_single=30), seed=10)["Cuckoo"]()
        measured_fill(table, (0.5, 0.99), key_stream(seed=11))
        # single-copy d=3 cuckoo cannot reach 99 %: the fill must bail out
        assert table.load_ratio < 0.99


class TestMeasureOps:
    def test_measure_lookups_counts_each_query(self):
        table, inserted = fill_fresh(
            make_schemes(SMALL, seed=12)["McCuckoo"], 0.5, seed=13
        )
        stats = measure_lookups(table, sample_keys(inserted, 20, seed=14))
        assert stats.operations == 20
        assert stats.offchip_reads_per_op >= 0

    def test_measure_deletes(self):
        factory = make_schemes(SMALL, seed=15, deletion_mode=DeletionMode.RESET)[
            "McCuckoo"
        ]
        table, inserted = fill_fresh(factory, 0.5, seed=16)
        victims = sample_keys(inserted, 10, seed=17)
        stats = measure_deletes(table, victims)
        assert stats.operations == 10
        assert stats.offchip_writes_per_op == 0.0  # multi-copy deletes are free

    def test_fill_fresh_returns_inserted_keys(self):
        table, inserted = fill_fresh(
            make_schemes(SMALL, seed=18)["BCHT"], 0.4, seed=19
        )
        assert len(inserted) == len(table)
        assert len(table) == int(0.4 * table.capacity)
