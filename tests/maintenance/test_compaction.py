"""Compactor correctness and crash safety.

Compaction's safety story is ordering, not locking: the copy loop is
side-effect free on the store (it reads the old log and appends into a
private fresh one), and the commit — log swap, offset patch, checkpoint
invalidation — happens only after every live record is copied.  These
tests crash the copy loop at *every* record boundary and prove the old
image stays authoritative, byte for byte.
"""

import pytest

from repro.apps import LogStructuredStore
from repro.faults import FaultPlan, InjectedCrash
from repro.maintenance import Compactor
from tests.seeding import derive


def _churned_store(seed, faults=None, n_keys=40, rounds=3, deletes=7):
    """A durable store with real garbage: overwrites plus tombstones."""
    store = LogStructuredStore(
        expected_items=256, seed=seed, durable=True, faults=faults
    )
    for round_ in range(rounds):
        for key in range(1, n_keys + 1):
            store.put(key, b"r%d-k%d" % (round_, key))
    for key in range(1, n_keys + 1, deletes):
        store.delete(key)
    return store


def _model(store):
    return dict(store.items())


class TestCompactor:
    def test_drops_garbage_preserves_live_data(self):
        store = _churned_store(derive(0xC0))
        model = _model(store)
        before_records = store.log_records
        dropped = Compactor().compact(store)
        assert dropped == before_records - len(model)
        assert store.log_records == len(model)
        assert store.garbage_ratio == 0.0
        assert _model(store) == model
        assert store.compactions == 1
        assert store.records_dropped == dropped

    def test_compaction_patches_index_offsets(self):
        store = _churned_store(derive(0xC1))
        Compactor().compact(store)
        # every get must hit the rewritten log at the patched offset
        for key, value in _model(store).items():
            assert store.get(key) == value
        # and the rewritten image replays to the same state
        recovered = LogStructuredStore.recover_from_bytes(
            store.log_bytes, expected_items=256, seed=derive(0xC1)
        )
        assert _model(recovered) == _model(store)

    def test_compaction_clears_checkpoint(self):
        store = _churned_store(derive(0xC2))
        store.take_checkpoint()
        assert store.checkpoint_bytes is not None
        Compactor().compact(store)
        assert store.checkpoint_bytes is None

    def test_commit_hook_runs_after_swap(self):
        store = _churned_store(derive(0xC3))
        seen = []
        Compactor().compact(
            store, on_commit=lambda s: seen.append(s.garbage_ratio)
        )
        assert seen == [0.0]  # hook observes the already-compacted store

    def test_store_compact_delegates_to_compactor(self):
        # store.compact() and Compactor().compact(store) are the same path
        a = _churned_store(derive(0xC4))
        b = _churned_store(derive(0xC4))
        assert a.compact() == Compactor().compact(b)
        assert a.log_bytes == b.log_bytes


class TestCompactionCrashSafety:
    def test_crash_at_every_record_boundary_leaves_old_image(self):
        """crash_during_compaction=N for every N: the pre-compaction
        image stays byte-identical and fully recoverable."""
        reference = _churned_store(derive(0xC5))
        live_records = len(_model(reference))
        image_before = reference.log_bytes
        model = _model(reference)

        for boundary in range(1, live_records + 1):
            plan = FaultPlan.parse(
                f"crash_during_compaction={boundary}", seed=derive(1)
            )
            store = _churned_store(derive(0xC5), faults=plan)
            with pytest.raises(InjectedCrash):
                store.compact()
            assert store.log_bytes == image_before
            assert store.compactions == 0
            assert _model(store) == model
            recovered = LogStructuredStore.recover_from_bytes(
                store.log_bytes, expected_items=256, seed=derive(0xC5)
            )
            assert _model(recovered) == model

    def test_crash_then_retry_compacts_clean(self):
        """After a crashed attempt, a plain retry commits normally."""
        plan = FaultPlan.parse("crash_during_compaction=2", seed=derive(2))
        store = _churned_store(derive(0xC6), faults=plan)
        model = _model(store)
        with pytest.raises(InjectedCrash):
            store.compact()
        dropped = store.compact()  # one-shot rule is spent
        assert dropped > 0
        assert _model(store) == model
        assert store.garbage_ratio == 0.0

    def test_shard_scoped_rule_leaves_other_shards_alone(self):
        plan = FaultPlan.parse("crash_during_compaction=1@1", seed=derive(3))
        unaffected = _churned_store(derive(0xC7), faults=plan)
        assert unaffected.compact() > 0  # shard_id defaults to 0, rule is @1

    def test_interrupt_hook_fires_per_record(self):
        store = _churned_store(derive(0xC8))
        live = len(_model(store))
        sites = []
        Compactor().compact(
            store, interrupt=lambda site, shard: sites.append((site, shard))
        )
        assert len(sites) == live
        assert set(sites) == {("compaction", 0)}


class TestStaleCheckpointAfterCompaction:
    def test_checkpoint_self_invalidates_against_rewritten_image(self):
        """An old checkpoint must fail prefix-CRC validation once
        compaction rewrites the log, falling back to full replay."""
        store = _churned_store(derive(0xC9))
        stale = store.take_checkpoint()
        store.compact()
        model = _model(store)
        recovered = LogStructuredStore.recover_with_checkpoint(
            store.log_bytes, stale, expected_items=256, seed=derive(0xC9)
        )
        report = recovered.recovery_report
        assert report.checkpoint_invalid
        assert not report.checkpoint_loaded
        assert _model(recovered) == model
