"""MaintenanceDaemon scheduling policies.

The daemon is ticked from the one-writer-per-shard loop, so every test
here drives it the same way the serving stack does: write, tick, write,
tick.  What matters is *when* it fires — below the garbage threshold or
the minimum log size it must stay idle, and a compaction must be chased
by an immediate checkpoint (the rewrite invalidated any prior one).
"""

from repro.apps import LogStructuredStore
from repro.maintenance import MaintenanceConfig, MaintenanceDaemon
from tests.seeding import derive


def _store(seed, expected_items=512):
    return LogStructuredStore(
        expected_items=expected_items, seed=seed, durable=True
    )


class TestConfig:
    def test_defaults_enabled(self):
        assert MaintenanceConfig().enabled

    def test_disabled_when_both_axes_off(self):
        assert not MaintenanceConfig(compact_at=-1.0, checkpoint_every=0).enabled

    def test_single_axis_is_enough(self):
        assert MaintenanceConfig(compact_at=-1.0, checkpoint_every=8).enabled
        assert MaintenanceConfig(compact_at=0.5, checkpoint_every=0).enabled

    def test_aggressive_is_tighter_than_default(self):
        base, aggressive = MaintenanceConfig(), MaintenanceConfig.aggressive()
        assert aggressive.compact_at < base.compact_at
        assert aggressive.compact_min_records < base.compact_min_records
        assert aggressive.checkpoint_every < base.checkpoint_every

    def test_describe_names_every_threshold(self):
        text = MaintenanceConfig.aggressive().describe()
        assert "0.25" in text and "32" in text and "64" in text


class TestCompactionScheduling:
    def test_idle_below_min_records(self):
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=0.0, compact_min_records=100,
                              checkpoint_every=0)
        )
        store = _store(derive(0xDA))
        for op in range(30):  # 100% garbage eligible ratio, tiny log
            store.put(0, b"v%d" % op)
        out = daemon.maybe_run(store)
        assert out == {"compacted": None, "checkpointed": False}
        assert store.compactions == 0

    def test_idle_below_garbage_threshold(self):
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=0.9, compact_min_records=10,
                              checkpoint_every=0)
        )
        store = _store(derive(0xDB))
        for op in range(50):  # all distinct keys: zero garbage
            store.put(op, b"v")
        assert daemon.maybe_run(store)["compacted"] is None

    def test_fires_above_both_thresholds(self):
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=0.4, compact_min_records=10,
                              checkpoint_every=0)
        )
        store = _store(derive(0xDC))
        for op in range(60):
            store.put(op % 12, b"v%d" % op)  # 48 dead of 60
        model = dict(store.items())
        out = daemon.maybe_run(store)
        assert out["compacted"] == 48
        assert store.compactions == 1
        assert dict(store.items()) == model

    def test_negative_threshold_disables_compaction(self):
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=-1.0, compact_min_records=1,
                              checkpoint_every=0)
        )
        store = _store(derive(0xDD))
        for op in range(40):
            store.put(0, b"v%d" % op)
        assert daemon.maybe_run(store)["compacted"] is None


class TestCheckpointScheduling:
    def test_checkpoint_every_n_appends(self):
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=-1.0, checkpoint_every=16)
        )
        store = _store(derive(0xDE))
        ticks = []
        for op in range(40):
            store.put(op, b"v")
            ticks.append(daemon.maybe_run(store)["checkpointed"])
        # fires at append 16 and 32, idle everywhere else
        assert ticks.count(True) == 2
        assert ticks[15] and ticks[31]
        assert store.checkpoints == 2

    def test_zero_disables_checkpointing(self):
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=-1.0, checkpoint_every=0)
        )
        store = _store(derive(0xDF))
        for op in range(100):
            store.put(op, b"v")
            daemon.maybe_run(store)
        assert store.checkpoints == 0

    def test_checkpoint_chases_compaction(self):
        """Compaction invalidates the old checkpoint, so the same tick
        must take a fresh one — and not double-checkpoint afterwards."""
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=0.4, compact_min_records=10,
                              checkpoint_every=1000)
        )
        store = _store(derive(0xE0))
        for op in range(60):
            store.put(op % 12, b"v%d" % op)
        out = daemon.maybe_run(store)
        assert out["compacted"] is not None
        assert out["checkpointed"]
        assert store.checkpoints == 1
        assert store.checkpoint_bytes is not None  # fresh, not cleared

    def test_no_chaser_when_checkpointing_disabled(self):
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=0.4, compact_min_records=10,
                              checkpoint_every=0)
        )
        store = _store(derive(0xE1))
        for op in range(60):
            store.put(op % 12, b"v%d" % op)
        out = daemon.maybe_run(store)
        assert out["compacted"] is not None
        assert not out["checkpointed"]
        assert store.checkpoint_bytes is None

    def test_checkpoint_writer_receives_shard_and_artifact(self):
        written = []
        daemon = MaintenanceDaemon(
            MaintenanceConfig(compact_at=-1.0, checkpoint_every=4),
            checkpoint_writer=lambda shard, data: written.append((shard, data)),
        )
        store = _store(derive(0xE2))
        for op in range(4):
            store.put(op, b"v")
        daemon.maybe_run(store, shard=3)
        assert written == [(3, store.checkpoint_bytes)]
