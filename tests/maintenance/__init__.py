"""Tests for the durable-store maintenance subsystem."""
