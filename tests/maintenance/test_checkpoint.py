"""Checkpointer round trips and torn-artifact fallback.

A checkpoint bounds restart time: recovery restores the index snapshot
bit-for-bit and replays only the post-checkpoint tail.  The flip side is
that the artifact is a single overwrite-in-place slot, so every way it
can be damaged — torn at an arbitrary byte, bad magic, truncated header,
garbage — must degrade to a full log replay, never to a half-trusted
index.
"""

import pytest

from repro.apps import LogStructuredStore
from repro.apps.kvstore import decode_checkpoint, encode_checkpoint
from repro.faults import FaultPlan, InjectedCrash
from repro.maintenance import Checkpointer
from tests.seeding import derive


def _store_with_history(seed, n_ops=120, expected_items=512):
    store = LogStructuredStore(
        expected_items=expected_items, seed=seed, durable=True
    )
    for op in range(n_ops):
        store.put(op % 48, b"v%06d" % op)
        if op % 17 == 16:
            store.delete((op + 3) % 48)
    return store


def _model(store):
    return dict(store.items())


class TestCheckpointRoundTrip:
    def test_checkpoint_plus_tail_recovers_exact_state(self):
        store = _store_with_history(derive(0xCE))
        artifact = Checkpointer().checkpoint(store)
        # tail: writes after the checkpoint
        for op in range(40):
            store.put(1000 + op, b"tail%04d" % op)
        store.delete(1001)
        model = _model(store)

        recovered = LogStructuredStore.recover_with_checkpoint(
            store.log_bytes, artifact, expected_items=512, seed=derive(0xCE)
        )
        assert _model(recovered) == model
        report = recovered.recovery_report
        assert report.checkpoint_loaded
        assert not report.checkpoint_invalid

    def test_report_splits_checkpoint_and_tail(self):
        store = _store_with_history(derive(0xCF))
        at_checkpoint = store.log_records
        artifact = store.take_checkpoint()
        tail = 25
        for op in range(tail):
            store.put(2000 + op, b"t%d" % op)

        recovered = LogStructuredStore.recover_with_checkpoint(
            store.log_bytes, artifact, expected_items=512, seed=derive(0xCF)
        )
        report = recovered.recovery_report
        assert report.checkpoint_records == at_checkpoint
        assert report.tail_records_replayed == tail
        assert report.records_replayed == at_checkpoint + tail

    def test_writer_hook_persists_artifact(self):
        store = _store_with_history(derive(0xD0))
        written = []
        artifact = Checkpointer().checkpoint(store, writer=written.append)
        assert written == [artifact]
        assert store.checkpoint_bytes == artifact

    def test_missing_checkpoint_full_replay_without_invalid_flag(self):
        store = _store_with_history(derive(0xD1))
        recovered = LogStructuredStore.recover_with_checkpoint(
            store.log_bytes, None, expected_items=512, seed=derive(0xD1)
        )
        assert _model(recovered) == _model(store)
        report = recovered.recovery_report
        assert not report.checkpoint_loaded
        assert not report.checkpoint_invalid  # absent, not damaged

    def test_render_mentions_checkpoint_coverage(self):
        store = _store_with_history(derive(0xD2))
        artifact = store.take_checkpoint()
        store.put(9000, b"after")
        recovered = LogStructuredStore.recover_with_checkpoint(
            store.log_bytes, artifact, expected_items=512, seed=derive(0xD2)
        )
        assert "checkpoint" in recovered.recovery_report.render()


class TestTornCheckpoint:
    def test_torn_rule_tears_slot_and_raises(self):
        plan = FaultPlan.parse("torn_checkpoint=1", seed=derive(4))
        store = LogStructuredStore(
            expected_items=512, seed=derive(0xD3), durable=True, faults=plan
        )
        for op in range(60):
            store.put(op, b"x%d" % op)
        with pytest.raises(InjectedCrash):
            store.take_checkpoint()
        torn = store.checkpoint_bytes
        assert torn is not None
        assert store.checkpoints == 0  # never counted as successful

        recovered = LogStructuredStore.recover_with_checkpoint(
            store.log_bytes, torn, expected_items=512, seed=derive(0xD3)
        )
        assert _model(recovered) == _model(store)
        report = recovered.recovery_report
        assert report.checkpoint_invalid
        assert not report.checkpoint_loaded

    @pytest.mark.parametrize("keep", [0, 1, 4, 9, 64, 300])
    def test_torn_at_specific_byte_always_falls_back(self, keep):
        plan = FaultPlan.parse(f"torn_checkpoint=1:{keep}", seed=derive(5))
        store = LogStructuredStore(
            expected_items=512, seed=derive(0xD4), durable=True, faults=plan
        )
        for op in range(80):
            store.put(op % 32, b"y%06d" % op)
        model = _model(store)
        with pytest.raises(InjectedCrash):
            store.take_checkpoint()
        torn = store.checkpoint_bytes
        assert len(torn) <= max(keep, 0)

        recovered = LogStructuredStore.recover_with_checkpoint(
            store.log_bytes, torn, expected_items=512, seed=derive(0xD4)
        )
        assert _model(recovered) == model
        assert recovered.recovery_report.checkpoint_invalid

    def test_checkpointer_writer_sees_torn_prefix(self):
        """The durable file must be torn the same way as the in-memory
        slot, so cross-process recovery exercises the same fallback."""
        plan = FaultPlan.parse("torn_checkpoint=1:10", seed=derive(6))
        store = LogStructuredStore(
            expected_items=512, seed=derive(0xD5), durable=True, faults=plan
        )
        for op in range(40):
            store.put(op, b"z%d" % op)
        written = []
        with pytest.raises(InjectedCrash):
            Checkpointer().checkpoint(store, writer=written.append)
        assert written == [store.checkpoint_bytes]
        assert len(written[0]) <= 10

    def test_retry_after_torn_checkpoint_succeeds(self):
        plan = FaultPlan.parse("torn_checkpoint=1", seed=derive(7))
        store = LogStructuredStore(
            expected_items=512, seed=derive(0xD6), durable=True, faults=plan
        )
        for op in range(30):
            store.put(op, b"w%d" % op)
        with pytest.raises(InjectedCrash):
            store.take_checkpoint()
        artifact = store.take_checkpoint()  # one-shot rule is spent
        assert store.checkpoints == 1
        recovered = LogStructuredStore.recover_with_checkpoint(
            store.log_bytes, artifact, expected_items=512, seed=derive(0xD6)
        )
        assert recovered.recovery_report.checkpoint_loaded


class TestDecodeCheckpoint:
    def test_decode_round_trip(self):
        payload = {"version": 1, "kind": "checkpoint", "n": 42}
        assert decode_checkpoint(encode_checkpoint(payload)) == payload

    @pytest.mark.parametrize(
        "blob",
        [
            None,
            b"",
            b"MC",  # truncated magic
            b"XXXX\x00\x00\x00\x04abcd\x00\x00\x00\x00",  # bad magic
            b"MCKP\x00\x00\x00",  # truncated length field
            b"MCKP\xff\xff\xff\xffabc",  # length past end of blob
        ],
        ids=["none", "empty", "short-magic", "bad-magic", "short-len",
             "len-overrun"],
    )
    def test_decode_rejects_garbage(self, blob):
        assert decode_checkpoint(blob) is None

    def test_decode_rejects_flipped_bit(self):
        artifact = bytearray(encode_checkpoint({"version": 1, "x": 1}))
        artifact[len(artifact) // 2] ^= 0x40
        assert decode_checkpoint(bytes(artifact)) is None
