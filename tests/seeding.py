"""Session-wide seed derivation for randomised tests.

``PYTEST_SEED`` (default 0) is the base; :func:`derive` XORs a per-site
tag into it so every historical literal seed is preserved under the
default while the whole suite re-randomises together under any other
base.  The active base is printed in the pytest header.
"""

import os


def base_seed() -> int:
    return int(os.environ.get("PYTEST_SEED", "0"))


def derive(tag: int) -> int:
    """A deterministic per-site seed: ``base ^ tag`` (== tag by default)."""
    return base_seed() ^ tag
