"""McCuckoo deletion: RESET and TOMBSTONE modes, write-free semantics."""

import pytest

from repro import DeletionMode, McCuckoo
from repro.core import check_mccuckoo
from repro.core.errors import UnsupportedOperationError
from repro.workloads import distinct_keys, missing_keys


def filled(mode, n_buckets=128, load=0.6, seed=70):
    table = McCuckoo(n_buckets, d=3, seed=seed, deletion_mode=mode)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 1)
    for key in keys:
        table.put(key, key % 7)
    return table, keys


class TestDisabledMode:
    def test_delete_raises(self):
        table = McCuckoo(32, d=3)
        table.put(1)
        with pytest.raises(UnsupportedOperationError):
            table.delete(1)


@pytest.mark.parametrize("mode", [DeletionMode.RESET, DeletionMode.TOMBSTONE])
class TestDeletionCommon:
    def test_delete_removes_key(self, mode):
        table, keys = filled(mode)
        outcome = table.delete(keys[0])
        assert outcome.deleted
        assert not table.lookup(keys[0]).found
        assert len(table) == len(keys) - 1

    def test_all_copies_removed(self, mode):
        table, keys = filled(mode)
        victim = keys[3]
        copies_before = len(table.copies_of(victim))
        outcome = table.delete(victim)
        assert outcome.copies_removed == copies_before
        assert table.copies_of(victim) == []

    def test_delete_missing_returns_false(self, mode):
        table, keys = filled(mode)
        absent = missing_keys(1, set(keys), seed=71)[0]
        assert not table.delete(absent).deleted

    def test_double_delete(self, mode):
        table, keys = filled(mode)
        assert table.delete(keys[0]).deleted
        assert not table.delete(keys[0]).deleted

    def test_deletion_is_write_free(self, mode):
        table, keys = filled(mode)
        before = table.mem.off_chip.writes
        table.delete(keys[1])
        assert table.mem.off_chip.writes == before

    def test_other_keys_unaffected(self, mode):
        table, keys = filled(mode)
        for victim in keys[:20]:
            table.delete(victim)
        for key in keys[20:]:
            assert table.lookup(key).found, "deletion caused collateral damage"

    def test_invariants_hold_after_deletes(self, mode):
        table, keys = filled(mode)
        for victim in keys[::3]:
            table.delete(victim)
        check_mccuckoo(table)

    def test_freed_buckets_reused_by_later_inserts(self, mode):
        """§III.F: freed buckets are refilled casually by later insertions."""
        table, keys = filled(mode, load=0.8, seed=72)
        for victim in keys[: len(keys) // 2]:
            table.delete(victim)
        new_keys = missing_keys(len(keys) // 2, set(keys), seed=73)
        for key in new_keys:
            outcome = table.put(key)
            assert not outcome.failed
        for key in new_keys:
            assert table.lookup(key).found
        check_mccuckoo(table)

    def test_delete_then_reinsert_same_key(self, mode):
        table, keys = filled(mode)
        table.delete(keys[0])
        table.put(keys[0], "reborn")
        assert table.get(keys[0]) == "reborn"
        check_mccuckoo(table)


class TestTombstoneSpecifics:
    def test_tombstone_keeps_zero_counter_screen_sound(self):
        """TOMBSTONE mode: counter 0 without a mark still proves the key was
        never inserted, so missing lookups stay cheap."""
        table, keys = filled(DeletionMode.TOMBSTONE, load=0.3, seed=74)
        for victim in keys[:10]:
            table.delete(victim)
        screened = 0
        for key in missing_keys(200, set(keys), seed=75):
            cands = table._candidates(key)
            untouched = any(
                table._counters.peek(b) == 0 and not table._tombstones.test(b)
                for b in cands
            )
            before = table.mem.off_chip.reads
            outcome = table.lookup(key)
            assert not outcome.found
            if untouched:
                assert table.mem.off_chip.reads == before
                screened += 1
        assert screened > 0

    def test_tombstoned_bucket_not_proof_of_absence(self):
        table, keys = filled(DeletionMode.TOMBSTONE, load=0.6, seed=76)
        # Deleting any key must not hide keys that share its buckets.
        for victim in keys[:15]:
            table.delete(victim)
        for key in keys[15:]:
            assert table.lookup(key).found

    def test_insertion_clears_tombstone(self):
        table, keys = filled(DeletionMode.TOMBSTONE, load=0.5, seed=77)
        victim = keys[0]
        buckets = table.copies_of(victim)
        table.delete(victim)
        for bucket in buckets:
            assert table._tombstones.test(bucket)
        # fill until some tombstoned bucket is reused
        for key in missing_keys(400, set(keys), seed=78):
            table.put(key)
            if any(not table._tombstones.test(b) and table._counters.peek(b) > 0
                   for b in buckets):
                break
        reused = [b for b in buckets if table._counters.peek(b) > 0]
        assert reused, "no tombstoned bucket was ever reused"
        for bucket in reused:
            assert not table._tombstones.test(bucket)

    def test_filter_selectivity_fades_with_churn(self):
        """The paper's caveat: tombstones accumulate, so the non-existing
        screen catches fewer queries after heavy churn."""
        table, keys = filled(DeletionMode.TOMBSTONE, load=0.5, seed=79)
        absent = missing_keys(300, set(keys), seed=80)

        def screened_fraction():
            count = 0
            for key in absent:
                before = table.mem.off_chip.reads
                table.lookup(key)
                if table.mem.off_chip.reads == before:
                    count += 1
            return count / len(absent)

        fresh = screened_fraction()
        live = list(keys)
        extra = missing_keys(3000, set(keys) | set(absent), seed=81)
        for _round in range(6):  # churn: delete half, insert new
            for victim in live[: len(live) // 2]:
                table.delete(victim)
            live = live[len(live) // 2 :]
            for _ in range(len(keys) // 2):
                key = extra.pop()
                if not table.put(key).failed:
                    live.append(key)
        churned = screened_fraction()
        assert churned <= fresh
