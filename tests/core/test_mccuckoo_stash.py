"""McCuckoo's off-chip stash: flags, pre-screening, refresh (§III.E/F)."""

import pytest

from repro import DeletionMode, McCuckoo
from repro.core import check_mccuckoo
from repro.core.errors import UnsupportedOperationError
from repro.workloads import distinct_keys, key_stream, missing_keys


def overloaded_table(seed=90, maxloop=0, n_buckets=16, **kwargs):
    """A tiny table pushed hard enough that several items land in the stash."""
    table = McCuckoo(n_buckets, d=3, seed=seed, maxloop=maxloop, **kwargs)
    inserted = []
    keys = key_stream(seed=seed + 1)
    while len(table.stash) < 3:
        key = next(keys)
        table.put(key)
        inserted.append(table._canonical(key))
    return table, inserted


class TestStashedItems:
    def test_stashed_items_findable(self):
        table, inserted = overloaded_table()
        for key, _ in list(table.stash.items()):
            outcome = table.lookup(key)
            assert outcome.found
            assert outcome.from_stash

    def test_flags_set_on_stash(self):
        table, _ = overloaded_table()
        for key, _ in table.stash.items():
            for bucket in table._candidates(key):
                assert table._flags.test(bucket)

    def test_flag_writes_charged_offchip(self):
        table = McCuckoo(16, d=3, seed=91, maxloop=0)
        keys = key_stream(seed=92)
        while len(table.stash) == 0:
            before = table.mem.off_chip.writes
            outcome = table.put(next(keys))
        # the stashing insert wrote d flags + 1 stash entry
        assert outcome.stashed
        assert table.mem.off_chip.writes - before == table.d + 1

    def test_stash_delete(self):
        table, _ = overloaded_table(deletion_mode=DeletionMode.RESET)
        stashed_key = next(iter(table.stash.items()))[0]
        outcome = table.delete(stashed_key)
        assert outcome.deleted
        assert outcome.from_stash
        assert not table.lookup(stashed_key).found

    def test_len_includes_stash(self):
        table, inserted = overloaded_table()
        assert len(table) == len(inserted)

    def test_invariants_with_stash(self):
        table, _ = overloaded_table()
        check_mccuckoo(table)


class TestPreScreening:
    def test_counter_gt_one_skips_stash(self):
        """DISABLED mode: any counter > 1 proves the key cannot be stashed."""
        table, inserted = overloaded_table(seed=93)
        probed = 0
        for key in missing_keys(500, set(inserted), seed=94):
            cands = table._candidates(key)
            vals = [table._counters.peek(b) for b in cands]
            outcome = table.lookup(key)
            if any(v > 1 for v in vals):
                assert not outcome.checked_stash
                probed += 1
        # the tiny overloaded table may have few >1 counters; accept any
        assert probed >= 0

    def test_zero_flag_skips_stash(self):
        table, inserted = overloaded_table(seed=95)
        skipped = 0
        for key in missing_keys(500, set(inserted), seed=96):
            cands = table._candidates(key)
            vals = [table._counters.peek(b) for b in cands]
            flags = [table._flags.test(b) for b in cands]
            if all(v == 1 for v in vals) and not all(flags):
                outcome = table.lookup(key)
                assert not outcome.checked_stash
                skipped += 1
        assert skipped > 0

    def test_screen_never_hides_stashed_items(self):
        table, _ = overloaded_table(seed=97)
        for key, _ in list(table.stash.items()):
            assert table.lookup(key).found

    def test_no_stash_checks_at_moderate_load(self):
        """At 85 % load with maxloop 500 nothing lands in the stash and no
        missing lookup should ever probe it (Table II's last column)."""
        table = McCuckoo(300, d=3, seed=98, maxloop=500)
        keys = distinct_keys(int(table.capacity * 0.85), seed=99)
        for key in keys:
            table.put(key)
        assert len(table.stash) == 0
        for key in missing_keys(400, set(keys), seed=100):
            assert not table.lookup(key).checked_stash


class TestRefresh:
    def test_refresh_requires_stash(self):
        from repro import FailurePolicy

        table = McCuckoo(16, d=3, on_failure=FailurePolicy.FAIL)
        with pytest.raises(UnsupportedOperationError):
            table.refresh_stash()

    def test_refresh_after_deletions_restores_items_to_main(self):
        table, inserted = overloaded_table(
            seed=101, deletion_mode=DeletionMode.RESET
        )
        stashed_before = len(table.stash)
        assert stashed_before >= 3
        # free space by deleting a third of the main-table items
        main_keys = [k for k, _ in table.items() if k not in table.stash]
        for victim in main_keys[: len(main_keys) // 3]:
            table.delete(victim)
        returned = table.refresh_stash()
        assert returned > 0
        assert len(table.stash) == stashed_before - returned
        check_mccuckoo(table)

    def test_refresh_clears_stale_flags(self):
        table, inserted = overloaded_table(
            seed=102, deletion_mode=DeletionMode.RESET
        )
        main_keys = [k for k, _ in table.items() if k not in table.stash]
        for victim in main_keys[: len(main_keys) // 2]:
            table.delete(victim)
        table.refresh_stash()
        # flags now reflect exactly the current stash population
        for key, _ in table.stash.items():
            for bucket in table._candidates(key):
                assert table._flags.test(bucket)
        if len(table.stash) == 0:
            flagged = sum(
                1 for b in range(table.capacity) if table._flags.test(b)
            )
            assert flagged == 0

    def test_refresh_preserves_all_items(self):
        table, inserted = overloaded_table(
            seed=103, deletion_mode=DeletionMode.RESET
        )
        before = sorted(key for key, _ in table.items())
        table.refresh_stash()
        after = sorted(key for key, _ in table.items())
        assert before == after
        for key in before:
            assert table.lookup(key).found
