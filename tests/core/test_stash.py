"""Tests for the off-chip and on-chip stash structures."""

import pytest

from repro.core.errors import TableFullError
from repro.core.stash import OffChipStash, OnChipStash
from repro.memory.model import MemoryModel


class TestOffChipStash:
    def _stash(self, n_buckets=8):
        mem = MemoryModel()
        return OffChipStash(n_buckets, mem), mem

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            OffChipStash(0, MemoryModel())

    def test_add_lookup_roundtrip(self):
        stash, _ = self._stash()
        stash.add(10, "a")
        found, value = stash.lookup(10)
        assert found and value == "a"

    def test_lookup_missing(self):
        stash, _ = self._stash()
        stash.add(10, "a")
        found, value = stash.lookup(11)
        assert not found and value is None

    def test_add_charges_offchip_write(self):
        stash, mem = self._stash()
        stash.add(1, None)
        assert mem.off_chip.writes == 1

    def test_lookup_charges_head_read(self):
        stash, mem = self._stash()
        stash.lookup(1)
        assert mem.off_chip.reads == 1

    def test_chain_traversal_charges_extra_reads(self):
        stash, mem = self._stash(n_buckets=1)  # force one chain
        for key in range(4):
            stash.add(key, key)
        mem.reset()
        stash.lookup(3)  # last in chain
        assert mem.off_chip.reads == 4

    def test_delete_existing(self):
        stash, _ = self._stash()
        stash.add(5, "x")
        assert stash.delete(5)
        assert not stash.lookup(5)[0]
        assert len(stash) == 0

    def test_delete_missing(self):
        stash, _ = self._stash()
        assert not stash.delete(99)

    def test_len_and_contains(self):
        stash, _ = self._stash()
        for key in range(7):
            stash.add(key, None)
        assert len(stash) == 7
        assert 3 in stash
        assert 100 not in stash

    def test_pop_all_drains(self):
        stash, _ = self._stash()
        for key in range(5):
            stash.add(key, key * 2)
        drained = dict(stash.pop_all())
        assert drained == {key: key * 2 for key in range(5)}
        assert len(stash) == 0

    def test_items_iterates_everything(self):
        stash, _ = self._stash()
        stash.add(1, "a")
        stash.add(2, "b")
        assert dict(stash.items()) == {1: "a", 2: "b"}

    def test_max_chain_length(self):
        stash, _ = self._stash(n_buckets=1)
        assert stash.max_chain_length == 0
        for key in range(3):
            stash.add(key, None)
        assert stash.max_chain_length == 3

    def test_duplicate_keys_both_stored(self):
        # The stash is a dumb container; dedup is the table's job.
        stash, _ = self._stash()
        stash.add(1, "first")
        stash.add(1, "second")
        assert len(stash) == 2
        assert stash.delete(1)
        assert stash.lookup(1)[0]


class TestOnChipStash:
    def _stash(self, capacity=4):
        mem = MemoryModel()
        return OnChipStash(capacity, mem), mem

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            OnChipStash(0, MemoryModel())

    def test_roundtrip(self):
        stash, _ = self._stash()
        stash.add(3, "v")
        assert stash.lookup(3) == (True, "v")

    def test_overflow_raises(self):
        stash, _ = self._stash(capacity=2)
        stash.add(1, None)
        stash.add(2, None)
        assert stash.full
        with pytest.raises(TableFullError):
            stash.add(3, None)

    def test_scan_charges_onchip_reads(self):
        stash, mem = self._stash()
        stash.add(1, None)
        stash.add(2, None)
        mem.reset()
        stash.lookup(2)
        assert mem.on_chip.reads == 2
        assert mem.off_chip.reads == 0

    def test_lookup_empty_still_charges_one_read(self):
        stash, mem = self._stash()
        stash.lookup(9)
        assert mem.on_chip.reads == 1

    def test_delete(self):
        stash, _ = self._stash()
        stash.add(1, "x")
        assert stash.delete(1)
        assert not stash.delete(1)
        assert len(stash) == 0

    def test_pop_all(self):
        stash, _ = self._stash()
        stash.add(1, "a")
        stash.add(2, "b")
        assert stash.pop_all() == [(1, "a"), (2, "b")]
        assert len(stash) == 0

    def test_contains(self):
        stash, _ = self._stash()
        stash.add(7, None)
        assert 7 in stash
        assert 8 not in stash
