"""B-McCuckoo (blocked multi-copy) tests: Algorithms 1-3 of §III.G."""

import pytest

from repro import BlockedMcCuckoo, DeletionMode, FailurePolicy, TableFullError
from repro.core import InsertStatus, check_blocked
from repro.core.errors import ConfigurationError, UnsupportedOperationError
from repro.workloads import distinct_keys, key_stream, missing_keys


def filled(n_buckets=48, load=0.7, seed=130, **kwargs):
    table = BlockedMcCuckoo(n_buckets, d=3, slots=3, seed=seed, **kwargs)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 1)
    for key in keys:
        table.put(key, key % 11)
    return table, keys


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            BlockedMcCuckoo(0)
        with pytest.raises(ConfigurationError):
            BlockedMcCuckoo(8, d=1)
        with pytest.raises(ConfigurationError):
            BlockedMcCuckoo(8, slots=0)
        with pytest.raises(ConfigurationError):
            BlockedMcCuckoo(8, maxloop=-1)

    def test_capacity_counts_slots(self):
        assert BlockedMcCuckoo(10, d=3, slots=3).capacity == 90

    def test_rehash_unsupported(self):
        table = BlockedMcCuckoo(4, d=3, slots=3, maxloop=0,
                                on_failure=FailurePolicy.REHASH)
        with pytest.raises(UnsupportedOperationError):
            for key in distinct_keys(100, seed=131):
                table.put(key)


class TestAlgorithm1Insertion:
    def test_first_item_occupies_all_buckets(self):
        table = BlockedMcCuckoo(16, d=3, slots=3, seed=132)
        outcome = table.put(7)
        assert outcome.copies == 3
        assert len(table.copies_of(7)) == 3

    def test_slot_counters_set_to_copy_count(self):
        table = BlockedMcCuckoo(16, d=3, slots=3, seed=132)
        table.put(7)
        for bucket, slot in table.copies_of(7):
            assert table._counters.peek(table._slot_index(bucket, slot)) == 3

    def test_sibling_metadata_written(self):
        table = BlockedMcCuckoo(16, d=3, slots=3, seed=133)
        table.put(9)
        copies = table.copies_of(9)
        for bucket, slot in copies:
            slotmap = table._slotmaps[table._slot_index(bucket, slot)]
            assert slotmap is not None
            assert sum(1 for s in slotmap if s is not None) == 3

    def test_every_candidate_bucket_nonempty_after_insert(self):
        """Phase A guarantees each candidate bucket either received a copy
        or was already full — the basis of the zero-sum lookup screen."""
        table = BlockedMcCuckoo(12, d=3, slots=3, seed=134)
        keys = distinct_keys(60, seed=135)
        for key in keys:
            table.put(key)
            for bucket in table._candidates(table._canonical(key)):
                word = [
                    table._counters.peek(table._slot_index(bucket, s))
                    for s in range(table.slots)
                ]
                assert any(word), "candidate bucket left untouched"

    def test_high_load_fill_and_findability(self):
        table, keys = filled(load=0.95, seed=136)
        check_blocked(table)
        for key in keys:
            outcome = table.lookup(key)
            assert outcome.found
            assert outcome.value == key % 11

    def test_collision_requires_all_nine_counters_one(self):
        table = BlockedMcCuckoo(8, d=3, slots=3, seed=137)
        for key in distinct_keys(80, seed=138):
            outcome = table.put(key)
            if outcome.collided:
                break
        else:
            pytest.fail("no collision reached")
        # Reaching the kick path implies Algorithm 1 found no slot with
        # counter 0/3/2 anywhere, which for d=3 means all nine were 1.
        assert table.events.first_collision_items is not None

    def test_kicked_items_remain_findable(self):
        table, keys = filled(load=0.98, seed=139, maxloop=500)
        assert table.total_kicks > 0
        for key in keys:
            assert table.lookup(key).found
        check_blocked(table)

    def test_metadata_stays_fresh_under_overwrites(self):
        table, keys = filled(load=0.9, seed=140)
        check_blocked(table)  # the checker validates every slotmap


class TestAlgorithm2Lookup:
    def test_zero_sum_bucket_screens_missing(self):
        table, keys = filled(load=0.3, seed=141)
        screened = 0
        for key in missing_keys(200, set(keys), seed=142):
            cands = table._candidates(key)
            dead = any(
                not any(
                    table._counters.peek(table._slot_index(b, s))
                    for s in range(table.slots)
                )
                for b in cands
            )
            before = table.mem.off_chip.reads
            outcome = table.lookup(key)
            assert not outcome.found
            if dead:
                assert table.mem.off_chip.reads == before
                screened += 1
        assert screened > 0

    def test_missing_lookup_reads_at_most_d_buckets(self):
        table, keys = filled(load=0.95, seed=143)
        for key in missing_keys(100, set(keys), seed=144):
            assert table.lookup(key).buckets_read <= table.d

    def test_stale_slot_not_returned(self):
        """A deleted entry still physically present must not satisfy a
        lookup (its counter is 0)."""
        table, keys = filled(load=0.5, seed=145, deletion_mode=DeletionMode.RESET)
        victim = keys[0]
        table.delete(victim)
        assert not table.lookup(victim).found


class TestAlgorithm3Deletion:
    def test_delete_disabled_raises(self):
        table = BlockedMcCuckoo(8)
        table.put(1)
        with pytest.raises(UnsupportedOperationError):
            table.delete(1)

    @pytest.mark.parametrize("mode", [DeletionMode.RESET, DeletionMode.TOMBSTONE])
    def test_delete_zeroes_all_copies_via_metadata(self, mode):
        table, keys = filled(load=0.6, seed=146, deletion_mode=mode)
        victim = keys[5]
        copies = table.copies_of(victim)
        outcome = table.delete(victim)
        assert outcome.deleted
        assert outcome.copies_removed == len(copies)
        assert table.copies_of(victim) == []

    @pytest.mark.parametrize("mode", [DeletionMode.RESET, DeletionMode.TOMBSTONE])
    def test_delete_is_write_free(self, mode):
        table, keys = filled(load=0.6, seed=147, deletion_mode=mode)
        before = table.mem.off_chip.writes
        table.delete(keys[0])
        assert table.mem.off_chip.writes == before

    def test_collateral_safety(self):
        table, keys = filled(load=0.7, seed=148, deletion_mode=DeletionMode.RESET)
        for victim in keys[:30]:
            table.delete(victim)
        for key in keys[30:]:
            assert table.lookup(key).found
        check_blocked(table)

    def test_reuse_after_delete(self):
        table, keys = filled(load=0.9, seed=149, deletion_mode=DeletionMode.RESET)
        for victim in keys[: len(keys) // 2]:
            table.delete(victim)
        fresh = missing_keys(len(keys) // 4, set(keys), seed=150)
        for key in fresh:
            assert not table.put(key).failed
        for key in fresh:
            assert table.lookup(key).found
        check_blocked(table)


class TestBlockedStash:
    def _overloaded(self, seed=151):
        table = BlockedMcCuckoo(6, d=3, slots=3, seed=seed, maxloop=0)
        keys = key_stream(seed=seed + 1)
        inserted = []
        while len(table.stash) < 2:
            key = next(keys)
            table.put(key)
            inserted.append(table._canonical(key))
        return table, inserted

    def test_stashed_items_findable(self):
        table, _ = self._overloaded()
        for key, _ in list(table.stash.items()):
            outcome = table.lookup(key)
            assert outcome.found and outcome.from_stash

    def test_bucket_level_flags_set(self):
        table, _ = self._overloaded()
        for key, _ in table.stash.items():
            for bucket in table._candidates(key):
                assert table._flags.test(bucket)

    def test_fail_policy_raises(self):
        table = BlockedMcCuckoo(4, d=3, slots=3, maxloop=2,
                                on_failure=FailurePolicy.FAIL, seed=152)
        with pytest.raises(TableFullError):
            for key in distinct_keys(200, seed=153):
                table.put(key)


class TestBlockedUpdate:
    def test_upsert_updates_every_copy(self):
        table, keys = filled(load=0.5, seed=154)
        outcome = table.upsert(keys[0], "fresh")
        assert outcome.status is InsertStatus.UPDATED
        assert outcome.copies == len(table.copies_of(keys[0]))
        for bucket, slot in table.copies_of(keys[0]):
            assert table._values[table._slot_index(bucket, slot)] == "fresh"
        check_blocked(table)

    def test_upsert_inserts_when_missing(self):
        table = BlockedMcCuckoo(16, seed=155)
        assert table.upsert(3, "x").status is InsertStatus.STORED

    def test_items_iterates_distinct(self):
        table, keys = filled(load=0.4, seed=156)
        listed = dict(table.items())
        assert len(listed) == len(keys)
        assert set(listed) == {table._canonical(k) for k in keys}

    def test_counter_histogram_and_footprint(self):
        table, keys = filled(load=0.4, seed=157)
        histogram = table.counter_histogram()
        assert sum(histogram.values()) == table.capacity
        assert table.onchip_bytes == table.capacity * 2 // 8


class TestCounterScreenToggle:
    def test_requires_disabled_deletions(self):
        with pytest.raises(ConfigurationError):
            BlockedMcCuckoo(8, lookup_counter_screen=False,
                            deletion_mode=DeletionMode.RESET)

    def test_old_way_lookup_correct(self):
        plain = BlockedMcCuckoo(24, seed=160, lookup_counter_screen=False)
        keys = distinct_keys(int(plain.capacity * 0.9), seed=161)
        for key in keys:
            plain.put(key, key % 7)
        for key in keys:
            outcome = plain.lookup(key)
            assert outcome.found and outcome.value == key % 7
        for key in missing_keys(100, set(keys), seed=162):
            assert not plain.lookup(key).found

    def test_old_way_skips_onchip_reads(self):
        table = BlockedMcCuckoo(24, seed=163, lookup_counter_screen=False)
        keys = distinct_keys(40, seed=164)
        for key in keys:
            table.put(key)
        before = table.mem.on_chip.reads
        table.lookup(keys[0])
        assert table.mem.on_chip.reads == before

    def test_old_way_stashed_items_found(self):
        table = BlockedMcCuckoo(4, seed=165, maxloop=0,
                                lookup_counter_screen=False)
        keys = key_stream(seed=166)
        while len(table.stash) < 2:
            table.put(next(keys))
        for key, _ in list(table.stash.items()):
            outcome = table.lookup(key)
            assert outcome.found and outcome.from_stash
