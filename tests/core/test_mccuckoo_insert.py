"""McCuckoo insertion: the paper's principles 1-3 and their consequences."""

import pytest

from repro import FailurePolicy, McCuckoo, SiblingTracking, TableFullError
from repro.core import InsertStatus, check_mccuckoo
from repro.core.errors import ConfigurationError
from repro.workloads import distinct_keys


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            McCuckoo(0)
        with pytest.raises(ConfigurationError):
            McCuckoo(8, d=1)
        with pytest.raises(ConfigurationError):
            McCuckoo(8, maxloop=-1)
        with pytest.raises(ConfigurationError):
            McCuckoo(8, growth_factor=0.5)

    def test_capacity(self):
        assert McCuckoo(100, d=3).capacity == 300
        assert McCuckoo(50, d=4).capacity == 200

    def test_counter_width_matches_d(self):
        assert McCuckoo(8, d=3)._counters.bits == 2
        assert McCuckoo(8, d=4)._counters.bits == 4
        assert McCuckoo(8, d=2)._counters.bits == 2

    def test_onchip_footprint_is_2_bits_per_bucket(self):
        table = McCuckoo(100, d=3)
        assert table.onchip_bytes == 75  # 300 buckets * 2 bits


class TestPrinciple1_OccupyAllEmpties:
    def test_first_item_gets_d_copies(self):
        table = McCuckoo(64, d=3, seed=2)
        outcome = table.put(1234)
        assert outcome.status is InsertStatus.STORED
        assert outcome.copies == 3
        assert len(table.copies_of(1234)) == 3

    def test_counters_set_to_copy_count(self):
        table = McCuckoo(64, d=3, seed=2)
        table.put(1234)
        for bucket in table.copies_of(1234):
            assert table._counters.peek(bucket) == 3

    def test_empty_table_insert_writes_d_buckets_reads_none(self):
        table = McCuckoo(64, d=3, seed=2)
        with table.mem.measure() as measurement:
            table.put(77)
        assert measurement.delta.off_chip.writes == 3
        assert measurement.delta.off_chip.reads == 0

    def test_partial_overlap_gets_remaining_empties(self):
        table = McCuckoo(16, d=3, seed=3)
        keys = distinct_keys(30, seed=4)
        for key in keys:
            table.put(key)
        check_mccuckoo(table)
        # every item has at least one copy
        for key in keys:
            assert len(table.copies_of(key)) >= 1

    def test_d4_first_item_gets_4_copies(self):
        table = McCuckoo(32, d=4, seed=5)
        outcome = table.put(99)
        assert outcome.copies == 4


class TestPrinciple2_NeverOverwriteSoleCopies:
    def test_sole_copies_survive_insertions(self):
        table = McCuckoo(24, d=3, seed=6, maxloop=0,
                         on_failure=FailurePolicy.STASH)
        keys = distinct_keys(60, seed=7)
        for key in keys:
            table.put(key)
        check_mccuckoo(table)
        # With maxloop=0 no kick can displace a sole copy, so every key that
        # was stored in the main table must still be findable.
        for key, _ in list(table.items()):
            assert table.lookup(key).found


class TestPrinciple3_OverwriteLargestFirst:
    def _table_with_triple(self, seed=8):
        """A table whose first item has 3 copies."""
        table = McCuckoo(64, d=3, seed=seed)
        first = distinct_keys(1, seed=seed)[0]
        table.put(first)
        assert len(table.copies_of(first)) == 3
        return table, first

    def test_overwrite_balances_copies(self):
        table, first = self._table_with_triple()
        # A new key with one empty candidate and two candidates on `first`'s
        # 3-copy buckets: filling the empty gives 1 copy, then principle 3
        # takes exactly one redundant copy of `first` (1:3 -> 2:2).
        target_buckets = set(table.copies_of(first))
        for key in distinct_keys(8000, seed=9):
            if key == first:
                continue
            shared = set(table._candidates(key)) & target_buckets
            if len(shared) == 2:
                outcome = table.put(key)
                assert outcome.copies == 2
                assert len(table.copies_of(first)) == 2
                check_mccuckoo(table)
                return
        pytest.fail("no overlapping key found")

    def test_no_gainless_overwrite(self):
        """An item with 2 empties does not steal from a 3-copy item:
        2:3 -> 3:2 gains nothing (the paper's worked example)."""
        table, first = self._table_with_triple(seed=10)
        for key in distinct_keys(4000, seed=11):
            if key == first:
                continue
            shared = set(table._candidates(key)) & set(table.copies_of(first))
            if len(shared) == 1:
                outcome = table.put(key)
                assert outcome.copies == 2  # only the two empties
                assert len(table.copies_of(first)) == 3  # untouched
                check_mccuckoo(table)
                return
        pytest.fail("no overlapping key found")

    def test_victim_siblings_decremented(self):
        table, first = self._table_with_triple(seed=12)
        for key in distinct_keys(8000, seed=13):
            shared = set(table._candidates(key)) & set(table.copies_of(first))
            if key != first and len(shared) == 2:
                table.put(key)
                remaining = table.copies_of(first)
                assert len(remaining) == 2
                for bucket in remaining:
                    assert table._counters.peek(bucket) == 2
                return
        pytest.fail("no overlapping key found")


class TestCollisionsAndKicks:
    def test_collision_only_when_all_sole_copies(self):
        table = McCuckoo(32, d=3, seed=14)
        for key in distinct_keys(80, seed=15):
            outcome = table.put(key)
            if outcome.collided:
                break
        assert table.events.first_collision_items is not None
        check_mccuckoo(table)

    def test_kicks_reported_in_outcome(self):
        table = McCuckoo(32, d=3, seed=16)
        saw_kick = False
        for key in distinct_keys(90, seed=17):
            outcome = table.put(key)
            if outcome.kicks > 0:
                saw_kick = True
                assert outcome.collided
        assert saw_kick
        assert table.total_kicks > 0

    def test_all_items_remain_findable_after_kicks(self):
        table = McCuckoo(40, d=3, seed=18)
        keys = distinct_keys(110, seed=19)
        for key in keys:
            table.put(key, value=key & 0xFF)
        check_mccuckoo(table)
        for key in keys:
            outcome = table.lookup(key)
            assert outcome.found
            assert outcome.value == key & 0xFF

    def test_maxloop_zero_stashes_on_collision(self):
        table = McCuckoo(8, d=3, seed=20, maxloop=0)
        stashed = 0
        for key in distinct_keys(40, seed=21):
            outcome = table.put(key)
            if outcome.stashed:
                stashed += 1
        assert stashed > 0
        assert len(table.stash) == stashed
        check_mccuckoo(table)

    def test_failure_event_recorded(self):
        table = McCuckoo(8, d=3, seed=22, maxloop=0)
        for key in distinct_keys(40, seed=23):
            table.put(key)
        assert table.events.first_failure_items is not None

    def test_fail_policy_raises(self):
        table = McCuckoo(4, d=3, seed=24, maxloop=4,
                         on_failure=FailurePolicy.FAIL)
        with pytest.raises(TableFullError):
            for key in distinct_keys(60, seed=25):
                table.put(key)


class TestHighLoadFill:
    @pytest.mark.parametrize("tracking", [SiblingTracking.READ, SiblingTracking.METADATA])
    def test_fill_to_88_percent(self, tracking):
        table = McCuckoo(300, d=3, seed=26, sibling_tracking=tracking)
        keys = distinct_keys(int(table.capacity * 0.88), seed=27)
        for key in keys:
            table.put(key)
        assert len(table) == len(keys)
        check_mccuckoo(table)
        for key in keys[::7]:
            assert table.lookup(key).found

    def test_len_counts_distinct_items_not_copies(self):
        table = McCuckoo(200, d=3, seed=28)
        keys = distinct_keys(100, seed=29)
        for key in keys:
            table.put(key)
        assert len(table) == 100
        total_copies = sum(len(table.copies_of(key)) for key in keys)
        assert total_copies > 100  # redundancy exists

    def test_load_ratio(self):
        table = McCuckoo(100, d=3, seed=30)
        for key in distinct_keys(150, seed=31):
            table.put(key)
        assert table.load_ratio == pytest.approx(0.5)


class TestUpsert:
    def test_upsert_inserts_when_absent(self):
        table = McCuckoo(64, d=3, seed=32)
        outcome = table.upsert(5, "v1")
        assert outcome.status is InsertStatus.STORED

    def test_upsert_updates_all_copies(self):
        table = McCuckoo(64, d=3, seed=33)
        table.put(5, "v1")
        outcome = table.upsert(5, "v2")
        assert outcome.status is InsertStatus.UPDATED
        assert table.get(5) == "v2"
        for bucket in table.copies_of(5):
            assert table._values[bucket] == "v2"
        check_mccuckoo(table)

    def test_upsert_updates_stashed_item(self):
        table = McCuckoo(8, d=3, seed=34, maxloop=0)
        stashed_key = None
        for key in distinct_keys(40, seed=35):
            if table.put(key, "old").stashed:
                stashed_key = key
                break
        assert stashed_key is not None
        outcome = table.upsert(stashed_key, "new")
        assert outcome.status is InsertStatus.UPDATED
        assert table.get(stashed_key) == "new"
