"""McCuckoo rehash failure policy (the traditional remedy, §I/§II)."""

from repro import FailurePolicy, McCuckoo
from repro.core import check_mccuckoo
from repro.workloads import distinct_keys


def rehashing_table(n_buckets=8, seed=110, maxloop=2):
    return McCuckoo(
        n_buckets,
        d=3,
        seed=seed,
        maxloop=maxloop,
        on_failure=FailurePolicy.REHASH,
        growth_factor=2.0,
    )


class TestRehash:
    def test_rehash_triggered_and_grows_table(self):
        table = rehashing_table()
        original_buckets = table.n_buckets
        keys = distinct_keys(120, seed=111)
        for key in keys:
            table.put(key, key % 5)
        assert table.rehash_count >= 1
        assert table.n_buckets > original_buckets

    def test_no_items_lost_across_rehash(self):
        table = rehashing_table(seed=112)
        keys = distinct_keys(150, seed=113)
        for key in keys:
            table.put(key, key % 13)
        assert len(table) == len(keys)
        for key in keys:
            outcome = table.lookup(key)
            assert outcome.found
            assert outcome.value == key % 13
        check_mccuckoo(table)

    def test_rehash_charges_drain_reads(self):
        table = rehashing_table(seed=114)
        keys = distinct_keys(200, seed=115)
        before = table.mem.off_chip.reads
        for key in keys:
            table.put(key)
        assert table.rehash_count >= 1
        # draining the table for a rehash reads every occupied bucket
        assert table.mem.off_chip.reads > before

    def test_rehash_has_no_stash(self):
        table = rehashing_table()
        assert table.stash is None

    def test_events_record_failure_that_caused_rehash(self):
        table = rehashing_table(seed=116)
        for key in distinct_keys(150, seed=117):
            table.put(key)
        if table.rehash_count:
            assert table.events.first_failure_items is not None

    def test_rehash_keeps_invariants(self):
        table = rehashing_table(seed=118, maxloop=1)
        for key in distinct_keys(180, seed=119):
            table.put(key)
        check_mccuckoo(table)

    def test_values_preserved_across_multiple_rehashes(self):
        table = rehashing_table(n_buckets=4, seed=120, maxloop=1)
        keys = distinct_keys(120, seed=121)
        for index, key in enumerate(keys):
            table.put(key, index)
        assert table.rehash_count >= 2
        for index, key in enumerate(keys):
            assert table.get(key) == index
