"""Tests for kick policies (random-walk and MinCounter)."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.core.policies import (
    MinCounterPolicy,
    RandomWalkPolicy,
    make_policy,
)
from repro.memory.model import MemoryModel


class TestRandomWalk:
    def test_chooses_from_candidates(self):
        policy = RandomWalkPolicy()
        rng = random.Random(1)
        for _ in range(50):
            assert policy.choose([3, 7, 9], rng) in (3, 7, 9)

    def test_single_candidate(self):
        assert RandomWalkPolicy().choose([42], random.Random(0)) == 42

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            RandomWalkPolicy().choose([], random.Random(0))

    def test_covers_all_candidates_eventually(self):
        policy = RandomWalkPolicy()
        rng = random.Random(2)
        chosen = {policy.choose([1, 2, 3], rng) for _ in range(100)}
        assert chosen == {1, 2, 3}

    def test_deterministic_given_rng(self):
        a = [RandomWalkPolicy().choose([1, 2, 3], random.Random(9)) for _ in range(5)]
        b = [RandomWalkPolicy().choose([1, 2, 3], random.Random(9)) for _ in range(5)]
        # fresh rng per call in b? build identical sequences instead
        rng1, rng2 = random.Random(9), random.Random(9)
        p = RandomWalkPolicy()
        seq1 = [p.choose([1, 2, 3], rng1) for _ in range(10)]
        seq2 = [p.choose([1, 2, 3], rng2) for _ in range(10)]
        assert seq1 == seq2
        assert a[0] == b[0]


class TestMinCounter:
    def _attached(self, n=16):
        mem = MemoryModel()
        policy = MinCounterPolicy()
        policy.attach(n, mem)
        return policy, mem

    def test_requires_attach(self):
        with pytest.raises(ConfigurationError):
            MinCounterPolicy().choose([1], random.Random(0))

    def test_prefers_cold_bucket(self):
        policy, _ = self._attached()
        rng = random.Random(3)
        policy.on_kick(1)
        policy.on_kick(1)
        policy.on_kick(2)
        assert policy.choose([1, 2, 3], rng) == 3

    def test_ties_broken_among_coldest(self):
        policy, _ = self._attached()
        rng = random.Random(4)
        policy.on_kick(1)
        chosen = {policy.choose([1, 2, 3], rng) for _ in range(50)}
        assert chosen == {2, 3}

    def test_on_kick_increments_history(self):
        policy, _ = self._attached()
        policy.on_kick(5)
        assert policy._history.peek(5) == 1

    def test_saturates_at_5_bit_max(self):
        policy, _ = self._attached()
        for _ in range(100):
            policy.on_kick(0)
        assert policy._history.peek(0) == 31

    def test_history_charged_onchip(self):
        policy, mem = self._attached()
        policy.choose([0, 1], random.Random(5))
        assert mem.on_chip.reads == 2
        policy.on_kick(0)
        assert mem.on_chip.writes == 1

    def test_empty_candidates_rejected(self):
        policy, _ = self._attached()
        with pytest.raises(ValueError):
            policy.choose([], random.Random(0))


class TestRegistry:
    def test_make_known_policies(self):
        assert isinstance(make_policy("random-walk"), RandomWalkPolicy)
        assert isinstance(make_policy("mincounter"), MinCounterPolicy)

    def test_make_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("does-not-exist")
