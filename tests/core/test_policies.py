"""Tests for kick policies (random-walk, MinCounter, bubbling)."""

import random

import pytest

from repro.core.errors import ConfigurationError
from repro.core.policies import (
    BubblingPolicy,
    MinCounterPolicy,
    RandomWalkPolicy,
    make_policy,
)
from repro.memory.model import MemoryModel


class TestRandomWalk:
    def test_chooses_from_candidates(self):
        policy = RandomWalkPolicy()
        rng = random.Random(1)
        for _ in range(50):
            assert policy.choose([3, 7, 9], rng) in (3, 7, 9)

    def test_single_candidate(self):
        assert RandomWalkPolicy().choose([42], random.Random(0)) == 42

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            RandomWalkPolicy().choose([], random.Random(0))

    def test_covers_all_candidates_eventually(self):
        policy = RandomWalkPolicy()
        rng = random.Random(2)
        chosen = {policy.choose([1, 2, 3], rng) for _ in range(100)}
        assert chosen == {1, 2, 3}

    def test_deterministic_given_rng(self):
        a = [RandomWalkPolicy().choose([1, 2, 3], random.Random(9)) for _ in range(5)]
        b = [RandomWalkPolicy().choose([1, 2, 3], random.Random(9)) for _ in range(5)]
        # fresh rng per call in b? build identical sequences instead
        rng1, rng2 = random.Random(9), random.Random(9)
        p = RandomWalkPolicy()
        seq1 = [p.choose([1, 2, 3], rng1) for _ in range(10)]
        seq2 = [p.choose([1, 2, 3], rng2) for _ in range(10)]
        assert seq1 == seq2
        assert a[0] == b[0]


class TestMinCounter:
    def _attached(self, n=16):
        mem = MemoryModel()
        policy = MinCounterPolicy()
        policy.attach(n, mem)
        return policy, mem

    def test_requires_attach(self):
        with pytest.raises(ConfigurationError):
            MinCounterPolicy().choose([1], random.Random(0))

    def test_prefers_cold_bucket(self):
        policy, _ = self._attached()
        rng = random.Random(3)
        policy.on_kick(1)
        policy.on_kick(1)
        policy.on_kick(2)
        assert policy.choose([1, 2, 3], rng) == 3

    def test_ties_broken_among_coldest(self):
        policy, _ = self._attached()
        rng = random.Random(4)
        policy.on_kick(1)
        chosen = {policy.choose([1, 2, 3], rng) for _ in range(50)}
        assert chosen == {2, 3}

    def test_on_kick_increments_history(self):
        policy, _ = self._attached()
        policy.on_kick(5)
        assert policy._history.peek(5) == 1

    def test_saturates_at_5_bit_max(self):
        policy, _ = self._attached()
        for _ in range(100):
            policy.on_kick(0)
        assert policy._history.peek(0) == 31

    def test_history_charged_onchip(self):
        policy, mem = self._attached()
        policy.choose([0, 1], random.Random(5))
        assert mem.on_chip.reads == 2
        policy.on_kick(0)
        assert mem.on_chip.writes == 1

    def test_empty_candidates_rejected(self):
        policy, _ = self._attached()
        with pytest.raises(ValueError):
            policy.choose([], random.Random(0))


class TestBubbling:
    def _attached(self, n=64, **kwargs):
        mem = MemoryModel()
        policy = BubblingPolicy(**kwargs)
        policy.attach(n, mem)
        return policy, mem

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            BubblingPolicy(variant="depth-first")

    def test_give_up_at_validated(self):
        with pytest.raises(ConfigurationError):
            BubblingPolicy(give_up_at=0)

    def test_requires_attach(self):
        with pytest.raises(ConfigurationError):
            BubblingPolicy().choose([1], random.Random(0))
        with pytest.raises(ConfigurationError):
            BubblingPolicy().exhausted([1])

    def test_empty_candidates_rejected(self):
        policy, _ = self._attached()
        with pytest.raises(ValueError):
            policy.choose([], random.Random(0))

    def test_chooses_lowest_label_first_on_ties(self):
        policy, _ = self._attached()
        rng = random.Random(1)
        # all labels zero: deterministic first-lowest, no rng consumed
        state = rng.getstate()
        assert policy.choose([5, 2, 9], rng) == 5
        assert rng.getstate() == state
        policy._labels.set(5, 3)
        assert policy.choose([5, 2, 9], rng) == 2

    def test_kuszmaul_raises_full_others_from_zero(self):
        policy, _ = self._attached()
        policy.record_eviction(4, [7, 9])
        # an eviction proves 7 and 9 were full: distance >= 1 each
        assert policy._labels.get(7) == 1
        assert policy._labels.get(9) == 1
        # victim = max(old, 1 + min(others)) = 2
        assert policy._labels.get(4) == 2

    def test_kuszmaul_labels_never_decrease(self):
        policy, _ = self._attached()
        policy._labels.set(4, 7)
        policy.record_eviction(4, [7, 9])
        assert policy._labels.get(4) == 7

    def test_porat_shalem_self_increment_only(self):
        policy, _ = self._attached(variant="porat-shalem")
        policy.record_eviction(4, [7, 9])
        assert policy._labels.get(4) == 1
        assert policy._labels.get(7) == 0
        assert policy._labels.get(9) == 0

    def test_labels_saturate_at_bit_width(self):
        policy, _ = self._attached(variant="porat-shalem", bits=8)
        for _ in range(300):
            policy.record_eviction(4, [7])
        assert policy._labels.get(4) == 255

    def test_exhausted_when_all_candidates_at_threshold(self):
        policy, _ = self._attached(give_up_at=3)
        assert not policy.exhausted([1, 2])
        policy._labels.set(1, 3)
        assert not policy.exhausted([1, 2])  # bucket 2 still promising
        policy._labels.set(2, 5)
        assert policy.exhausted([1, 2])
        assert not policy.exhausted([])

    def test_give_up_at_derived_from_table_size(self):
        policy, _ = self._attached(n=64)
        assert policy.give_up_at == max(4, 2 * (64).bit_length())
        # re-attach (rehash/resize) re-derives for the new size
        policy.attach(1 << 14, MemoryModel())
        assert policy.give_up_at == 2 * 15

    def test_explicit_give_up_at_survives_reattach(self):
        policy, _ = self._attached(give_up_at=9)
        policy.attach(1 << 14, MemoryModel())
        assert policy.give_up_at == 9

    def test_labels_charged_onchip(self):
        policy, mem = self._attached()
        policy.choose([0, 1], random.Random(5))
        assert mem.on_chip.reads == 2
        policy.record_eviction(0, [1])
        assert mem.on_chip.writes >= 1

    def test_attach_resets_labels(self):
        policy, _ = self._attached()
        policy._labels.set(3, 9)
        policy.attach(64, MemoryModel())
        assert policy._labels.get(3) == 0


class TestRegistry:
    def test_make_known_policies(self):
        assert isinstance(make_policy("random-walk"), RandomWalkPolicy)
        assert isinstance(make_policy("mincounter"), MinCounterPolicy)
        assert isinstance(make_policy("bubbling"), BubblingPolicy)

    def test_make_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            make_policy("does-not-exist")
