"""Tests for the packed on-chip counter arrays."""

import pytest

from repro.core.counters import BitArray, PackedArray
from repro.memory.model import MemoryModel, Tier


class TestConstruction:
    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            PackedArray(0, bits=2)

    @pytest.mark.parametrize("bits", [3, 5, 6, 7, 16])
    def test_rejects_unpackable_widths(self, bits):
        with pytest.raises(ValueError):
            PackedArray(8, bits=bits)

    @pytest.mark.parametrize("bits,expected_max", [(1, 1), (2, 3), (4, 15), (8, 255)])
    def test_max_value(self, bits, expected_max):
        assert PackedArray(8, bits=bits).max_value == expected_max

    def test_initialised_to_zero(self):
        array = PackedArray(100, bits=2)
        assert all(value == 0 for value in array)

    @pytest.mark.parametrize(
        "length,bits,expected_bytes",
        [(8, 2, 2), (9, 2, 3), (16, 1, 2), (3, 8, 3), (5, 4, 3)],
    )
    def test_storage_bytes(self, length, bits, expected_bytes):
        assert PackedArray(length, bits=bits).storage_bytes == expected_bytes


class TestPeekPoke:
    def test_roundtrip_every_position(self):
        array = PackedArray(37, bits=2)
        for index in range(37):
            array.poke(index, index % 4)
        for index in range(37):
            assert array.peek(index) == index % 4

    def test_neighbours_unaffected(self):
        array = PackedArray(8, bits=2)
        array.poke(3, 3)
        array.poke(4, 1)
        array.poke(3, 2)
        assert array.peek(4) == 1
        assert array.peek(2) == 0

    def test_poke_rejects_overflow(self):
        array = PackedArray(8, bits=2)
        with pytest.raises(ValueError):
            array.poke(0, 4)
        with pytest.raises(ValueError):
            array.poke(0, -1)

    def test_index_bounds(self):
        array = PackedArray(8, bits=2)
        with pytest.raises(IndexError):
            array.peek(8)
        with pytest.raises(IndexError):
            array.poke(-1, 0)

    def test_8bit_values(self):
        array = PackedArray(5, bits=8)
        array.poke(4, 255)
        assert array.peek(4) == 255


class TestAccounting:
    def test_get_charges_onchip_read(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem)
        array.get(0)
        assert mem.on_chip.reads == 1
        assert mem.off_chip.reads == 0

    def test_set_charges_onchip_write(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem)
        array.set(0, 3)
        assert mem.on_chip.writes == 1

    def test_peek_poke_are_free(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem)
        array.poke(0, 1)
        array.peek(0)
        assert mem.on_chip.reads == 0
        assert mem.on_chip.writes == 0

    def test_get_many_charges_per_counter(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem)
        values = array.get_many([0, 3, 5])
        assert values == [0, 0, 0]
        assert mem.on_chip.reads == 3

    def test_configurable_tier(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem, tier=Tier.OFF_CHIP)
        array.get(0)
        assert mem.off_chip.reads == 1

    def test_works_without_memory_model(self):
        array = PackedArray(8, bits=2)
        array.set(1, 2)
        assert array.get(1) == 2


class TestBulk:
    def test_fill_pattern(self):
        array = PackedArray(10, bits=2)
        array.fill(3)
        assert all(value == 3 for value in array)

    def test_fill_rejects_overflow(self):
        with pytest.raises(ValueError):
            PackedArray(10, bits=2).fill(4)

    def test_nonzero_count(self):
        array = PackedArray(10, bits=2)
        array.poke(1, 2)
        array.poke(7, 1)
        assert array.nonzero_count() == 2

    def test_len_and_iter(self):
        array = PackedArray(13, bits=4)
        assert len(array) == 13
        assert len(list(array)) == 13


class TestBitArray:
    def test_mark_test_clear(self):
        bits = BitArray(16)
        assert not bits.test(5)
        bits.mark(5)
        assert bits.test(5)
        bits.clear_bit(5)
        assert not bits.test(5)

    def test_is_one_bit_wide(self):
        assert BitArray(16).max_value == 1

    def test_dense_packing(self):
        bits = BitArray(16)
        assert bits.storage_bytes == 2

    def test_accounted_access(self):
        mem = MemoryModel()
        bits = BitArray(8, mem=mem)
        bits.set(0, 1)
        bits.get(0)
        assert mem.on_chip.writes == 1
        assert mem.on_chip.reads == 1
