"""Tests for the packed on-chip counter arrays."""

import pytest

from repro._numpy import numpy_available
from repro.core.counters import BitArray, PackedArray
from repro.memory.model import CounterCharging, MemoryModel, Tier


class TestConstruction:
    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            PackedArray(0, bits=2)

    @pytest.mark.parametrize("bits", [3, 5, 6, 7, 16])
    def test_rejects_unpackable_widths(self, bits):
        with pytest.raises(ValueError):
            PackedArray(8, bits=bits)

    @pytest.mark.parametrize("bits,expected_max", [(1, 1), (2, 3), (4, 15), (8, 255)])
    def test_max_value(self, bits, expected_max):
        assert PackedArray(8, bits=bits).max_value == expected_max

    def test_initialised_to_zero(self):
        array = PackedArray(100, bits=2)
        assert all(value == 0 for value in array)

    @pytest.mark.parametrize(
        "length,bits,expected_bytes",
        [(8, 2, 2), (9, 2, 3), (16, 1, 2), (3, 8, 3), (5, 4, 3)],
    )
    def test_storage_bytes(self, length, bits, expected_bytes):
        assert PackedArray(length, bits=bits).storage_bytes == expected_bytes


class TestPeekPoke:
    def test_roundtrip_every_position(self):
        array = PackedArray(37, bits=2)
        for index in range(37):
            array.poke(index, index % 4)
        for index in range(37):
            assert array.peek(index) == index % 4

    def test_neighbours_unaffected(self):
        array = PackedArray(8, bits=2)
        array.poke(3, 3)
        array.poke(4, 1)
        array.poke(3, 2)
        assert array.peek(4) == 1
        assert array.peek(2) == 0

    def test_poke_rejects_overflow(self):
        array = PackedArray(8, bits=2)
        with pytest.raises(ValueError):
            array.poke(0, 4)
        with pytest.raises(ValueError):
            array.poke(0, -1)

    def test_index_bounds(self):
        array = PackedArray(8, bits=2)
        with pytest.raises(IndexError):
            array.peek(8)
        with pytest.raises(IndexError):
            array.poke(-1, 0)

    def test_8bit_values(self):
        array = PackedArray(5, bits=8)
        array.poke(4, 255)
        assert array.peek(4) == 255


class TestAccounting:
    def test_get_charges_onchip_read(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem)
        array.get(0)
        assert mem.on_chip.reads == 1
        assert mem.off_chip.reads == 0

    def test_set_charges_onchip_write(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem)
        array.set(0, 3)
        assert mem.on_chip.writes == 1

    def test_peek_poke_are_free(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem)
        array.poke(0, 1)
        array.peek(0)
        assert mem.on_chip.reads == 0
        assert mem.on_chip.writes == 0

    def test_get_many_charges_per_counter(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem)
        values = array.get_many([0, 3, 5])
        assert values == [0, 0, 0]
        assert mem.on_chip.reads == 3

    def test_configurable_tier(self):
        mem = MemoryModel()
        array = PackedArray(8, bits=2, mem=mem, tier=Tier.OFF_CHIP)
        array.get(0)
        assert mem.off_chip.reads == 1

    def test_works_without_memory_model(self):
        array = PackedArray(8, bits=2)
        array.set(1, 2)
        assert array.get(1) == 2


class TestBulk:
    def test_fill_pattern(self):
        array = PackedArray(10, bits=2)
        array.fill(3)
        assert all(value == 3 for value in array)

    def test_fill_rejects_overflow(self):
        with pytest.raises(ValueError):
            PackedArray(10, bits=2).fill(4)

    def test_nonzero_count(self):
        array = PackedArray(10, bits=2)
        array.poke(1, 2)
        array.poke(7, 1)
        assert array.nonzero_count() == 2

    def test_len_and_iter(self):
        array = PackedArray(13, bits=4)
        assert len(array) == 13
        assert len(list(array)) == 13


class TestBitArray:
    def test_mark_test_clear(self):
        bits = BitArray(16)
        assert not bits.test(5)
        bits.mark(5)
        assert bits.test(5)
        bits.clear_bit(5)
        assert not bits.test(5)

    def test_is_one_bit_wide(self):
        assert BitArray(16).max_value == 1

    def test_dense_packing(self):
        bits = BitArray(16)
        assert bits.storage_bytes == 2

    def test_accounted_access(self):
        mem = MemoryModel()
        bits = BitArray(8, mem=mem)
        bits.set(0, 1)
        bits.get(0)
        assert mem.on_chip.writes == 1
        assert mem.on_chip.reads == 1

class TestBlockDedup:
    """get_block/set_block charge per counter by default and per *distinct
    64-bit word* under PER_WORD — duplicate and same-word indices dedup."""

    def test_distinct_words_explicit(self):
        array = PackedArray(256, bits=2)  # 32 counters per 64-bit word
        assert array.distinct_words([0, 1, 31]) == 1
        assert array.distinct_words([0, 32]) == 2
        assert array.distinct_words([5, 5, 5]) == 1
        assert array.distinct_words([0, 31, 32, 63, 64]) == 3

    def test_get_block_per_counter_charges_every_index(self):
        mem = MemoryModel()
        array = PackedArray(256, bits=2, mem=mem)
        array.get_block([0, 1, 2, 0])  # duplicates still charge
        assert mem.on_chip.reads == 4

    def test_get_block_per_word_dedups_same_word(self):
        mem = MemoryModel(counter_charging=CounterCharging.PER_WORD)
        array = PackedArray(256, bits=2, mem=mem)
        array.get_block([0, 1, 31, 31])  # one 64-bit word
        assert mem.on_chip.reads == 1
        array.get_block([0, 32, 64])  # three words
        assert mem.on_chip.reads == 4

    def test_set_block_charging_both_modes(self):
        per_counter = MemoryModel()
        array = PackedArray(256, bits=2, mem=per_counter)
        array.set_block([0, 1, 33], 2)
        assert per_counter.on_chip.writes == 3

        per_word = MemoryModel(counter_charging=CounterCharging.PER_WORD)
        array = PackedArray(256, bits=2, mem=per_word)
        array.set_block([0, 1, 33], 2)
        assert per_word.on_chip.writes == 2


@pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")
class TestArrayKernels:
    """The NumPy block kernels return the same values and charge the same
    totals as the scalar block path, for every supported width."""

    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    @pytest.mark.parametrize(
        "charging", [CounterCharging.PER_COUNTER, CounterCharging.PER_WORD],
        ids=lambda c: c.name.lower())
    def test_get_block_array_matches_scalar(self, bits, charging):
        import numpy as np

        scalar_mem = MemoryModel(counter_charging=charging)
        array_mem = MemoryModel(counter_charging=charging)
        scalar = PackedArray(300, bits=bits, mem=scalar_mem)
        vectored = PackedArray(300, bits=bits, mem=array_mem)
        for index in range(0, 300, 3):
            scalar.poke(index, index % (scalar.max_value + 1))
            vectored.poke(index, index % (vectored.max_value + 1))
        indices = [0, 7, 7, 64, 65, 299, 128, 1]
        expected = scalar.get_block(indices)
        got = vectored.get_block_array(np.array(indices, dtype=np.int64))
        assert got.tolist() == expected
        assert scalar_mem.summary() == array_mem.summary()

    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_set_block_array_matches_scalar(self, bits):
        import numpy as np

        scalar_mem = MemoryModel(counter_charging=CounterCharging.PER_WORD)
        array_mem = MemoryModel(counter_charging=CounterCharging.PER_WORD)
        scalar = PackedArray(300, bits=bits, mem=scalar_mem)
        vectored = PackedArray(300, bits=bits, mem=array_mem)
        indices = [0, 5, 5, 64, 299]  # duplicate index: last write wins
        value = min(1, scalar.max_value)
        scalar.set_block(indices, value)
        vectored.set_block_array(np.array(indices, dtype=np.int64), value)
        assert bytes(scalar._data) == bytes(vectored._data)
        assert scalar_mem.summary() == array_mem.summary()

    def test_get_block_array_bounds_checked(self):
        import numpy as np

        array = PackedArray(16, bits=2)
        with pytest.raises(IndexError):
            array.get_block_array(np.array([0, 16], dtype=np.int64))
        with pytest.raises(IndexError):
            array.get_block_array(np.array([-1, 3], dtype=np.int64))
