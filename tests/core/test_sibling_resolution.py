"""White-box tests for sibling-copy location during overwrites.

When a redundant copy is overwritten, the victim's remaining copies must be
found so their counters can drop.  In READ mode this is resolved from
counter values alone when unambiguous; when another item coincidentally
shares the victim's counter value on one of its candidate buckets, the
implementation must read buckets off-chip to confirm.  These tests build
the exact ambiguous scenarios synthetically and check both the resolution
and its accounting.
"""

import pytest

from repro import McCuckoo
from repro.core.errors import InvariantViolationError
from repro.workloads import key_stream


def fresh_table(n_buckets=64, seed=920):
    return McCuckoo(n_buckets, d=3, seed=seed)


def place(table, key, buckets, value=None):
    """Synthetically store `key` with copies at `buckets` (counter = count)."""
    for bucket in buckets:
        assert bucket in table._candidates(key), "bucket must be a candidate"
        table._keys[bucket] = key
        table._values[bucket] = value
        table._counters.poke(bucket, len(buckets))


def find_overlapping_key(table, target_bucket, exclude_key, seed):
    """A key (≠ exclude_key) having `target_bucket` among its candidates."""
    stream = key_stream(seed=seed)
    for _ in range(500_000):
        key = next(stream)
        if key != exclude_key and target_bucket in table._candidates(key):
            return key
    raise RuntimeError("no overlapping key found")


class TestUnambiguousResolution:
    def test_v_equals_d_all_candidates_are_copies(self):
        table = fresh_table(seed=921)
        key = next(key_stream(seed=922))
        b0, b1, b2 = table._candidates(key)
        place(table, key, [b0, b1, b2])
        reads_before = table.mem.off_chip.reads
        siblings = table._decrement_siblings(key, b0, 3, 0)
        assert sorted(siblings) == sorted([b1, b2])
        assert table._counters.peek(b1) == 2
        assert table._counters.peek(b2) == 2
        assert table.mem.off_chip.reads == reads_before  # no reads needed

    def test_v2_single_match_no_read(self):
        table = fresh_table(seed=923)
        key = next(key_stream(seed=924))
        b0, b1, b2 = table._candidates(key)
        place(table, key, [b0, b1])  # b2 stays empty (counter 0)
        reads_before = table.mem.off_chip.reads
        siblings = table._decrement_siblings(key, b0, 2, 0)
        assert siblings == [b1]
        assert table._counters.peek(b1) == 1
        assert table.mem.off_chip.reads == reads_before

    def test_sole_copy_no_siblings(self):
        table = fresh_table(seed=925)
        key = next(key_stream(seed=926))
        b0 = table._candidates(key)[0]
        table._keys[b0] = key
        table._counters.poke(b0, 1)
        assert table._decrement_siblings(key, b0, 1, 0) == []


class TestAmbiguousResolution:
    def _ambiguous_setup(self, seed):
        """Victim B with copies at {b0, b1}; impostor C with counter 2 at
        B's third candidate b2.  Resolving siblings of B (excluding b0)
        sees two counter-2 candidates and must read to tell them apart."""
        table = fresh_table(seed=seed)
        victim = next(key_stream(seed=seed + 1))
        b0, b1, b2 = table._candidates(victim)
        place(table, victim, [b0, b1])
        impostor = find_overlapping_key(table, b2, victim, seed=seed + 2)
        other = [c for c in table._candidates(impostor) if c != b2]
        partner = next(c for c in other if table._counters.peek(c) == 0)
        place(table, impostor, [b2, partner])
        return table, victim, impostor, (b0, b1, b2)

    def test_correct_sibling_decremented(self):
        table, victim, impostor, (b0, b1, b2) = self._ambiguous_setup(927)
        siblings = table._decrement_siblings(victim, b0, 2, 0)
        assert siblings == [b1]
        assert table._counters.peek(b1) == 1
        assert table._counters.peek(b2) == 2, "impostor must be untouched"

    def test_disambiguation_charged_when_needed(self):
        table, victim, impostor, (b0, b1, b2) = self._ambiguous_setup(928)
        reads_before = table.mem.off_chip.reads
        table._decrement_siblings(victim, b0, 2, 0)
        extra = table.mem.off_chip.reads - reads_before
        # At most one read: either the first suspect confirms (1 read) or
        # elimination leaves a single possibility (also <= 1 read for d=3).
        assert extra <= 1

    def test_last_remaining_suspect_taken_without_read(self):
        """When (remaining suspects) == (copies still needed), the
        implementation must stop reading and take them all."""
        table, victim, impostor, (b0, b1, b2) = self._ambiguous_setup(929)
        # force iteration order so the impostor is examined first: swap the
        # positions by renaming — simpler: just verify total reads <= 1 and
        # the result is correct regardless of order
        siblings = table._decrement_siblings(victim, b0, 2, 0)
        assert siblings == [b1]

    def test_corrupted_counters_raise(self):
        table = fresh_table(seed=930)
        key = next(key_stream(seed=931))
        b0, b1, _ = table._candidates(key)
        place(table, key, [b0, b1])
        table._counters.poke(b1, 3)  # corrupt: sibling no longer matches
        with pytest.raises(InvariantViolationError):
            table._decrement_siblings(key, b0, 2, 0)


class TestMetadataModeResolution:
    def test_mask_names_siblings_exactly(self):
        from repro import SiblingTracking

        table = McCuckoo(64, d=3, seed=932,
                         sibling_tracking=SiblingTracking.METADATA)
        key = next(key_stream(seed=933))
        b0, b1, b2 = table._candidates(key)
        table.put(key)  # 3 copies, mask = all three positions
        mask = table._masks[b0]
        reads_before = table.mem.off_chip.reads
        siblings = table._decrement_siblings(key, b0, 3, mask)
        assert sorted(siblings) == sorted([b1, b2])
        assert table.mem.off_chip.reads == reads_before  # mask ⇒ no reads
        # and the survivors' masks were patched (off-chip writes charged)
        position0 = table._position_of(b0)
        for bucket in (b1, b2):
            assert not table._masks[bucket] & (1 << position0)
