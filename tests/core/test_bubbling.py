"""Bubbling-up insertion: high-load invariants, bit-identity, the frontier.

Three claims pin the tentpole down:

* tables driven with ``kick_policy="bubbling"`` to 0.95+ offered load keep
  every structural invariant and answer every lookup correctly, for d=3
  and d=4 across all deletion modes;
* the labeled-slot machinery is invisible when unused — a default table
  and an explicit ``RandomWalkPolicy`` table are bit-identical, so the
  policy hooks provably did not perturb the rng stream;
* on the single-copy d=4 baseline the labels move the first-failure
  frontier measurably past the random walk's.

Seeds derive from ``PYTEST_SEED`` so the whole file re-randomises with
the suite.
"""

import pytest

from repro.baselines import CuckooTable
from repro.core import (
    BlockedMcCuckoo,
    DeletionMode,
    FailurePolicy,
    McCuckoo,
    RandomWalkPolicy,
    check_mccuckoo,
)
from repro.core.errors import ConfigurationError
from repro.core.resize import ResizableMcCuckoo
from repro.core.sharded import ShardedMcCuckoo
from repro.workloads import distinct_keys, missing_keys, sample_keys
from tests.seeding import derive

MODES = (DeletionMode.DISABLED, DeletionMode.RESET, DeletionMode.TOMBSTONE)


@pytest.mark.parametrize("mode", MODES, ids=lambda m: m.name.lower())
@pytest.mark.parametrize("d", (3, 4))
class TestHighLoadInvariants:
    """Fill to 0.95+ offered load with bubbling; everything must stay sound."""

    def _filled(self, d, mode, seed):
        table = McCuckoo(400, d=d, maxloop=100, seed=seed,
                         kick_policy="bubbling", stash_buckets=64,
                         deletion_mode=mode)
        keys = distinct_keys(int(0.96 * table.capacity), seed=seed + 1)
        inserted = []
        for key in keys:
            if not table.put(key, key & 0xFFFF).failed:
                inserted.append(table._canonical(key))
        assert len(table) >= int(0.95 * table.capacity)
        return table, inserted

    def test_invariants_and_lookups_at_high_load(self, d, mode):
        table, inserted = self._filled(d, mode, seed=derive(5100 + d))
        check_mccuckoo(table)
        for key in sample_keys(inserted, 400, seed=derive(41)):
            outcome = table.lookup(key)
            assert outcome.found and outcome.value == key & 0xFFFF
        for key in missing_keys(200, set(inserted), seed=derive(42)):
            assert not table.lookup(key).found

    def test_deletion_churn_keeps_invariants(self, d, mode):
        if mode is DeletionMode.DISABLED:
            pytest.skip("deletion disabled")
        table, inserted = self._filled(d, mode, seed=derive(5200 + d))
        victims = sample_keys(inserted, len(inserted) // 10, seed=derive(43))
        for key in set(victims):
            assert table.delete(key).deleted
        check_mccuckoo(table)
        remaining = set(inserted) - set(victims)
        for key in sample_keys(sorted(remaining), 200, seed=derive(44)):
            assert table.lookup(key).found
        for key in set(victims):
            assert not table.lookup(key).found


class TestBitIdentity:
    """kick_policy=None must stay byte-for-byte the pre-bubbling default."""

    def test_mccuckoo_default_is_random_walk(self):
        seed = derive(5300)
        keys = distinct_keys(1000, seed=seed + 1)
        default = McCuckoo(400, d=3, seed=seed, stash_buckets=64)
        explicit = McCuckoo(400, d=3, seed=seed, stash_buckets=64,
                            kick_policy=RandomWalkPolicy())
        for key in keys:
            assert default.put(key) == explicit.put(key)
        assert bytes(default._counters._data) == bytes(explicit._counters._data)
        assert sorted(default.items()) == sorted(explicit.items())
        assert default.total_kicks == explicit.total_kicks

    def test_cuckoo_explicit_random_walk_matches_inline_path(self):
        seed = derive(5301)
        keys = distinct_keys(1100, seed=seed + 1)
        default = CuckooTable(400, d=3, maxloop=200, seed=seed,
                              on_failure=FailurePolicy.FAIL)
        explicit = CuckooTable(400, d=3, maxloop=200, seed=seed,
                               on_failure=FailurePolicy.FAIL,
                               kick_policy=RandomWalkPolicy())
        for key in keys:
            assert default.put(key) == explicit.put(key)
        assert sorted(default.items()) == sorted(explicit.items())

    def test_string_and_instance_coercion_agree(self):
        seed = derive(5302)
        keys = distinct_keys(900, seed=seed + 1)
        by_name = McCuckoo(300, d=3, seed=seed, kick_policy="bubbling",
                           stash_buckets=32)
        from repro.core import BubblingPolicy

        by_instance = McCuckoo(300, d=3, seed=seed,
                               kick_policy=BubblingPolicy(),
                               stash_buckets=32)
        for key in keys:
            assert by_name.put(key) == by_instance.put(key)
        assert sorted(by_name.items()) == sorted(by_instance.items())


class TestFrontier:
    def test_bubbling_moves_d4_first_failure_load(self):
        seed = derive(5400)

        def first_failure(policy):
            table = CuckooTable(2000, d=4, maxloop=80, seed=seed,
                                on_failure=FailurePolicy.FAIL,
                                kick_policy=policy)
            inserted = 0
            for key in distinct_keys(table.capacity, seed=seed + 7):
                if table.put(key).failed:
                    break
                inserted += 1
            return inserted / table.capacity

        walk = first_failure(None)
        bubbling = first_failure("bubbling")
        assert bubbling >= walk + 0.01, (walk, bubbling)
        assert bubbling >= 0.945, bubbling

    def test_blocked_table_accepts_policy_string(self):
        table = BlockedMcCuckoo(60, d=3, slots=3, seed=derive(5401),
                                kick_policy="bubbling", stash_buckets=16)
        keys = distinct_keys(int(table.capacity * 0.9), seed=derive(5402))
        for key in keys:
            table.put(key, key)
        for key in sample_keys(keys, 100, seed=derive(5403)):
            assert table.lookup(key).found


class TestConfigPlumbing:
    def test_resizable_rejects_policy_instances(self):
        with pytest.raises(ConfigurationError, match="registry name"):
            ResizableMcCuckoo(64, seed=derive(5500),
                              kick_policy=RandomWalkPolicy())

    def test_resizable_threads_policy_string_through_growth(self):
        table = ResizableMcCuckoo(32, seed=derive(5501),
                                  kick_policy="bubbling")
        keys = distinct_keys(600, seed=derive(5502))
        for key in keys:
            table.put(key, key)
        assert table.generations > 0
        assert type(table.active_table._policy).name == "bubbling"
        for key in sample_keys(keys, 100, seed=derive(5503)):
            assert table.lookup(key).found

    def test_sharded_rejects_policy_instances(self):
        with pytest.raises(ConfigurationError):
            ShardedMcCuckoo(4, 64, seed=derive(5504),
                            kick_policy=RandomWalkPolicy())

    def test_sharded_accepts_policy_name(self):
        table = ShardedMcCuckoo(4, 64, seed=derive(5505),
                                kick_policy="bubbling")
        keys = distinct_keys(400, seed=derive(5506))
        for key in keys:
            table.put(key, key)
        for key in sample_keys(keys, 100, seed=derive(5507)):
            assert table.lookup(key).found
