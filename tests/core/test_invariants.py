"""The invariant checkers must catch deliberately injected corruption."""

import pytest

from repro import BlockedMcCuckoo, McCuckoo, SiblingTracking
from repro.core import check_blocked, check_mccuckoo
from repro.core.errors import InvariantViolationError
from repro.workloads import distinct_keys


def healthy_mccuckoo(seed=170, **kwargs):
    table = McCuckoo(64, d=3, seed=seed, **kwargs)
    for key in distinct_keys(100, seed=seed + 1):
        table.put(key)
    check_mccuckoo(table)  # sanity: healthy before corruption
    return table


def healthy_blocked(seed=180):
    table = BlockedMcCuckoo(24, d=3, slots=3, seed=seed)
    for key in distinct_keys(120, seed=seed + 1):
        table.put(key)
    check_blocked(table)
    return table


class TestMcCuckooChecker:
    def test_detects_counter_without_entry(self):
        table = healthy_mccuckoo()
        empty = next(
            b for b in range(table.capacity) if table._counters.peek(b) == 0
        )
        table._keys[empty] = None
        table._counters.poke(empty, 1)
        with pytest.raises(InvariantViolationError, match="no entry"):
            check_mccuckoo(table)

    def test_detects_wrong_copy_count(self):
        table = healthy_mccuckoo(seed=171)
        bucket = next(
            b for b in range(table.capacity) if table._counters.peek(b) == 2
        )
        table._counters.poke(bucket, 3)
        with pytest.raises(InvariantViolationError):
            check_mccuckoo(table)

    def test_detects_misplaced_key(self):
        table = healthy_mccuckoo(seed=172)
        occupied = [b for b in range(table.capacity) if table._counters.peek(b) > 0]
        bucket = occupied[0]
        table._keys[bucket] = table._keys[bucket] ^ 0x12345  # not a candidate here
        with pytest.raises(InvariantViolationError):
            check_mccuckoo(table)

    def test_detects_value_divergence(self):
        table = healthy_mccuckoo(seed=173)
        key = next(
            key for key, _ in table.items() if len(table.copies_of(key)) >= 2
        )
        bucket = table.copies_of(key)[0]
        table._values[bucket] = "diverged"
        with pytest.raises(InvariantViolationError, match="disagree"):
            check_mccuckoo(table)

    def test_detects_stale_mask(self):
        table = healthy_mccuckoo(
            seed=174, sibling_tracking=SiblingTracking.METADATA
        )
        occupied = next(
            b for b in range(table.capacity) if table._counters.peek(b) > 0
        )
        table._masks[occupied] = 0
        with pytest.raises(InvariantViolationError, match="bitmap"):
            check_mccuckoo(table)

    def test_detects_item_count_drift(self):
        table = healthy_mccuckoo(seed=175)
        table._n_main += 1
        with pytest.raises(InvariantViolationError, match="count"):
            check_mccuckoo(table)

    def test_detects_stash_flag_corruption(self):
        table = McCuckoo(8, d=3, seed=176, maxloop=0)
        keys = distinct_keys(40, seed=177)
        for key in keys:
            table.put(key)
        assert len(table.stash) > 0
        stashed_key = next(iter(table.stash.items()))[0]
        flag_bucket = table._candidates(stashed_key)[0]
        table._flags.clear_bit(flag_bucket)
        with pytest.raises(InvariantViolationError, match="flag"):
            check_mccuckoo(table)


class TestBlockedChecker:
    def test_detects_counter_without_entry(self):
        table = healthy_blocked()
        empty = next(
            i for i in range(table.capacity) if table._counters.peek(i) == 0
        )
        table._keys[empty] = None
        table._counters.poke(empty, 1)
        with pytest.raises(InvariantViolationError):
            check_blocked(table)

    def test_detects_stale_slotmap(self):
        table = healthy_blocked(seed=181)
        index = next(
            i for i in range(table.capacity) if table._counters.peek(i) > 0
        )
        table._slotmaps[index] = (None,) * table.d
        with pytest.raises(InvariantViolationError, match="metadata"):
            check_blocked(table)

    def test_detects_wrong_copy_count(self):
        table = healthy_blocked(seed=182)
        index = next(
            i for i in range(table.capacity) if table._counters.peek(i) == 1
        )
        table._counters.poke(index, 2)
        with pytest.raises(InvariantViolationError):
            check_blocked(table)

    def test_detects_item_count_drift(self):
        table = healthy_blocked(seed=183)
        table._n_main -= 1
        with pytest.raises(InvariantViolationError, match="count"):
            check_blocked(table)
