"""Snapshot/restore round-trips for the multi-copy tables."""

import pickle

import pytest

from repro import BlockedMcCuckoo, CuckooTable, DeletionMode, McCuckoo, SiblingTracking
from repro.core import check_blocked, check_mccuckoo
from repro.core.errors import ConfigurationError
from repro.core.snapshot import (
    load,
    restore_blocked,
    restore_mccuckoo,
    save,
    snapshot_blocked,
    snapshot_mccuckoo,
)
from repro.workloads import distinct_keys, key_stream


def busy_mccuckoo(seed=600, **kwargs):
    table = McCuckoo(48, d=3, seed=seed, maxloop=20,
                     deletion_mode=DeletionMode.RESET, **kwargs)
    keys = distinct_keys(130, seed=seed + 1)
    for key in keys:
        table.put(key, key % 31)
    for victim in keys[::5]:
        table.delete(victim)
    return table, [k for i, k in enumerate(keys) if i % 5 != 0]


def busy_blocked(seed=610):
    table = BlockedMcCuckoo(16, d=3, slots=3, seed=seed, maxloop=20,
                            deletion_mode=DeletionMode.RESET)
    keys = distinct_keys(130, seed=seed + 1)
    for key in keys:
        table.put(key, -key)
    return table, keys


class TestMcCuckooRoundTrip:
    def test_items_preserved(self):
        table, live = busy_mccuckoo()
        restored = restore_mccuckoo(snapshot_mccuckoo(table))
        for key in live:
            outcome = restored.lookup(key)
            assert outcome.found and outcome.value == key % 31
        assert len(restored) == len(table)

    def test_layout_identical(self):
        table, _ = busy_mccuckoo(seed=601)
        restored = restore_mccuckoo(snapshot_mccuckoo(table))
        assert restored._keys == table._keys
        assert bytes(restored._counters._data) == bytes(table._counters._data)
        assert bytes(restored._flags._data) == bytes(table._flags._data)

    def test_invariants_checked_on_restore(self):
        table, _ = busy_mccuckoo(seed=602)
        data = snapshot_mccuckoo(table)
        data["n_main"] += 1  # corrupt
        with pytest.raises(Exception):
            restore_mccuckoo(data)

    def test_rng_state_resumes_identically(self):
        table, _ = busy_mccuckoo(seed=603)
        twin = restore_mccuckoo(snapshot_mccuckoo(table))
        keys = distinct_keys(60, seed=700)
        for key in keys:
            a = table.put(key)
            b = twin.put(key)
            assert (a.status, a.kicks, a.copies) == (b.status, b.kicks, b.copies)
        assert table._keys == twin._keys

    def test_events_preserved(self):
        table, _ = busy_mccuckoo(seed=604)
        restored = restore_mccuckoo(snapshot_mccuckoo(table))
        assert restored.events.first_collision_items == table.events.first_collision_items

    def test_stash_contents_preserved(self):
        table = McCuckoo(8, d=3, seed=605, maxloop=0,
                         deletion_mode=DeletionMode.RESET)
        keys = key_stream(seed=606)
        while len(table.stash) < 3:
            table.put(next(keys))
        restored = restore_mccuckoo(snapshot_mccuckoo(table))
        assert len(restored.stash) == len(table.stash)
        for key, _ in table.stash.items():
            assert restored.lookup(key).found

    def test_metadata_mode_masks_preserved(self):
        table, live = busy_mccuckoo(
            seed=607, sibling_tracking=SiblingTracking.METADATA
        )
        restored = restore_mccuckoo(snapshot_mccuckoo(table))
        assert restored._masks == table._masks
        check_mccuckoo(restored)

    def test_tombstone_mode(self):
        table = McCuckoo(32, d=3, seed=608, deletion_mode=DeletionMode.TOMBSTONE)
        keys = distinct_keys(60, seed=609)
        for key in keys:
            table.put(key)
        table.delete(keys[0])
        restored = restore_mccuckoo(snapshot_mccuckoo(table))
        assert not restored.lookup(keys[0]).found
        assert restored.lookup(keys[1]).found

    def test_kind_mismatch_rejected(self):
        table, _ = busy_blocked()
        with pytest.raises(ConfigurationError):
            restore_mccuckoo(snapshot_blocked(table))

    def test_version_mismatch_rejected(self):
        table, _ = busy_mccuckoo(seed=611)
        data = snapshot_mccuckoo(table)
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            restore_mccuckoo(data)


class TestBlockedRoundTrip:
    def test_items_preserved(self):
        table, keys = busy_blocked()
        restored = restore_blocked(snapshot_blocked(table))
        for key in keys:
            outcome = restored.lookup(key)
            assert outcome.found and outcome.value == -key
        check_blocked(restored)

    def test_slotmaps_preserved(self):
        table, _ = busy_blocked(seed=612)
        restored = restore_blocked(snapshot_blocked(table))
        assert restored._slotmaps == table._slotmaps

    def test_resume_identical(self):
        table, _ = busy_blocked(seed=613)
        twin = restore_blocked(snapshot_blocked(table))
        for key in distinct_keys(40, seed=614):
            table.put(key)
            twin.put(key)
        assert table._keys == twin._keys


class TestFileRoundTrip:
    def test_save_load_mccuckoo(self, tmp_path):
        table, live = busy_mccuckoo(seed=615)
        path = str(tmp_path / "table.snap")
        save(table, path)
        restored = load(path)
        assert isinstance(restored, McCuckoo)
        for key in live[:20]:
            assert restored.lookup(key).found

    def test_save_load_blocked(self, tmp_path):
        table, keys = busy_blocked(seed=616)
        path = str(tmp_path / "blocked.snap")
        save(table, path)
        restored = load(path)
        assert isinstance(restored, BlockedMcCuckoo)
        assert len(restored) == len(table)

    def test_save_rejects_other_tables(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save(CuckooTable(8), str(tmp_path / "x.snap"))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.snap"
        with open(path, "wb") as handle:
            pickle.dump([1, 2, 3], handle)
        with pytest.raises(ConfigurationError):
            load(str(path))
