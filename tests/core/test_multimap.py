"""Tests for the multiset-by-indirection layer (§III.H)."""

import pytest

from repro import DeletionMode, McCuckoo, McCuckooMultiMap


@pytest.fixture
def mmap():
    return McCuckooMultiMap(
        lambda: McCuckoo(64, d=3, seed=160, deletion_mode=DeletionMode.RESET)
    )


class TestMultiMap:
    def test_add_and_get_single(self, mmap):
        mmap.add("word", 1)
        assert mmap.get("word") == [1]

    def test_multiple_values_accumulate(self, mmap):
        for doc in (1, 2, 3):
            mmap.add("word", doc)
        assert mmap.get("word") == [1, 2, 3]
        assert mmap.count("word") == 3

    def test_duplicate_values_allowed(self, mmap):
        mmap.add("k", 5)
        mmap.add("k", 5)
        assert mmap.get("k") == [5, 5]

    def test_index_stores_one_entry_per_key(self, mmap):
        for doc in range(10):
            mmap.add("hot", doc)
        assert mmap.distinct_keys() == 1
        assert len(mmap) == 10

    def test_copies_share_identical_handle(self, mmap):
        """The paper's constraint: redundant copies must stay identical, so
        the multimap stores one handle per key in every copy."""
        mmap.add("k", 1)
        index = mmap.index
        key = index._canonical("k")
        handles = {index._values[b] for b in index.copies_of(key)}
        assert len(handles) == 1

    def test_get_missing_is_empty(self, mmap):
        assert mmap.get("nope") == []
        assert mmap.count("nope") == 0

    def test_remove_value(self, mmap):
        mmap.add("k", 1)
        mmap.add("k", 2)
        assert mmap.remove_value("k", 1)
        assert mmap.get("k") == [2]

    def test_remove_missing_value(self, mmap):
        mmap.add("k", 1)
        assert not mmap.remove_value("k", 99)
        assert not mmap.remove_value("absent", 1)

    def test_last_value_removal_deletes_key(self, mmap):
        mmap.add("k", 1)
        assert mmap.remove_value("k", 1)
        assert "k" not in mmap
        assert mmap.distinct_keys() == 0

    def test_remove_all(self, mmap):
        for doc in range(4):
            mmap.add("k", doc)
        assert mmap.remove_all("k") == 4
        assert "k" not in mmap
        assert mmap.remove_all("k") == 0

    def test_get_returns_copy(self, mmap):
        mmap.add("k", 1)
        values = mmap.get("k")
        values.append(99)
        assert mmap.get("k") == [1]

    def test_items_iterates_postings(self, mmap):
        mmap.add("a", 1)
        mmap.add("b", 2)
        mmap.add("b", 3)
        postings = {key: values for key, values in mmap.items()}
        assert len(postings) == 2
        assert sorted(len(v) for v in postings.values()) == [1, 2]

    def test_many_keys(self, mmap):
        for word in range(100):
            for doc in range(word % 4 + 1):
                mmap.add(word, doc)
        assert mmap.distinct_keys() == 100
        for word in range(100):
            assert mmap.count(word) == word % 4 + 1
