"""McCuckoo lookup: the paper's principles 1-3 (Theorem 3) and accounting."""

import pytest

from repro import DeletionMode, McCuckoo
from repro.core import check_mccuckoo
from repro.workloads import distinct_keys, missing_keys


def filled_table(n_buckets=200, load=0.7, seed=40, **kwargs):
    table = McCuckoo(n_buckets, d=3, seed=seed, **kwargs)
    keys = distinct_keys(int(table.capacity * load), seed=seed + 1)
    for key in keys:
        table.put(key, value=key % 1000)
    return table, keys


class TestBasicLookup:
    def test_finds_every_inserted_key_with_value(self):
        table, keys = filled_table()
        for key in keys:
            outcome = table.lookup(key)
            assert outcome.found
            assert outcome.value == key % 1000

    def test_missing_keys_not_found(self):
        table, keys = filled_table()
        for key in missing_keys(300, set(keys), seed=42):
            assert not table.lookup(key).found

    def test_get_with_default(self):
        table, keys = filled_table()
        assert table.get(keys[0]) == keys[0] % 1000
        assert table.get(missing_keys(1, set(keys), seed=43)[0], "dflt") == "dflt"

    def test_contains(self):
        table, keys = filled_table()
        assert keys[0] in table
        assert missing_keys(1, set(keys), seed=44)[0] not in table

    def test_empty_table_lookup(self):
        table = McCuckoo(32, d=3)
        outcome = table.lookup(123)
        assert not outcome.found
        assert outcome.buckets_read == 0


class TestPrinciple1_ZeroCounterScreen:
    def test_zero_counter_answers_without_offchip_access(self):
        table, keys = filled_table(load=0.3)
        screened = 0
        for key in missing_keys(200, set(keys), seed=45):
            cands = table._candidates(key)
            has_zero = any(table._counters.peek(b) == 0 for b in cands)
            before = table.mem.off_chip.reads
            outcome = table.lookup(key)
            if has_zero:
                assert not outcome.found
                assert table.mem.off_chip.reads == before
                screened += 1
        assert screened > 100

    def test_rule_disabled_in_reset_mode(self):
        """After a RESET-mode deletion, a zero counter is a scar, not proof
        of absence — lookups must keep probing."""
        table = McCuckoo(64, d=3, seed=46, deletion_mode=DeletionMode.RESET)
        keys = distinct_keys(60, seed=47)
        for key in keys:
            table.put(key)
        # delete a neighbour that shares a bucket with a surviving key
        survivor, victim = None, None
        for a in keys:
            for b in keys:
                if a != b and set(table.copies_of(a)) and (
                    set(table._candidates(a)) & set(table.copies_of(b))
                ):
                    survivor, victim = a, b
                    break
            if survivor:
                break
        assert survivor is not None
        table.delete(victim)
        assert table.lookup(survivor).found, "RESET deletion caused false negative"


class TestPrinciple2_SkipSmallPartitions:
    def test_partition_smaller_than_value_skipped(self):
        """A single candidate with counter 3 cannot hold the queried item
        (3 copies cannot fit in one bucket) and must not be read."""
        table = McCuckoo(128, d=3, seed=48)
        first = distinct_keys(1, seed=49)[0]
        table.put(first)  # 3 copies
        triple_buckets = set(table.copies_of(first))
        for key in missing_keys(5000, {first}, seed=50):
            cands = table._candidates(key)
            vals = [table._counters.peek(b) for b in cands]
            overlap = [b for b in cands if b in triple_buckets]
            # want: exactly one candidate on a 3-bucket, others empty
            if len(overlap) == 1 and sorted(vals) == [0, 0, 3]:
                before = table.mem.off_chip.reads
                outcome = table.lookup(key)
                assert not outcome.found
                assert table.mem.off_chip.reads == before  # nothing read
                return
        pytest.fail("no suitable probe key found")


class TestPrinciple3_ProbeBudget:
    def test_at_most_s_minus_v_plus_1_probes(self):
        """For every failed partition the number of buckets read is at most
        S - V + 1 (Theorem 3's budget)."""
        table, keys = filled_table(load=0.8, seed=51)
        for key in missing_keys(500, set(keys), seed=52):
            cands = table._candidates(key)
            vals = [table._counters.peek(b) for b in cands]
            groups = {}
            for bucket, v in zip(cands, vals):
                if v:
                    groups.setdefault(v, []).append(bucket)
            budget = sum(
                len(members) - v + 1
                for v, members in groups.items()
                if len(members) >= v
            )
            outcome = table.lookup(key)
            assert outcome.buckets_read <= budget

    def test_double_copy_found_within_two_probes(self):
        """An item with 2 copies among candidates of equal value 2 is found
        in at most S-V+1 = 2 probes."""
        table = McCuckoo(256, d=3, seed=53)
        keys = distinct_keys(int(table.capacity * 0.5), seed=54)
        for key in keys:
            table.put(key)
        checked = 0
        for key in keys:
            copies = table.copies_of(key)
            if len(copies) == 2:
                outcome = table.lookup(key)
                assert outcome.found
                assert outcome.buckets_read <= 2
                checked += 1
                if checked >= 50:
                    break
        assert checked > 0

    def test_triple_copy_found_in_one_probe(self):
        """All three candidates share counter 3 -> any single probe hits."""
        table = McCuckoo(256, d=3, seed=55)
        first = distinct_keys(1, seed=56)[0]
        table.put(first)
        outcome = table.lookup(first)
        assert outcome.found
        assert outcome.buckets_read == 1


class TestLookupAccountingShape:
    def test_mccuckoo_reads_fewer_buckets_than_d(self):
        table, keys = filled_table(load=0.6, seed=57)
        total_reads = 0
        for key in keys[:400]:
            total_reads += table.lookup(key).buckets_read
        assert total_reads / 400 < 2.0  # d=3 would be the blind bound

    def test_missing_lookup_cost_increases_with_load(self):
        low, low_keys = filled_table(load=0.3, seed=58)
        high, high_keys = filled_table(load=0.85, seed=58)

        def avg_missing(table, keys):
            absent = missing_keys(300, set(keys), seed=59)
            before = table.mem.off_chip.reads
            for key in absent:
                table.lookup(key)
            return (table.mem.off_chip.reads - before) / len(absent)

        assert avg_missing(low, low_keys) < avg_missing(high, high_keys)

    def test_lookup_mutates_nothing(self):
        table, keys = filled_table(load=0.7, seed=60)
        check_mccuckoo(table)
        histogram_before = table.counter_histogram()
        for key in keys[:100]:
            table.lookup(key)
        for key in missing_keys(100, set(keys), seed=61):
            table.lookup(key)
        assert table.counter_histogram() == histogram_before
        check_mccuckoo(table)
