"""Tests for the shared HashTable interface behaviours."""

import pytest

from repro import McCuckoo
from repro.core.interface import HashTable
from repro.core.results import DeleteOutcome, InsertOutcome, InsertStatus, LookupOutcome
from repro.workloads import key_stream


class _MinimalTable(HashTable):
    """Smallest possible HashTable: a dict in disguise."""

    name = "minimal"

    def __init__(self):
        super().__init__()
        self._data = {}

    def put(self, key, value=None):
        self._data[self._canonical(key)] = value
        return InsertOutcome(InsertStatus.STORED, copies=1)

    def lookup(self, key):
        k = self._canonical(key)
        if k in self._data:
            return LookupOutcome(found=True, value=self._data[k])
        return LookupOutcome(found=False)

    def delete(self, key):
        return DeleteOutcome(deleted=self._data.pop(self._canonical(key), None) is not None)

    @property
    def capacity(self):
        return 100

    def __len__(self):
        return len(self._data)

    def items(self):
        return iter(self._data.items())


class TestDefaults:
    def test_get_and_contains(self):
        table = _MinimalTable()
        table.put("k", 1)
        assert table.get("k") == 1
        assert table.get("missing", 9) == 9
        assert "k" in table
        assert "missing" not in table

    def test_load_ratio(self):
        table = _MinimalTable()
        for i in range(25):
            table.put(i)
        assert table.load_ratio == 0.25

    def test_try_update_not_implemented_by_default(self):
        with pytest.raises(NotImplementedError):
            _MinimalTable().try_update("k", 1)

    def test_upsert_falls_back_to_put(self):
        """A table without try_update support propagates the error rather
        than silently double-inserting."""
        with pytest.raises(NotImplementedError):
            _MinimalTable().upsert("k", 1)

    def test_string_and_bytes_keys_accepted(self):
        table = McCuckoo(64, d=3, seed=500)
        table.put("string-key", 1)
        table.put(b"bytes-key", 2)
        assert table.get("string-key") == 1
        assert table.get(b"bytes-key") == 2
        assert table.get("absent") is None

    def test_mem_created_when_not_supplied(self):
        table = _MinimalTable()
        assert table.mem is not None


class TestFillTo:
    def test_reaches_target(self):
        table = McCuckoo(100, d=3, seed=501)
        inserted = table.fill_to(0.5, key_stream(seed=502))
        assert len(table) == 150
        assert inserted == 150

    def test_rejects_bad_load(self):
        table = McCuckoo(10, d=3)
        with pytest.raises(ValueError):
            table.fill_to(1.5, key_stream())
        with pytest.raises(ValueError):
            table.fill_to(-0.1, key_stream())

    def test_stops_on_exhausted_iterator(self):
        table = McCuckoo(100, d=3, seed=503)
        inserted = table.fill_to(0.9, iter(range(10)))
        assert inserted == 10
        assert len(table) == 10
