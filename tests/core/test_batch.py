"""AMAC-style batched lookup pipeline tests."""

import pytest

from repro import BCHT, CuckooTable, McCuckoo
from repro.core.batch import batched_lookup, serial_epochs
from repro.workloads import distinct_keys, missing_keys, sample_keys


def filled_pair(load=0.7, n_buckets=256, seed=800):
    mccuckoo = McCuckoo(n_buckets, d=3, seed=seed)
    cuckoo = CuckooTable(n_buckets, d=3, seed=seed)
    keys = distinct_keys(int(mccuckoo.capacity * load), seed=seed + 1)
    for key in keys:
        mccuckoo.put(key, key % 101)
        cuckoo.put(key, key % 101)
    return mccuckoo, cuckoo, keys


class TestCorrectness:
    def test_results_match_serial_lookup(self):
        table, _, keys = filled_pair()
        probes = sample_keys(keys, 100, seed=801) + missing_keys(
            100, set(keys), seed=802
        )
        batch = batched_lookup(table, probes, depth=8)
        for probe, outcome in zip(probes, batch.outcomes):
            serial = table.lookup(probe)
            assert outcome.found == serial.found
            if outcome.found:
                assert outcome.value == serial.value

    def test_outcomes_in_input_order(self):
        table, _, keys = filled_pair(seed=803)
        probes = sample_keys(keys, 50, seed=804)
        batch = batched_lookup(table, probes, depth=4)
        assert len(batch.outcomes) == 50
        for probe, outcome in zip(probes, batch.outcomes):
            assert outcome.found
            assert outcome.value == probe % 101

    def test_empty_batch(self):
        table, _, _ = filled_pair(seed=805)
        batch = batched_lookup(table, [], depth=4)
        assert batch.outcomes == []
        assert batch.epochs == 0

    def test_depth_validation(self):
        table, _, keys = filled_pair(seed=806)
        with pytest.raises(ValueError):
            batched_lookup(table, keys[:5], depth=0)

    def test_requires_stepwise_lookup(self):
        table = BCHT(16)
        with pytest.raises(TypeError):
            batched_lookup(table, [1, 2, 3])


class TestLatencyHiding:
    def test_deeper_pipelines_fewer_epochs(self):
        table, _, keys = filled_pair(seed=807)
        probes = sample_keys(keys, 300, seed=808)
        shallow = batched_lookup(table, probes, depth=1)
        deep = batched_lookup(table, probes, depth=8)
        assert deep.epochs < shallow.epochs
        assert deep.total_steps == shallow.total_steps  # same work, overlapped

    def test_depth1_equals_serial(self):
        table, _, keys = filled_pair(seed=809)
        probes = sample_keys(keys, 120, seed=810)
        batch = batched_lookup(table, probes, depth=1)
        assert batch.epochs == serial_epochs(table, probes)

    def test_overlap_factor_bounded_by_depth(self):
        table, _, keys = filled_pair(seed=811)
        probes = sample_keys(keys, 200, seed=812)
        for depth in (2, 4, 8):
            batch = batched_lookup(table, probes, depth=depth)
            assert 1.0 <= batch.overlap_factor <= depth

    def test_onchip_answers_consume_no_epochs(self):
        """McCuckoo missing lookups screened by counters never enter the
        pipeline at all: the batch completes in ~zero epochs."""
        table = McCuckoo(256, d=3, seed=813)
        keys = distinct_keys(int(table.capacity * 0.2), seed=814)
        for key in keys:
            table.put(key)
        absent = missing_keys(200, set(keys), seed=815)
        batch = batched_lookup(table, absent, depth=8)
        assert batch.epochs < 20
        assert batch.hits == 0

    def test_composition_mccuckoo_plus_amac_beats_either(self):
        """Epochs(McCuckoo + AMAC) < Epochs(Cuckoo + AMAC) — the paper's
        'orthogonal techniques compose' claim."""
        mccuckoo, cuckoo, keys = filled_pair(load=0.6, seed=816)
        probes = sample_keys(keys, 150, seed=817) + missing_keys(
            150, set(keys), seed=818
        )
        mc_batch = batched_lookup(mccuckoo, probes, depth=8)
        cu_batch = batched_lookup(cuckoo, probes, depth=8)
        assert mc_batch.epochs < cu_batch.epochs
        assert mc_batch.hits == cu_batch.hits

    def test_baseline_cuckoo_also_pipelines(self):
        _, cuckoo, keys = filled_pair(seed=819)
        probes = sample_keys(keys, 200, seed=820)
        deep = batched_lookup(cuckoo, probes, depth=8)
        shallow = batched_lookup(cuckoo, probes, depth=1)
        assert deep.epochs < shallow.epochs
        assert deep.overlap_factor > 2.0
