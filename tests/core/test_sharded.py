"""Sharded multi-writer wrapper tests."""

import pytest

from repro import ConcurrentMcCuckoo, DeletionMode
from repro.core import check_mccuckoo
from repro.core.errors import ConfigurationError
from repro.core.sharded import (
    RoutingTable,
    ShardedMcCuckoo,
    ShardRouter,
    shards_of_worker,
    worker_of_shard,
)
from repro.workloads import TraceGenerator, distinct_keys, missing_keys, replay


def table(n_shards=4, n_buckets=32, **kwargs):
    kwargs.setdefault("deletion_mode", DeletionMode.RESET)
    return ShardedMcCuckoo(n_shards, n_buckets, seed=940, maxloop=100, **kwargs)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ShardedMcCuckoo(0, 8)
        with pytest.raises(ConfigurationError):
            ShardedMcCuckoo(4, 0)

    def test_capacity_sums_shards(self):
        t = table(n_shards=4, n_buckets=32)
        assert t.capacity == 4 * 3 * 32

    def test_shards_have_distinct_seeds(self):
        t = table()
        hashers = {shard._functions[0].hash64(123) for shard in t.shards}
        assert len(hashers) == t.n_shards


class TestShardRouter:
    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)

    def test_deterministic_and_in_range(self):
        router = ShardRouter(8, seed=21)
        for key in distinct_keys(300, seed=22):
            shard = router.shard_of(key)
            assert 0 <= shard < 8
            assert shard == router.shard_of(key)


class TestRouting:
    def test_shard_index_stable(self):
        t = table()
        assert t.shard_index(42) == t.shard_index(42)

    def test_routing_stable_across_instances_same_seed(self):
        """Two tables built with the same seed agree on every key's owner
        — routing must be a pure function of (n_shards, seed)."""
        a = table(n_shards=8, n_buckets=16)
        b = ShardedMcCuckoo(8, 64, seed=940, d=2,
                            deletion_mode=DeletionMode.RESET)
        for key in distinct_keys(300, seed=948):
            assert a.shard_index(key) == b.shard_index(key)

    def test_routing_differs_across_seeds(self):
        a = ShardedMcCuckoo(8, 32, seed=1, deletion_mode=DeletionMode.RESET)
        b = ShardedMcCuckoo(8, 32, seed=2, deletion_mode=DeletionMode.RESET)
        keys = distinct_keys(300, seed=949)
        moved = sum(a.shard_index(k) != b.shard_index(k) for k in keys)
        assert moved > len(keys) // 2  # ~7/8 expected to move

    def test_router_matches_facade(self):
        t = table(n_shards=4)
        router = ShardRouter(4, seed=940)
        for key in distinct_keys(100, seed=950):
            assert t.shard_index(key) == router.shard_of(key)

    def test_operations_hit_owning_shard_only(self):
        t = table()
        key = 777
        owner = t.shard_for(key)
        t.put(key, "v")
        assert len(owner) == 1
        assert sum(len(s) for s in t.shards if s is not owner) == 0

    def test_roundtrip_across_shards(self):
        t = table()
        keys = distinct_keys(250, seed=941)
        for key in keys:
            t.put(key, key % 13)
        assert len(t) == 250
        for key in keys:
            outcome = t.lookup(key)
            assert outcome.found and outcome.value == key % 13

    def test_delete_and_update(self):
        t = table()
        t.put(1, "a")
        assert t.upsert(1, "b").status.value == "updated"
        assert t.get(1) == "b"
        assert t.delete(1).deleted
        assert 1 not in t

    def test_missing_lookups(self):
        t = table()
        keys = distinct_keys(100, seed=942)
        for key in keys:
            t.put(key)
        for key in missing_keys(100, set(keys), seed=943):
            assert not t.lookup(key).found

    def test_items_spans_all_shards(self):
        t = table()
        keys = distinct_keys(120, seed=944)
        for key in keys:
            t.put(key)
        assert len(dict(t.items())) == 120


class TestBalance:
    def test_shards_roughly_balanced(self):
        t = table(n_shards=8, n_buckets=64)
        for key in distinct_keys(int(t.capacity * 0.5), seed=945):
            t.put(key)
        assert t.imbalance() < 1.3

    def test_shard_loads_reported(self):
        t = table(n_shards=4)
        assert t.shard_loads() == [0.0] * 4

    def test_imbalance_on_empty_table_is_one(self):
        assert table(n_shards=4).imbalance() == 1.0

    def test_imbalance_on_skewed_table(self):
        """Keys filtered onto a single shard drive max/mean to n_shards."""
        t = table(n_shards=4, n_buckets=64)
        stream = iter(distinct_keys(4000, seed=951))
        placed = 0
        for key in stream:
            if t.shard_index(key) == 0:
                t.put(key)
                placed += 1
                if placed == 50:
                    break
        assert placed == 50
        assert t.imbalance() == pytest.approx(4.0)

    def test_stash_population_starts_empty(self):
        assert table(n_shards=4).stash_population() == 0


class TestAccountingIsolation:
    def test_shared_accounting_funnels_to_one_model(self):
        t = table(n_shards=4, shared_accounting=True)
        for key in distinct_keys(60, seed=952):
            t.put(key)
        assert all(shard.mem is t.mem for shard in t.shards)
        assert t.mem.off_chip.writes > 0

    def test_independent_accounting_keeps_models_separate(self):
        t = table(n_shards=4, shared_accounting=False)
        models = [shard.mem for shard in t.shards]
        assert len({id(model) for model in models}) == 4
        assert all(model is not t.mem for model in models)

        key = distinct_keys(1, seed=953)[0]
        owner = t.shard_index(key)
        t.put(key, "v")
        t.lookup(key)
        assert t.mem.off_chip.writes == 0  # facade model untouched
        assert models[owner].off_chip.writes > 0
        for index, model in enumerate(models):
            if index != owner:
                assert model.off_chip.reads + model.off_chip.writes == 0


class TestCorrectness:
    def test_trace_replay_clean(self):
        t = table(n_shards=4, n_buckets=48)
        stats = replay(t, iter(TraceGenerator(1500, seed=946)))
        assert stats.false_negatives == 0
        assert stats.false_positives == 0
        for shard in t.shards:
            check_mccuckoo(shard)

    def test_parallel_writers_on_distinct_shards(self):
        """Two concurrent writers working different shards interleave their
        step sequences with no cross-effects — sharding isolates them."""
        t = table(n_shards=2, n_buckets=48)
        writers = [ConcurrentMcCuckoo(shard) for shard in t.shards]
        keys = distinct_keys(400, seed=947)
        per_shard = {0: [], 1: []}
        for key in keys:
            per_shard[t.shard_index(key)].append(key)
        pending = {0: list(per_shard[0]), 1: list(per_shard[1])}
        inserted = []
        # round-robin: one step of writer A, one step of writer B
        active = {0: None, 1: None}
        while any(pending.values()) or any(active.values()):
            for shard_id in (0, 1):
                if active[shard_id] is None and pending[shard_id]:
                    key = pending[shard_id].pop()
                    active[shard_id] = (key, writers[shard_id].insert_stepwise(key))
                if active[shard_id] is not None:
                    key, stepper = active[shard_id]
                    try:
                        next(stepper)
                    except StopIteration:
                        inserted.append(key)
                        active[shard_id] = None
        assert len(inserted) == len(keys)
        for key in keys:
            assert t.lookup(key).found
        for shard in t.shards:
            check_mccuckoo(shard)


class TestWorkerAssignment:
    """shard → worker-process routing used by the multi-process server."""

    def test_round_robin_assignment(self):
        assert [worker_of_shard(shard, 3) for shard in range(7)] == [
            0, 1, 2, 0, 1, 2, 0
        ]

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ConfigurationError):
            worker_of_shard(0, 0)
        with pytest.raises(ConfigurationError):
            shards_of_worker(0, 4, 0)

    def test_rejects_out_of_range_worker(self):
        with pytest.raises(ConfigurationError):
            shards_of_worker(2, 4, 2)

    @pytest.mark.parametrize("n_shards,n_workers",
                             [(1, 1), (4, 2), (5, 2), (7, 3), (3, 5)])
    def test_groups_partition_the_shard_space(self, n_shards, n_workers):
        groups = [shards_of_worker(worker, n_shards, n_workers)
                  for worker in range(n_workers)]
        flat = sorted(shard for group in groups for shard in group)
        assert flat == list(range(n_shards))
        for worker, group in enumerate(groups):
            for shard in group:
                assert worker_of_shard(shard, n_workers) == worker

    def test_router_worker_of_matches_composition(self):
        router = ShardRouter(6, seed=940)
        for key in range(400):
            assert router.worker_of(key, 4) == worker_of_shard(
                router.shard_of(key), 4
            )

    def test_worker_of_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(4, seed=0).worker_of(1, 0)


class TestRoutingProperties:
    """Seeded property sweep over the whole routing surface (ownership
    must partition, stay stable, and agree between scalar and batched
    paths — the invariants live resharding leans on)."""

    @pytest.mark.parametrize("case", range(12))
    def test_every_shard_owned_by_exactly_one_worker(self, case, rng):
        n_shards = rng.randrange(1, 33) + case
        n_workers = rng.randrange(1, 9)
        groups = [shards_of_worker(worker, n_shards, n_workers)
                  for worker in range(n_workers)]
        flat = [shard for group in groups for shard in group]
        assert sorted(flat) == list(range(n_shards))
        assert len(flat) == len(set(flat))
        for worker, group in enumerate(groups):
            assert group == tuple(sorted(group))
            for shard in group:
                assert worker_of_shard(shard, n_workers) == worker

    @pytest.mark.parametrize("case", range(8))
    def test_partitions_stable_across_instances(self, case, rng):
        seed = rng.randrange(2**32) + case
        n_shards = rng.randrange(1, 17)
        keys = [rng.randrange(2**63) for _ in range(300)]
        before = ShardRouter(n_shards, seed=seed)
        after = ShardRouter(n_shards, seed=seed)
        assert [before.shard_of(key) for key in keys] == [
            after.shard_of(key) for key in keys
        ]

    @pytest.mark.parametrize("case", range(8))
    def test_shard_of_many_agrees_with_scalar(self, case, rng):
        router = ShardRouter(rng.randrange(1, 13), seed=rng.randrange(2**32))
        keys = [rng.randrange(-2**31, 2**63) for _ in range(257 + case)]
        assert router.shard_of_many(keys) == [
            router.shard_of(key) for key in keys
        ]

    @pytest.mark.parametrize("case", range(6))
    def test_worker_of_composes_for_random_shapes(self, case, rng):
        router = ShardRouter(rng.randrange(1, 13), seed=rng.randrange(2**32))
        n_workers = rng.randrange(1, 7) + case % 2
        for key in (rng.randrange(2**63) for _ in range(200)):
            assert router.worker_of(key, n_workers) == worker_of_shard(
                router.shard_of(key), n_workers
            )


class TestRoutingTable:
    """Epoch-versioned dynamic overlay used by live resharding."""

    def test_epoch_zero_matches_static_assignment(self):
        table = RoutingTable(7, 3)
        assert table.epoch == 0
        for shard in range(7):
            assert table.worker_of_shard(shard) == worker_of_shard(shard, 3)
        for worker in range(3):
            assert table.shards_of_worker(worker) == shards_of_worker(
                worker, 7, 3
            )

    def test_reassign_bumps_epoch_and_moves_ownership(self):
        table = RoutingTable(4, 2)
        assert table.reassign(0, 1) == 1
        assert table.epoch == 1
        assert table.worker_of_shard(0) == 1
        assert 0 in table.shards_of_worker(1)
        assert 0 not in table.shards_of_worker(0)

    @pytest.mark.parametrize("case", range(8))
    def test_partition_invariant_survives_random_reassignments(
            self, case, rng):
        n_shards = rng.randrange(1, 17) + case
        n_workers = rng.randrange(1, 6)
        table = RoutingTable(n_shards, n_workers)
        last_epoch = 0
        for _ in range(25):
            shard = rng.randrange(n_shards)
            worker = rng.randrange(n_workers)
            epoch = table.reassign(shard, worker)
            assert epoch == last_epoch + 1  # every move is a new epoch
            last_epoch = epoch
            groups = [table.shards_of_worker(w) for w in range(n_workers)]
            flat = sorted(s for group in groups for s in group)
            assert flat == list(range(n_shards))
            assert table.worker_of_shard(shard) == worker
            assert table.assignment()[shard] == worker

    def test_rejects_out_of_range_arguments(self):
        table = RoutingTable(4, 2)
        for call in (
            lambda: table.worker_of_shard(4),
            lambda: table.worker_of_shard(-1),
            lambda: table.shards_of_worker(2),
            lambda: table.reassign(4, 0),
            lambda: table.reassign(0, 2),
        ):
            with pytest.raises(ConfigurationError):
                call()
        with pytest.raises(ConfigurationError):
            RoutingTable(0, 1)
        with pytest.raises(ConfigurationError):
            RoutingTable(1, 0)
