"""Online (incremental) resizing: the table stays usable while growing."""

import pytest

from repro import DeletionMode
from repro.core import check_mccuckoo
from repro.core.errors import ConfigurationError
from repro.core.resize import ResizableMcCuckoo
from repro.workloads import distinct_keys, key_stream, missing_keys


def table(seed=880, n_buckets=32, **kwargs):
    kwargs.setdefault("grow_at", 0.8)
    kwargs.setdefault("migrate_batch", 4)
    return ResizableMcCuckoo(n_buckets, d=3, seed=seed, maxloop=100, **kwargs)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            table(grow_at=0.0)
        with pytest.raises(ConfigurationError):
            table(grow_at=1.5)
        with pytest.raises(ConfigurationError):
            table(growth_factor=1.0)
        with pytest.raises(ConfigurationError):
            table(migrate_batch=0)
        with pytest.raises(ConfigurationError):
            table(deletion_mode=DeletionMode.DISABLED)

    def test_starts_unresized(self):
        t = table()
        assert not t.resizing
        assert t.generations == 0


class TestGrowth:
    def test_growth_triggered_past_threshold(self):
        t = table(seed=881)
        keys = key_stream(seed=882)
        initial_capacity = t.capacity
        while t.generations == 0:
            t.put(next(keys))
        assert t.active_table.capacity > initial_capacity
        assert t.resizing or len(t) > 0

    def test_no_items_lost_across_growth(self):
        t = table(seed=883)
        keys = distinct_keys(400, seed=884)
        for index, key in enumerate(keys):
            t.put(key, index)
        assert t.generations >= 1
        assert len(t) == len(keys)
        for index, key in enumerate(keys):
            outcome = t.lookup(key)
            assert outcome.found, f"key {index} lost during migration"
            assert outcome.value == index

    def test_migration_completes_incrementally(self):
        t = table(seed=885)
        keys = key_stream(seed=886)
        while t.generations == 0:
            t.put(next(keys))
        # keep writing: every write migrates a batch, so the old half drains
        writes = 0
        while t.resizing and writes < 10_000:
            t.put(next(keys))
            writes += 1
        assert not t.resizing
        check_mccuckoo(t.active_table)

    def test_finish_resize_drains_old_half(self):
        t = table(seed=887)
        keys = distinct_keys(200, seed=888)
        for key in keys:
            t.put(key)
        if t.resizing:
            moved = t.finish_resize()
            assert moved >= 0
        assert not t.resizing
        for key in keys:
            assert t.lookup(key).found
        check_mccuckoo(t.active_table)

    def test_multiple_generations(self):
        t = table(seed=889, n_buckets=16)
        keys = distinct_keys(600, seed=890)
        for key in keys:
            t.put(key)
        assert t.generations >= 2
        for key in keys[::13]:
            assert t.lookup(key).found

    def test_migrate_step_counts_moved_items(self):
        t = table(seed=891)
        keys = key_stream(seed=892)
        while not t.resizing:
            t.put(next(keys))
        moved = t.migrate_step(batch=3)
        assert 0 <= moved <= 3


class TestOperationsDuringResize:
    def _resizing_table(self, seed=893):
        t = table(seed=seed)
        keys = key_stream(seed=seed + 1)
        inserted = []
        while not t.resizing:
            key = next(keys)
            t.put(key, key & 0xFF)
            inserted.append(t.active_table._canonical(key))
        assert t.resizing
        return t, inserted, keys

    def test_lookup_consults_both_halves(self):
        t, inserted, _ = self._resizing_table()
        for key in inserted:
            assert t.lookup(key).found

    def test_delete_during_resize(self):
        t, inserted, _ = self._resizing_table(seed=895)
        victim = inserted[0]
        assert t.delete(victim).deleted
        assert not t.lookup(victim).found
        assert not t.delete(victim).deleted

    def test_upsert_during_resize(self):
        t, inserted, _ = self._resizing_table(seed=897)
        target = inserted[0]
        outcome = t.upsert(target, "fresh")
        assert outcome.status.value == "updated"
        assert t.get(target) == "fresh"
        t.finish_resize()
        assert t.get(target) == "fresh"

    def test_put_same_key_during_resize_not_shadowed_by_migration(self):
        """A key rewritten into the new half must survive the migration of
        its stale old-half copy."""
        t, inserted, _ = self._resizing_table(seed=899)
        target = inserted[-1]
        t.delete(target)
        t.put(target, "new-version")
        t.finish_resize()
        assert t.get(target) == "new-version"
        # exactly one logical copy set remains
        copies = t.active_table.copies_of(target)
        assert copies

    def test_missing_lookups_correct_during_resize(self):
        t, inserted, _ = self._resizing_table(seed=901)
        for key in missing_keys(100, set(inserted), seed=902):
            assert not t.lookup(key).found

    def test_len_and_items_span_both_halves(self):
        t, inserted, _ = self._resizing_table(seed=903)
        assert len(t) == len(inserted)
        listed = dict(t.items())
        assert set(listed) == set(inserted)
