"""Shared fixtures for the test suite.

Randomised tests derive their seeds from one session-wide base seed so a
failing run can be replayed exactly.  The base seed comes from the
``PYTEST_SEED`` environment variable (default 0) and is printed in the
pytest header; derived fixtures XOR their historical constants into it so
the default run is byte-identical to the suite before seeding existed.

    PYTEST_SEED=1234 python -m pytest tests/
"""

import os
import random

import pytest

from repro import McCuckoo, MemoryModel
from repro.workloads import distinct_keys

from .seeding import base_seed as _base_seed


def pytest_addoption(parser):
    parser.addoption(
        "--transport",
        default=None,
        choices=("auto", "shm", "socket"),
        help="pin the serve-layer worker transport for every server the "
             "suite starts with transport='auto' (sets "
             "REPRO_SERVE_TRANSPORT; the CI transport matrix runs "
             "tests/serve once per value)",
    )
    parser.addoption(
        "--read-path",
        default=None,
        choices=("auto", "ring", "shared"),
        help="pin the serve-layer GET path for every server the suite "
             "starts with read_path='auto' (sets REPRO_SERVE_READ_PATH; "
             "the CI matrix runs tests/serve once with 'shared' so the "
             "whole serve suite exercises the shared-image read path)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test wall-clock limit, enforced when "
        "pytest-timeout is installed (the CI reshard matrix installs it; "
        "a bare checkout ignores the mark)",
    )
    transport = config.getoption("--transport")
    if transport and transport != "auto":
        os.environ["REPRO_SERVE_TRANSPORT"] = transport
    read_path = config.getoption("--read-path")
    if read_path and read_path != "auto":
        os.environ["REPRO_SERVE_READ_PATH"] = read_path


def pytest_report_header(config):
    header = f"PYTEST_SEED={_base_seed()} (set PYTEST_SEED=<n> to replay)"
    transport = config.getoption("--transport")
    if transport:
        header += f"  serve-transport={transport}"
    read_path = config.getoption("--read-path")
    if read_path:
        header += f"  serve-read-path={read_path}"
    return header


@pytest.fixture(scope="session")
def session_seed() -> int:
    """The session's base seed, from ``PYTEST_SEED`` (default 0)."""
    return _base_seed()


@pytest.fixture
def rng(session_seed) -> random.Random:
    """A fresh seeded RNG per test — deterministic given ``PYTEST_SEED``."""
    return random.Random(session_seed * 0x9E3779B1 + 0x1234)


@pytest.fixture
def mem() -> MemoryModel:
    return MemoryModel()


@pytest.fixture
def small_mccuckoo(session_seed) -> McCuckoo:
    """A 3-ary table with 64 buckets per sub-table (capacity 192)."""
    return McCuckoo(n_buckets=64, d=3, maxloop=200, seed=session_seed ^ 1)


@pytest.fixture
def keys100(session_seed):
    return distinct_keys(100, seed=session_seed ^ 3)


@pytest.fixture
def keys1000(session_seed):
    return distinct_keys(1000, seed=session_seed ^ 5)


@pytest.fixture
def durable_store(session_seed):
    """A small durable LogStructuredStore whose log image is the crash disk."""
    from repro.apps import LogStructuredStore

    return LogStructuredStore(
        expected_items=256, seed=session_seed ^ 7, durable=True
    )
