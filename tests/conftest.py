"""Shared fixtures for the test suite."""

import pytest

from repro import McCuckoo, MemoryModel
from repro.workloads import distinct_keys


@pytest.fixture
def mem() -> MemoryModel:
    return MemoryModel()


@pytest.fixture
def small_mccuckoo() -> McCuckoo:
    """A 3-ary table with 64 buckets per sub-table (capacity 192)."""
    return McCuckoo(n_buckets=64, d=3, maxloop=200, seed=1)


@pytest.fixture
def keys100():
    return distinct_keys(100, seed=3)


@pytest.fixture
def keys1000():
    return distinct_keys(1000, seed=5)
