"""Integration: long mixed workloads across every scheme stay correct."""

import pytest

from repro import (
    BCHT,
    BlockedMcCuckoo,
    ChainedHashTable,
    CuckooTable,
    DeletionMode,
    LinearProbingTable,
    McCuckoo,
    SiblingTracking,
)
from repro.core import check_blocked, check_mccuckoo
from repro.workloads import TraceGenerator, replay

TRACE = dict(n_ops=1500, insert_ratio=0.45, lookup_ratio=0.3,
             missing_ratio=0.15, delete_ratio=0.1)


def _tables():
    yield "mccuckoo-reset", McCuckoo(
        256, d=3, seed=400, deletion_mode=DeletionMode.RESET
    ), check_mccuckoo
    yield "mccuckoo-tombstone", McCuckoo(
        256, d=3, seed=401, deletion_mode=DeletionMode.TOMBSTONE
    ), check_mccuckoo
    yield "mccuckoo-metadata", McCuckoo(
        256, d=3, seed=402, deletion_mode=DeletionMode.RESET,
        sibling_tracking=SiblingTracking.METADATA
    ), check_mccuckoo
    yield "blocked", BlockedMcCuckoo(
        86, d=3, slots=3, seed=403, deletion_mode=DeletionMode.RESET
    ), check_blocked
    yield "cuckoo", CuckooTable(256, d=3, seed=404), None
    yield "bcht", BCHT(86, d=3, slots=3, seed=405), None
    yield "chained", ChainedHashTable(256, seed=406), None
    yield "linear", LinearProbingTable(1024, seed=407), None


@pytest.mark.parametrize(
    "name,table,checker", list(_tables()), ids=lambda v: v if isinstance(v, str) else ""
)
def test_mixed_trace_has_no_false_results(name, table, checker):
    stats = replay(table, iter(TraceGenerator(seed=408, **TRACE)))
    assert stats.false_negatives == 0, f"{name} lost items"
    assert stats.false_positives == 0, f"{name} invented items"
    assert stats.inserts > 0 and stats.deletes > 0
    if checker is not None:
        checker(table)


def test_interleaved_schemes_agree_with_each_other():
    """Replay one trace through every scheme; hit counts must all match."""
    results = {}
    for name, table, _ in _tables():
        stats = replay(table, iter(TraceGenerator(seed=409, **TRACE)))
        if stats.failed == 0:
            results[name] = (stats.hits, stats.delete_misses)
    assert len(set(results.values())) == 1, results


def test_repeated_refresh_cycles_stay_consistent():
    table = McCuckoo(32, d=3, seed=410, maxloop=8,
                     deletion_mode=DeletionMode.RESET)
    from repro.workloads import key_stream

    keys = key_stream(seed=411)
    live = {}
    for cycle in range(5):
        # overfill a bit, delete some, refresh the stash
        for _ in range(20):
            key = next(keys)
            if not table.put(key, cycle).failed:
                live[table._canonical(key)] = cycle
        victims = list(live)[:10]
        for victim in victims:
            table.delete(victim)
            del live[victim]
        table.refresh_stash()
        for key, value in live.items():
            outcome = table.lookup(key)
            assert outcome.found and outcome.value == value
        check_mccuckoo(table)
