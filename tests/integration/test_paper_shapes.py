"""Integration: the paper's headline claims hold end-to-end at small scale.

These are the acceptance criteria from DESIGN.md §6, run at a scale small
enough for the unit-test suite (the benchmarks re-run them bigger).
"""

import pytest

from repro.analysis import (
    Scale,
    fig9_kickouts,
    fig10_memaccess,
    fig12_lookup_existing,
    fig13_lookup_missing,
    run_core_sweep,
    table1_first_collision,
)

SCALE = Scale(n_single=400, repeats=1, n_queries=250)


@pytest.fixture(scope="module")
def sweep():
    return run_core_sweep(SCALE)


class TestFig9Headline:
    def test_mccuckoo_cuts_kicks_at_85_percent(self, sweep):
        """Paper: 59.3 % fewer kick-outs for ternary cuckoo at 85 % load.
        We accept any reduction of at least 30 % at small scale."""
        result = fig9_kickouts(SCALE, sweep=sweep)
        cu = result.series("load", "kicks_per_insert", scheme="Cuckoo")[0.85]
        mc = result.series("load", "kicks_per_insert", scheme="McCuckoo")[0.85]
        assert mc < cu * 0.7

    def test_blocked_mccuckoo_cuts_kicks_at_95_percent(self, sweep):
        """Paper: 77.9 % fewer kick-outs for 3-way BCHT at 95 % load."""
        result = fig9_kickouts(SCALE, sweep=sweep)
        bcht = result.series("load", "kicks_per_insert", scheme="BCHT")[0.95]
        bmc = result.series("load", "kicks_per_insert", scheme="B-McCuckoo")[0.95]
        assert bmc < bcht * 0.5


class TestFig10Shapes:
    def test_reads_near_zero_at_low_load(self, sweep):
        result = fig10_memaccess(SCALE, sweep=sweep)
        for scheme in ("McCuckoo", "B-McCuckoo"):
            reads = result.series("load", "reads_per_insert", scheme=scheme)
            assert reads[0.1] < 0.2

    def test_write_crossover_near_half_load(self, sweep):
        result = fig10_memaccess(SCALE, sweep=sweep)
        mc = result.series("load", "writes_per_insert", scheme="McCuckoo")
        cu = result.series("load", "writes_per_insert", scheme="Cuckoo")
        assert mc[0.1] > cu[0.1]  # multi-copy writes more when empty
        assert mc[0.85] <= cu[0.85] * 1.6  # and no worse when loaded

    def test_total_accesses_lower_at_high_load(self, sweep):
        result = fig10_memaccess(SCALE, sweep=sweep)
        mc_rows = result.filter_rows(scheme="McCuckoo", load=0.85)[0]
        cu_rows = result.filter_rows(scheme="Cuckoo", load=0.85)[0]
        mc_total = mc_rows["reads_per_insert"] + mc_rows["writes_per_insert"]
        cu_total = cu_rows["reads_per_insert"] + cu_rows["writes_per_insert"]
        assert mc_total < cu_total


class TestTable1Ordering:
    def test_first_collision_ordering(self):
        result = table1_first_collision(Scale(n_single=400, repeats=2))
        loads = {row["scheme"]: row["first_collision_load"] for row in result.rows}
        # the paper's ordering: Cuckoo < McCuckoo < BCHT < B-McCuckoo
        assert loads["Cuckoo"] < loads["McCuckoo"] < loads["BCHT"] < loads["B-McCuckoo"]


class TestLookupShapes:
    def test_existing_lookups_cheaper_with_counters(self, sweep):
        result = fig12_lookup_existing(SCALE, sweep=sweep)
        for load in (0.3, 0.6, 0.9):
            mc = result.series("load", "offchip_accesses_per_lookup",
                               scheme="McCuckoo")[load]
            cu = result.series("load", "offchip_accesses_per_lookup",
                               scheme="Cuckoo")[load]
            assert mc < cu

    def test_missing_lookups_nearly_free_at_moderate_load(self, sweep):
        result = fig13_lookup_missing(SCALE, sweep=sweep)
        mc = result.series("load", "offchip_accesses_per_lookup", scheme="McCuckoo")
        assert mc[0.3] < 0.5
        assert mc[0.5] < 1.0

    def test_single_copy_missing_lookup_is_blind(self, sweep):
        result = fig13_lookup_missing(SCALE, sweep=sweep)
        cu = result.series("load", "offchip_accesses_per_lookup", scheme="Cuckoo")
        for value in cu.values():
            assert value == pytest.approx(3.0)
