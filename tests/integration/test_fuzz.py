"""Seeded fuzzing: long random traces across many seeds and table shapes.

Slower than the unit tests but still seconds: each case replays a sizable
mixed trace against a randomly-shaped table and validates every result
against the shadow dict, then runs the structural checker.
"""

import random

import pytest

from repro import (
    BlockedMcCuckoo,
    DeletionMode,
    McCuckoo,
    SiblingTracking,
)
from repro.core import check_blocked, check_mccuckoo
from repro.core.resize import ResizableMcCuckoo
from repro.workloads import TraceGenerator, replay


def _random_mccuckoo(rng: random.Random) -> McCuckoo:
    return McCuckoo(
        n_buckets=rng.randint(8, 96),
        d=rng.choice([2, 3, 4]),
        maxloop=rng.choice([0, 4, 50, 200]),
        seed=rng.randint(0, 1 << 16),
        deletion_mode=rng.choice([DeletionMode.RESET, DeletionMode.TOMBSTONE]),
        sibling_tracking=rng.choice(list(SiblingTracking)),
        stash_buckets=rng.choice([1, 8, 64]),
    )


def _random_blocked(rng: random.Random) -> BlockedMcCuckoo:
    return BlockedMcCuckoo(
        n_buckets=rng.randint(4, 32),
        d=3,
        slots=rng.choice([1, 2, 3, 4]),
        maxloop=rng.choice([0, 8, 100]),
        seed=rng.randint(0, 1 << 16),
        deletion_mode=rng.choice([DeletionMode.RESET, DeletionMode.TOMBSTONE]),
    )


def _random_trace(rng: random.Random, n_ops: int) -> TraceGenerator:
    weights = [rng.uniform(0.2, 0.6), rng.uniform(0.1, 0.4),
               rng.uniform(0.05, 0.3), rng.uniform(0.05, 0.3)]
    return TraceGenerator(
        n_ops,
        insert_ratio=weights[0],
        lookup_ratio=weights[1],
        missing_ratio=weights[2],
        delete_ratio=weights[3],
        seed=rng.randint(0, 1 << 16),
    )


@pytest.mark.parametrize("fuzz_seed", range(12))
def test_fuzz_mccuckoo(fuzz_seed):
    rng = random.Random(fuzz_seed * 7919 + 1)
    table = _random_mccuckoo(rng)
    stats = replay(table, iter(_random_trace(rng, 1000)))
    assert stats.false_negatives == 0, f"seed {fuzz_seed}: lost items"
    assert stats.false_positives == 0, f"seed {fuzz_seed}: phantom items"
    check_mccuckoo(table)


@pytest.mark.parametrize("fuzz_seed", range(8))
def test_fuzz_blocked(fuzz_seed):
    rng = random.Random(fuzz_seed * 6151 + 2)
    table = _random_blocked(rng)
    stats = replay(table, iter(_random_trace(rng, 1000)))
    assert stats.false_negatives == 0, f"seed {fuzz_seed}: lost items"
    assert stats.false_positives == 0, f"seed {fuzz_seed}: phantom items"
    check_blocked(table)


@pytest.mark.parametrize("fuzz_seed", range(6))
def test_fuzz_resizable(fuzz_seed):
    rng = random.Random(fuzz_seed * 4409 + 3)
    table = ResizableMcCuckoo(
        n_buckets=rng.randint(4, 24),
        d=3,
        maxloop=rng.choice([8, 100]),
        seed=rng.randint(0, 1 << 16),
        grow_at=rng.uniform(0.5, 0.9),
        migrate_batch=rng.randint(1, 16),
    )
    stats = replay(table, iter(_random_trace(rng, 1200)))
    assert stats.false_negatives == 0, f"seed {fuzz_seed}: lost items"
    assert stats.false_positives == 0, f"seed {fuzz_seed}: phantom items"
    check_mccuckoo(table.active_table)
    if table.retiring_table is not None:
        check_mccuckoo(table.retiring_table)
