"""End-to-end lifecycle: every major feature exercised in one scenario.

Simulates the life of a long-running index: bulk load through the
concurrent writer, query traffic, churn with stash-flag refresh, a
snapshot/restore "restart", online growth under continued load, and a
final integrity audit — the combination a real deployment would see.
"""

from repro import (
    ConcurrentMcCuckoo,
    DeletionMode,
    McCuckoo,
    McCuckooMultiMap,
    batched_lookup,
)
from repro.core import check_mccuckoo
from repro.core.resize import ResizableMcCuckoo
from repro.core.snapshot import restore_mccuckoo, snapshot_mccuckoo
from repro.workloads import distinct_keys, missing_keys, sample_keys


class TestIndexLifecycle:
    def test_full_lifecycle(self):
        live = {}

        # phase 1: bulk load through the concurrent writer
        base = McCuckoo(220, d=3, seed=970, maxloop=300,
                        deletion_mode=DeletionMode.RESET)
        writer = ConcurrentMcCuckoo(base)
        keys = distinct_keys(int(base.capacity * 0.8), seed=971)
        for index, key in enumerate(keys):
            writer.insert(key, index)
            live[base._canonical(key)] = index
        check_mccuckoo(base)

        # phase 2: query traffic — serial, then AMAC-batched
        probes = sample_keys(list(live), 200, seed=972)
        for key in probes:
            assert base.get(key) == live[key]
        batch = batched_lookup(base, probes, depth=8)
        assert all(outcome.found for outcome in batch.outcomes)

        # phase 3: churn + stash-flag refresh
        victims = sample_keys(list(live), len(live) // 3, seed=973)
        for key in victims:
            writer.delete(key)
            del live[key]
        extra = missing_keys(len(victims) // 2, set(live) | set(victims),
                             seed=974)
        for index, key in enumerate(extra):
            writer.insert(key, -index)
            live[base._canonical(key)] = -index
        base.refresh_stash()
        check_mccuckoo(base)
        for key, value in live.items():
            assert base.get(key) == value

        # phase 4: "restart" — snapshot, restore, verify bit-identical layout
        restored = restore_mccuckoo(snapshot_mccuckoo(base))
        assert restored._keys == base._keys
        for key, value in live.items():
            assert restored.get(key) == value

        # phase 5: keep growing online past the original capacity
        grower = ResizableMcCuckoo(220, d=3, seed=975, maxloop=300,
                                   grow_at=0.85, migrate_batch=8)
        for key, value in live.items():
            grower.put(key, value)
        more = missing_keys(int(base.capacity * 0.8), set(live), seed=976)
        for index, key in enumerate(more):
            grower.put(key, index)
        assert grower.generations >= 1
        assert len(grower) == len(live) + len(more)
        for key, value in list(live.items())[:100]:
            assert grower.get(key) == value

        # phase 6: final audit on both tables
        check_mccuckoo(grower.active_table)
        if grower.retiring_table is not None:
            check_mccuckoo(grower.retiring_table)

    def test_secondary_index_lifecycle(self):
        """A multimap posting-list index alongside the primary table."""
        primary = McCuckoo(128, d=3, seed=980,
                           deletion_mode=DeletionMode.RESET)
        postings = McCuckooMultiMap(
            lambda: McCuckoo(128, d=3, seed=981,
                             deletion_mode=DeletionMode.RESET)
        )
        keys = distinct_keys(200, seed=982)
        for index, key in enumerate(keys):
            category = index % 10
            primary.put(key, category)
            postings.add(category, key)
        # every category's posting list agrees with the primary table
        for category in range(10):
            members = postings.get(category)
            assert len(members) == 20
            for key in members:
                assert primary.get(key) == category
        # drop one category entirely
        for key in postings.get(3):
            primary.delete(key)
        postings.remove_all(3)
        assert postings.count(3) == 0
        assert postings.distinct_keys() == 9
        check_mccuckoo(primary)
        check_mccuckoo(postings.index)
