"""Tests for key canonicalisation and the hash-family interface."""

import random

import pytest

from repro._numpy import numpy_available
from repro.hashing import (
    FAMILIES,
    MASK64,
    candidate_buckets,
    canonical_key,
)


class TestCanonicalKey:
    def test_int_passthrough(self):
        assert canonical_key(42) == 42

    def test_int_reduced_mod_2_64(self):
        assert canonical_key((1 << 64) + 5) == 5

    def test_negative_int_wraps(self):
        assert canonical_key(-1) == MASK64

    def test_str_and_bytes_agree(self):
        assert canonical_key("hello") == canonical_key(b"hello")

    def test_str_is_deterministic(self):
        assert canonical_key("doc:17") == canonical_key("doc:17")

    def test_different_strings_differ(self):
        assert canonical_key("alpha") != canonical_key("beta")

    def test_length_matters(self):
        assert canonical_key(b"ab") != canonical_key(b"ab\0")

    def test_long_bytes_supported(self):
        key = canonical_key(b"x" * 1000)
        assert 0 <= key <= MASK64

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            canonical_key(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_key(3.14)


@pytest.mark.parametrize("family_name", sorted(FAMILIES))
class TestFamilies:
    def test_functions_count(self, family_name):
        functions = FAMILIES[family_name].functions(3, seed=1)
        assert len(functions) == 3

    def test_functions_are_independent(self, family_name):
        functions = FAMILIES[family_name].functions(3, seed=1)
        key = 0x1234_5678_9ABC_DEF0
        values = {fn.hash64(key) for fn in functions}
        assert len(values) == 3, "the d functions must hash a key differently"

    def test_deterministic_across_instances(self, family_name):
        first = FAMILIES[family_name].functions(2, seed=9)
        second = FAMILIES[family_name].functions(2, seed=9)
        for a, b in zip(first, second):
            assert a.hash64(777) == b.hash64(777)

    def test_seed_changes_output(self, family_name):
        a = FAMILIES[family_name].make(0, seed=1)
        b = FAMILIES[family_name].make(0, seed=2)
        collisions = sum(1 for key in range(64) if a.hash64(key) == b.hash64(key))
        assert collisions <= 1

    def test_hash_is_64_bit(self, family_name):
        fn = FAMILIES[family_name].make(0, seed=3)
        for key in (0, 1, MASK64, 0xDEADBEEF):
            assert 0 <= fn.hash64(key) <= MASK64

    def test_bucket_in_range(self, family_name):
        fn = FAMILIES[family_name].make(0, seed=4)
        for key in range(200):
            assert 0 <= fn.bucket(key, 17) < 17

    def test_candidates_match_per_function_buckets(self, family_name):
        # The multi-index fast path must agree with the scalar bucket()
        # calls it replaces on the hot path (bucket() itself no longer
        # validates n_buckets; tables check it once at construction).
        family = FAMILIES[family_name]
        functions = family.functions(3, seed=5)
        for key in (0, 1, 0xDEADBEEF, MASK64):
            assert family.candidates(functions, key, 97) == [
                fn.bucket(key, 97) for fn in functions
            ]

    def test_bucket_distribution_roughly_uniform(self, family_name):
        fn = FAMILIES[family_name].make(0, seed=6)
        n_buckets = 16
        counts = [0] * n_buckets
        n_keys = 4000
        for key in range(n_keys):
            counts[fn.bucket(key * 0x9E3779B97F4A7C15 % (1 << 64), n_buckets)] += 1
        expected = n_keys / n_buckets
        for count in counts:
            assert 0.5 * expected < count < 1.5 * expected

    def test_d_must_be_positive(self, family_name):
        with pytest.raises(ValueError):
            FAMILIES[family_name].functions(0, seed=1)


def test_candidate_buckets_one_per_function():
    functions = FAMILIES["splitmix"].functions(3, seed=0)
    cands = candidate_buckets(functions, 12345, 100)
    assert len(cands) == 3
    assert all(0 <= bucket < 100 for bucket in cands)


def test_candidate_buckets_deterministic():
    functions = FAMILIES["splitmix"].functions(3, seed=0)
    assert candidate_buckets(functions, 999, 50) == candidate_buckets(
        functions, 999, 50
    )


@pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")
@pytest.mark.parametrize("family_name", sorted(FAMILIES))
class TestCandidatesMatrix:
    """candidates_matrix is bit-identical to candidates_many for every
    family — SplitMix and double hashing via their true array kernels,
    the rest via the base-class loop fallback."""

    def test_matches_candidates_many(self, family_name):
        import numpy as np

        family = FAMILIES[family_name]
        functions = family.functions(3, seed=11)
        rng = random.Random(11)
        keys = [rng.getrandbits(64) for _ in range(500)]
        expected = family.candidates_many(functions, keys, 977)
        matrix = family.candidates_matrix(
            functions, np.array(keys, dtype=np.uint64), 977)
        assert matrix.shape == (500, 3)
        assert matrix.tolist() == expected

    def test_empty_batch(self, family_name):
        import numpy as np

        family = FAMILIES[family_name]
        functions = family.functions(3, seed=11)
        matrix = family.candidates_matrix(
            functions, np.array([], dtype=np.uint64), 97)
        assert matrix.shape == (0, 3)

    def test_extreme_keys(self, family_name):
        import numpy as np

        family = FAMILIES[family_name]
        functions = family.functions(4, seed=5)
        keys = [0, 1, MASK64, MASK64 - 1, 0x8000_0000_0000_0000]
        expected = family.candidates_many(functions, keys, 131)
        matrix = family.candidates_matrix(
            functions, np.array(keys, dtype=np.uint64), 131)
        assert matrix.tolist() == expected
