"""Implementation-specific tests for the individual hash functions."""

import pytest

from repro.hashing.bob import BobHash, bobhash
from repro.hashing.family import MASK64
from repro.hashing.modhash import ModFamily, ModHash
from repro.hashing.splitmix import SplitMixHash, splitmix64
from repro.hashing.tabulation import TabulationHash


class TestSplitMix:
    def test_known_avalanche(self):
        # Consecutive inputs must differ in roughly half their bits.
        a = splitmix64(1)
        b = splitmix64(2)
        differing = bin(a ^ b).count("1")
        assert 16 <= differing <= 48

    def test_range(self):
        for x in (0, 1, MASK64):
            assert 0 <= splitmix64(x) <= MASK64

    def test_deterministic(self):
        assert splitmix64(123456) == splitmix64(123456)

    def test_seed_mixes_in(self):
        assert SplitMixHash(1).hash64(7) != SplitMixHash(2).hash64(7)

    def test_no_trivial_fixed_point_at_zero(self):
        assert splitmix64(0) != 0


class TestBobHash:
    def test_empty_input(self):
        assert 0 <= bobhash(b"", seed=0) < 1 << 32

    def test_deterministic(self):
        assert bobhash(b"abcdef", 7) == bobhash(b"abcdef", 7)

    def test_seed_sensitivity(self):
        assert bobhash(b"abcdef", 1) != bobhash(b"abcdef", 2)

    def test_data_sensitivity(self):
        assert bobhash(b"abcdeg", 1) != bobhash(b"abcdef", 1)

    @pytest.mark.parametrize("length", list(range(0, 26)))
    def test_all_tail_lengths(self, length):
        """Exercise every tail-switch branch of the lookup2 port."""
        data = bytes(range(length))
        value = bobhash(data, seed=3)
        assert 0 <= value < 1 << 32

    def test_long_input_multiblock(self):
        data = bytes(range(256)) * 4
        assert bobhash(data, 1) != bobhash(data[:-1], 1)

    def test_hash64_combines_two_passes(self):
        h = BobHash(5)
        value = h.hash64(0xFEED)
        assert value >> 32 != value & 0xFFFFFFFF

    def test_distribution_over_buckets(self):
        h = BobHash(11)
        counts = [0] * 8
        for key in range(2000):
            counts[h.bucket(key, 8)] += 1
        assert min(counts) > 150


class TestTabulation:
    def test_zero_key_hashes_tables_at_zero(self):
        h = TabulationHash(seed=1)
        expected = 0
        for table in h._tables:
            expected ^= table[0]
        assert h.hash64(0) == expected

    def test_single_byte_change_changes_hash(self):
        h = TabulationHash(seed=2)
        assert h.hash64(0x01) != h.hash64(0x02)

    def test_high_byte_participates(self):
        h = TabulationHash(seed=3)
        assert h.hash64(0) != h.hash64(1 << 56)

    def test_3_independence_smoke(self):
        # xor structure: h(a) ^ h(b) ^ h(a^b) ^ h(0) == 0 for tabulation
        h = TabulationHash(seed=4)
        a, b = 0x12, 0x3400
        assert h.hash64(a) ^ h.hash64(b) ^ h.hash64(a ^ b) ^ h.hash64(0) == 0


class TestModHash:
    def test_even_multiplier_rejected(self):
        with pytest.raises(ValueError):
            ModHash(multiplier=4, rotation=3)

    def test_rotation_wraps(self):
        assert ModHash(3, rotation=64).hash64(5) == ModHash(3, rotation=0).hash64(5)

    def test_family_produces_odd_multipliers(self):
        family = ModFamily()
        for index in range(5):
            fn = family.make(index, seed=9)
            assert fn.multiplier % 2 == 1

    def test_distribution_acceptable_for_tables(self):
        fn = ModFamily().make(0, seed=1)
        counts = [0] * 16
        for key in range(4000):
            counts[fn.bucket(key, 16)] += 1
        assert min(counts) > 100
