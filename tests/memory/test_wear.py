"""WearMeter accounting and the wear-aware kick policy.

Wear is the flash/NVM lifetime model of Eppstein et al. (arXiv
1404.0286): the device dies when its hottest bucket exhausts its
program/erase cycles, so the meter's headline aggregate is **max** wear
and the leveling metric is max/mean imbalance.
"""

import random

import pytest

from repro.core import McCuckoo, WearAwarePolicy
from repro.core.errors import ConfigurationError
from repro.core.policies import make_policy
from repro.memory.wear import WearMeter
from repro.workloads import distinct_keys
from tests.seeding import derive


class TestWearMeter:
    def test_note_and_wear_of(self):
        meter = WearMeter(n_buckets=4)
        meter.note(0)
        meter.note(2, count=3)
        assert meter.wear_of(0) == 1
        assert meter.wear_of(1) == 0
        assert meter.wear_of(2) == 3
        assert meter.total_writes == 4

    def test_note_past_end_auto_resizes(self):
        meter = WearMeter(n_buckets=2)
        meter.note(9)
        assert meter.n_buckets == 10
        assert meter.wear_of(9) == 1

    def test_resize_preserves_counts_and_never_shrinks(self):
        meter = WearMeter(n_buckets=4)
        meter.note(3, count=5)
        meter.resize(8)
        assert meter.n_buckets == 8
        assert meter.wear_of(3) == 5
        meter.resize(2)  # shrink request is ignored
        assert meter.n_buckets == 8

    def test_wear_of_out_of_range_is_zero(self):
        meter = WearMeter(n_buckets=2)
        assert meter.wear_of(-1) == 0
        assert meter.wear_of(99) == 0

    def test_aggregates(self):
        meter = WearMeter(n_buckets=4)
        for bucket, count in ((0, 1), (1, 2), (2, 3), (3, 6)):
            meter.note(bucket, count=count)
        assert meter.max_wear == 6
        assert meter.mean_wear == pytest.approx(3.0)
        assert meter.wear_imbalance == pytest.approx(2.0)

    def test_empty_meter_aggregates(self):
        meter = WearMeter()
        assert meter.max_wear == 0
        assert meter.mean_wear == 0.0
        assert meter.wear_imbalance == 1.0  # vacuously level

    def test_histogram(self):
        meter = WearMeter(n_buckets=5)
        meter.note(0, count=2)
        meter.note(1, count=2)
        meter.note(2)
        assert meter.histogram() == {0: 2, 1: 1, 2: 2}

    def test_summary_mentions_every_aggregate(self):
        meter = WearMeter(n_buckets=2)
        meter.note(0, count=4)
        text = meter.summary()
        assert "total=4" in text and "max=4" in text
        assert "mean=" in text and "imbalance=" in text


class TestWearAwarePolicy:
    def test_chooses_minimum_wear_candidate(self):
        meter = WearMeter(n_buckets=4)
        meter.note(0, count=5)
        meter.note(1, count=2)
        meter.note(3, count=9)
        policy = WearAwarePolicy()
        policy.attach_wear(meter)
        rng = random.Random(derive(0xF0))
        assert policy.choose([0, 1, 3], rng) == 1
        assert policy.choose([0, 2, 3], rng) == 2  # untouched bucket wins

    def test_ties_break_at_random_not_index_order(self):
        meter = WearMeter(n_buckets=8)
        policy = WearAwarePolicy()
        policy.attach_wear(meter)
        rng = random.Random(derive(0xF1))
        chosen = {policy.choose([2, 5, 7], rng) for _ in range(60)}
        assert chosen == {2, 5, 7}  # all equally-cold candidates reachable

    def test_raises_before_attach(self):
        with pytest.raises(ConfigurationError):
            WearAwarePolicy().choose([0, 1], random.Random(0))

    def test_registered_in_policy_registry(self):
        policy = make_policy("wear-aware")
        assert isinstance(policy, WearAwarePolicy)
        assert policy.wants_wear


class TestTableWiring:
    def test_table_auto_creates_meter_for_wear_policy(self):
        table = McCuckoo(200, d=3, seed=derive(0xF2),
                         kick_policy=WearAwarePolicy())
        assert table.wear_meter is not None
        for key in distinct_keys(int(table.capacity * 0.7), seed=derive(0xF3)):
            assert table.put(key)
        # every successful insert writes at least one bucket
        assert table.wear_meter.total_writes >= int(table.capacity * 0.7)
        assert table.wear_meter.max_wear >= 1

    def test_explicit_meter_is_used_and_readable(self):
        meter = WearMeter()
        table = McCuckoo(200, d=3, seed=derive(0xF4), wear_meter=meter)
        assert table.wear_meter is meter
        for key in distinct_keys(100, seed=derive(0xF5)):
            table.put(key)
        assert meter.total_writes >= 100

    def test_no_meter_by_default(self):
        table = McCuckoo(100, d=3, seed=derive(0xF6))
        assert table.wear_meter is None
