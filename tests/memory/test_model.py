"""Tests for the memory-access accounting model."""

import pytest

from repro.memory.model import AccessCounts, MemoryModel, Op, OpStats, Tier


class TestAccessCounts:
    def test_starts_at_zero(self):
        counts = AccessCounts()
        assert counts.reads == 0
        assert counts.writes == 0
        assert counts.total == 0

    def test_total_sums_reads_and_writes(self):
        assert AccessCounts(reads=3, writes=4).total == 7

    def test_copy_is_independent(self):
        original = AccessCounts(reads=1, writes=2)
        clone = original.copy()
        clone.reads += 10
        assert original.reads == 1

    def test_subtraction(self):
        delta = AccessCounts(5, 7) - AccessCounts(2, 3)
        assert (delta.reads, delta.writes) == (3, 4)

    def test_addition(self):
        total = AccessCounts(1, 2) + AccessCounts(10, 20)
        assert (total.reads, total.writes) == (11, 22)


class TestMemoryModel:
    def test_records_each_tier_separately(self, mem):
        mem.onchip_read()
        mem.onchip_write()
        mem.offchip_read()
        mem.offchip_read()
        mem.offchip_write()
        assert mem.on_chip.reads == 1
        assert mem.on_chip.writes == 1
        assert mem.off_chip.reads == 2
        assert mem.off_chip.writes == 1

    def test_record_with_count(self, mem):
        mem.offchip_write(count=5)
        assert mem.off_chip.writes == 5

    def test_negative_count_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.record(Tier.ON_CHIP, Op.READ, count=-1)

    def test_snapshot_is_immutable_view(self, mem):
        mem.offchip_read()
        snap = mem.snapshot()
        mem.offchip_read()
        assert snap.off_chip.reads == 1
        assert mem.off_chip.reads == 2

    def test_snapshot_subtraction(self, mem):
        before = mem.snapshot()
        mem.offchip_read(count=3)
        mem.onchip_write(count=2)
        delta = mem.snapshot() - before
        assert delta.off_chip.reads == 3
        assert delta.on_chip.writes == 2
        assert delta.off_chip.writes == 0

    def test_measure_context_manager(self, mem):
        mem.offchip_read()  # pre-existing traffic must not leak in
        with mem.measure() as measurement:
            mem.offchip_read(count=2)
            mem.offchip_write()
        assert measurement.delta.off_chip.reads == 2
        assert measurement.delta.off_chip.writes == 1

    def test_reset(self, mem):
        mem.offchip_read()
        mem.reset()
        assert mem.off_chip.reads == 0

    def test_summary_keys(self, mem):
        mem.onchip_read()
        summary = mem.summary()
        assert summary == {
            "on_chip_reads": 1,
            "on_chip_writes": 0,
            "off_chip_reads": 0,
            "off_chip_writes": 0,
        }

    def test_trace_disabled_by_default(self, mem):
        mem.offchip_read("bucket")
        assert mem.trace == []

    def test_trace_records_labels(self):
        mem = MemoryModel(trace_capacity=10)
        mem.offchip_read("bucket")
        mem.onchip_write("counter")
        labels = [label for _, _, label in mem.trace]
        assert labels == ["bucket", "counter"]

    def test_trace_is_bounded(self):
        mem = MemoryModel(trace_capacity=3)
        for i in range(5):
            mem.offchip_read(f"r{i}")
        labels = [label for _, _, label in mem.trace]
        assert labels == ["r2", "r3", "r4"]

    def test_trace_labels_filter_by_tier(self):
        mem = MemoryModel(trace_capacity=10)
        mem.offchip_read("off")
        mem.onchip_read("on")
        assert list(mem.trace_labels(Tier.ON_CHIP)) == ["on"]

    def test_snapshot_convenience_properties(self, mem):
        mem.offchip_read(count=2)
        mem.offchip_write(count=3)
        snap = mem.snapshot()
        assert snap.off_chip_reads == 2
        assert snap.off_chip_writes == 3
        assert snap.off_chip_total == 5


class TestOpStats:
    def _delta(self, mem, reads=0, writes=0, onchip_reads=0):
        with mem.measure() as measurement:
            mem.offchip_read(count=reads)
            mem.offchip_write(count=writes)
            mem.onchip_read(count=onchip_reads)
        return measurement.delta

    def test_empty_stats_average_zero(self):
        stats = OpStats()
        assert stats.kicks_per_op == 0.0
        assert stats.offchip_reads_per_op == 0.0

    def test_per_op_averages(self, mem):
        stats = OpStats()
        stats.add(self._delta(mem, reads=2, writes=1), kicks=1)
        stats.add(self._delta(mem, reads=4, writes=3), kicks=3)
        assert stats.operations == 2
        assert stats.kicks_per_op == 2.0
        assert stats.offchip_reads_per_op == 3.0
        assert stats.offchip_writes_per_op == 2.0
        assert stats.offchip_accesses_per_op == 5.0

    def test_onchip_averages(self, mem):
        stats = OpStats()
        stats.add(self._delta(mem, onchip_reads=6))
        assert stats.onchip_reads_per_op == 6.0
        assert stats.onchip_writes_per_op == 0.0

    def test_merge(self, mem):
        a = OpStats()
        a.add(self._delta(mem, reads=2), kicks=1)
        b = OpStats()
        b.add(self._delta(mem, reads=4), kicks=5)
        a.merge(b)
        assert a.operations == 2
        assert a.kicks == 6
        assert a.off_chip.reads == 6

    def test_as_row_contains_all_metrics(self, mem):
        stats = OpStats()
        stats.add(self._delta(mem, reads=1, writes=1), kicks=2)
        row = stats.as_row()
        assert row["ops"] == 1
        assert row["kicks_per_op"] == 2.0
        assert set(row) == {
            "ops",
            "kicks_per_op",
            "offchip_reads_per_op",
            "offchip_writes_per_op",
            "onchip_reads_per_op",
            "onchip_writes_per_op",
        }
