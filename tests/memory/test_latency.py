"""Tests for the FPGA latency/throughput model (Figs. 15/16 substrate)."""

import pytest

from repro.memory.latency import PAPER_FPGA, LatencyModel
from repro.memory.model import AccessCounts, MemoryModel, OpStats, Snapshot


def snapshot(on_reads=0, on_writes=0, off_reads=0, off_writes=0) -> Snapshot:
    return Snapshot(
        on_chip=AccessCounts(on_reads, on_writes),
        off_chip=AccessCounts(off_reads, off_writes),
    )


class TestLatencyModel:
    def test_paper_defaults(self):
        assert PAPER_FPGA.logic_clk_hz == 333e6
        assert PAPER_FPGA.mem_clk_hz == 200e6
        assert PAPER_FPGA.onchip_read_cycles == 3
        assert PAPER_FPGA.offchip_read_setup_cycles == 18

    def test_offchip_read_cycles_at_8_bytes(self):
        # One bus beat: just the setup cost.
        assert PAPER_FPGA.offchip_read_cycles() == 18

    def test_offchip_read_cycles_grow_with_record(self):
        sized = PAPER_FPGA.with_record_bytes(128)
        assert sized.offchip_read_cycles() == 18 + 16 - 1

    def test_with_record_bytes_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PAPER_FPGA.with_record_bytes(0)

    def test_with_record_bytes_preserves_other_fields(self):
        sized = PAPER_FPGA.with_record_bytes(64)
        assert sized.logic_clk_hz == PAPER_FPGA.logic_clk_hz
        assert sized.onchip_write_cycles == PAPER_FPGA.onchip_write_cycles
        assert sized.record_bytes == 64

    def test_seconds_pure_logic(self):
        model = LatencyModel()
        assert model.seconds_for(snapshot(), logic_ops=1) == pytest.approx(1 / 333e6)

    def test_seconds_onchip_read(self):
        model = LatencyModel()
        expected = (1 + 3) / 333e6
        assert model.seconds_for(snapshot(on_reads=1)) == pytest.approx(expected)

    def test_seconds_offchip_read_uses_memory_clock(self):
        model = LatencyModel()
        expected = 1 / 333e6 + 18 / 200e6
        assert model.seconds_for(snapshot(off_reads=1)) == pytest.approx(expected)

    def test_writes_are_cheap(self):
        model = LatencyModel()
        read = model.seconds_for(snapshot(off_reads=1))
        write = model.seconds_for(snapshot(off_writes=1))
        assert write < read / 3

    def test_latency_us_averages_over_operations(self):
        mem = MemoryModel()
        stats = OpStats()
        for _ in range(4):
            with mem.measure() as measurement:
                mem.offchip_read()
            stats.add(measurement.delta)
        per_op = PAPER_FPGA.latency_us(stats)
        one_op = PAPER_FPGA.seconds_for(snapshot(off_reads=1), logic_ops=1) * 1e6
        assert per_op == pytest.approx(one_op)

    def test_latency_of_empty_stats_is_zero(self):
        assert PAPER_FPGA.latency_us(OpStats()) == 0.0
        assert PAPER_FPGA.throughput_mops(OpStats()) == 0.0

    def test_throughput_is_inverse_latency(self):
        mem = MemoryModel()
        stats = OpStats()
        with mem.measure() as measurement:
            mem.offchip_read(count=2)
        stats.add(measurement.delta)
        latency = PAPER_FPGA.latency_us(stats)
        assert PAPER_FPGA.throughput_mops(stats) == pytest.approx(1.0 / latency)

    def test_bigger_records_mean_lower_throughput(self):
        mem = MemoryModel()
        stats = OpStats()
        with mem.measure() as measurement:
            mem.offchip_read(count=3)
        stats.add(measurement.delta)
        small = PAPER_FPGA.with_record_bytes(8).throughput_mops(stats)
        large = PAPER_FPGA.with_record_bytes(128).throughput_mops(stats)
        assert large < small

    def test_skipping_reads_pays_more_for_large_records(self):
        """The core Fig. 15/16 effect: one saved bucket read is worth more
        cycles when records are bigger."""
        mem = MemoryModel()
        three_reads, one_read = OpStats(), OpStats()
        with mem.measure() as measurement:
            mem.offchip_read(count=3)
        three_reads.add(measurement.delta)
        with mem.measure() as measurement:
            mem.offchip_read(count=1)
        one_read.add(measurement.delta)
        small = PAPER_FPGA.with_record_bytes(8)
        large = PAPER_FPGA.with_record_bytes(128)
        saving_small = small.latency_us(three_reads) - small.latency_us(one_read)
        saving_large = large.latency_us(three_reads) - large.latency_us(one_read)
        assert saving_large > saving_small


class TestBatchSeconds:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            PAPER_FPGA.batch_seconds(-1, 0)
        with pytest.raises(ValueError):
            PAPER_FPGA.batch_seconds(0, -1)

    def test_serial_equals_epochs_equal_reads(self):
        # fully serial: epochs == reads; overlapped: epochs < reads
        serial = PAPER_FPGA.batch_seconds(epochs=100, total_reads=100)
        overlapped = PAPER_FPGA.batch_seconds(epochs=20, total_reads=100)
        assert overlapped < serial

    def test_bandwidth_still_serial(self):
        # even fully overlapped runs pay one burst per read
        zero_epochs = PAPER_FPGA.batch_seconds(epochs=0, total_reads=100)
        assert zero_epochs > 0.0

    def test_bigger_records_cost_more_bandwidth(self):
        small = PAPER_FPGA.with_record_bytes(8).batch_seconds(10, 100)
        large = PAPER_FPGA.with_record_bytes(128).batch_seconds(10, 100)
        assert large > small
