"""Tests for the cuckoo filter substrate."""

import pytest

from repro.filters import CuckooFilter
from repro.workloads import distinct_keys, missing_keys


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CuckooFilter(0)
        with pytest.raises(ValueError):
            CuckooFilter(8, fingerprint_bits=0)
        with pytest.raises(ValueError):
            CuckooFilter(8, fingerprint_bits=33)
        with pytest.raises(ValueError):
            CuckooFilter(8, slots_per_bucket=0)
        with pytest.raises(ValueError):
            CuckooFilter(8, maxloop=-1)

    def test_buckets_rounded_to_power_of_two(self):
        assert CuckooFilter(100).n_buckets == 128
        assert CuckooFilter(128).n_buckets == 128

    def test_storage_bits(self):
        filt = CuckooFilter(64, fingerprint_bits=12, slots_per_bucket=4)
        assert filt.storage_bits == 64 * 4 * 12


class TestMembership:
    def test_no_false_negatives(self):
        filt = CuckooFilter(256, seed=1)
        keys = distinct_keys(700, seed=2)  # ~68 % load
        for key in keys:
            assert filt.add(key)
        assert all(key in filt for key in keys)

    def test_empty_filter_rejects(self):
        filt = CuckooFilter(64, seed=3)
        assert all(key not in filt for key in distinct_keys(100, seed=4))

    def test_false_positive_rate_tracks_fingerprint_size(self):
        keys = distinct_keys(800, seed=5)
        probes = missing_keys(4000, set(keys), seed=6)

        def fp_rate(bits):
            filt = CuckooFilter(256, fingerprint_bits=bits, seed=7)
            for key in keys:
                filt.add(key)
            return sum(1 for key in probes if key in filt) / len(probes)

        assert fp_rate(16) < fp_rate(6)
        assert fp_rate(16) < 0.01

    def test_expected_fp_rate_formula(self):
        filt = CuckooFilter(256, fingerprint_bits=12, seed=8)
        for key in distinct_keys(500, seed=9):
            filt.add(key)
        assert 0.0 < filt.expected_fp_rate() < 0.01


class TestRelocation:
    def test_reaches_high_load_via_kicks(self):
        filt = CuckooFilter(128, slots_per_bucket=4, seed=10)
        keys = distinct_keys(int(filt.capacity * 0.93), seed=11)
        inserted = [key for key in keys if filt.add(key)]
        assert len(inserted) > len(keys) * 0.98
        assert all(key in filt for key in inserted)

    def test_alt_bucket_is_involution(self):
        filt = CuckooFilter(128, seed=12)
        for key in distinct_keys(100, seed=13):
            fp, b1, b2 = filt._candidates(key)
            assert filt._alt_bucket(b2, fp) == b1
            assert filt._alt_bucket(b1, fp) == b2

    def test_failure_parks_victim_and_stays_queryable(self):
        filt = CuckooFilter(4, slots_per_bucket=2, maxloop=8, seed=14)
        inserted = []
        failed = False
        for key in distinct_keys(200, seed=15):
            if filt.add(key):
                inserted.append(key)
            else:
                failed = True
                break
        assert failed
        # every successfully added key (and the victim) is still visible
        for key in inserted:
            assert key in filt

    def test_add_after_failure_rejected(self):
        filt = CuckooFilter(4, slots_per_bucket=2, maxloop=4, seed=16)
        for key in distinct_keys(200, seed=17):
            if not filt.add(key):
                break
        assert not filt.add(distinct_keys(1, seed=18)[0])


class TestDeletion:
    def test_remove_added_key(self):
        filt = CuckooFilter(64, seed=19)
        keys = distinct_keys(50, seed=20)
        for key in keys:
            filt.add(key)
        assert filt.remove(keys[0])
        assert len(filt) == 49

    def test_remove_absent_key(self):
        filt = CuckooFilter(64, seed=21)
        filt.add(1)
        assert not filt.remove(2)

    def test_duplicate_adds_removable_twice(self):
        filt = CuckooFilter(64, seed=22)
        filt.add(5)
        filt.add(5)
        assert filt.remove(5)
        assert 5 in filt  # one copy remains
        assert filt.remove(5)
        assert 5 not in filt

    def test_load_ratio(self):
        filt = CuckooFilter(64, slots_per_bucket=4, seed=23)
        for key in distinct_keys(128, seed=24):
            filt.add(key)
        assert filt.load_ratio == pytest.approx(128 / filt.capacity)
