"""Tests for the Bloom filter substrate and its McCuckoo equivalence."""

import pytest

from repro import McCuckoo
from repro.filters import BloomFilter
from repro.workloads import distinct_keys, missing_keys


class TestConstruction:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)

    def test_for_capacity_rejects_bad_fp(self):
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, 0.0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, 1.0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(0, 0.1)

    def test_for_capacity_sizing(self):
        bloom = BloomFilter.for_capacity(1000, 0.01)
        # classic formula: ~9.6 bits/key at 1 % fp
        assert 9000 <= bloom.m_bits <= 10500
        assert 6 <= bloom.k_hashes <= 8


class TestBehaviour:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(500, 0.01)
        keys = distinct_keys(500, seed=1)
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_empty_filter_rejects_everything(self):
        bloom = BloomFilter(128, 3)
        assert all(key not in bloom for key in distinct_keys(50, seed=2))

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter.for_capacity(2000, 0.02, seed=3)
        inserted = distinct_keys(2000, seed=4)
        for key in inserted:
            bloom.add(key)
        probes = missing_keys(4000, set(inserted), seed=5)
        fp = sum(1 for key in probes if key in bloom) / len(probes)
        assert fp < 0.06

    def test_expected_fp_rate_tracks_fill(self):
        bloom = BloomFilter(1024, 4, seed=6)
        assert bloom.expected_fp_rate() == 0.0
        for key in distinct_keys(100, seed=7):
            bloom.add(key)
        assert 0.0 < bloom.expected_fp_rate() < 1.0

    def test_len_counts_insertions(self):
        bloom = BloomFilter(128, 2)
        for key in range(5):
            bloom.add(key)
        assert len(bloom) == 5

    def test_clear(self):
        bloom = BloomFilter(128, 2)
        bloom.add(1)
        bloom.clear()
        assert 1 not in bloom
        assert len(bloom) == 0
        assert bloom.bits_set == 0


class TestMcCuckooEquivalence:
    """§III.B.2: McCuckoo's counters, viewed as zero/non-zero, behave as a
    Bloom filter over the inserted keys (no-deletion mode)."""

    def test_counters_give_no_false_negatives(self):
        table = McCuckoo(n_buckets=128, d=3, seed=9)
        keys = distinct_keys(250, seed=10)
        for key in keys:
            table.put(key)
        for key in keys:
            cands = table._candidates(key)
            assert all(table._counters.peek(bucket) > 0 for bucket in cands)

    def test_zero_counter_short_circuits_lookup(self):
        table = McCuckoo(n_buckets=128, d=3, seed=11)
        for key in distinct_keys(50, seed=12):
            table.put(key)
        absent = missing_keys(200, set(distinct_keys(50, seed=12)), seed=13)
        rejected_without_reads = 0
        for key in absent:
            before = table.mem.off_chip.reads
            outcome = table.lookup(key)
            assert not outcome.found
            if table.mem.off_chip.reads == before:
                rejected_without_reads += 1
        # at ~39 % load most absent keys hit at least one zero counter
        assert rejected_without_reads > len(absent) * 0.5
