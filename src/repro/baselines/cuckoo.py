"""Standard single-copy d-ary cuckoo hashing — the paper's main baseline.

Exactly one copy of each item is stored.  There is no on-chip helper, so
every bucket inspection is an off-chip read — the "blindness" the paper's
introduction describes: during kick-outs each candidate bucket must be read
back just to learn whether it is empty.

Two collision-resolution strategies are provided: ``random`` walk (evict a
random candidate's occupant) and ``bfs`` (breadth-first search for the
shortest eviction path).  Failure handling is selectable: roll back and
report failure, rehash into a bigger table, or spill to a small on-chip
stash (which turns this class into the CHS baseline, see
:mod:`repro.baselines.chs`).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..core.config import FailurePolicy
from ..core.errors import ConfigurationError, TableFullError
from ..core.interface import HashTable
from ..core.policies import KickPolicy, make_policy
from ..core.results import DeleteOutcome, InsertOutcome, InsertStatus, LookupOutcome
from ..core.stash import OnChipStash
from ..hashing import DEFAULT_FAMILY, HashFamily, Key, KeyLike
from ..memory.model import MemoryModel


class CuckooTable(HashTable):
    """Standard d-ary cuckoo hash table (one slot per bucket)."""

    name = "Cuckoo"

    def __init__(
        self,
        n_buckets: int,
        d: int = 3,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        maxloop: int = 500,
        strategy: str = "random",
        on_failure: FailurePolicy = FailurePolicy.FAIL,
        stash_capacity: int = 4,
        growth_factor: float = 2.0,
        max_rehash_attempts: int = 8,
        kick_policy: Union[KickPolicy, str, None] = None,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        super().__init__(mem)
        if n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        if d < 2:
            raise ConfigurationError("cuckoo hashing needs d >= 2")
        if strategy not in ("random", "bfs"):
            raise ConfigurationError("strategy must be 'random' or 'bfs'")
        if kick_policy is not None and strategy == "bfs":
            raise ConfigurationError(
                "kick_policy only steers the random-walk strategy, not bfs"
            )
        self.d = d
        self.n_buckets = n_buckets
        self.maxloop = maxloop
        self.strategy = strategy
        self.on_failure = on_failure
        self._family = family or DEFAULT_FAMILY
        self._seed = seed
        self._growth_factor = growth_factor
        self._max_rehash_attempts = max_rehash_attempts
        self._rng = random.Random(seed ^ 0xC0C0)
        # None keeps the original inline uniform-random walk (bit-identical);
        # a policy instance or registry name switches to the hook-driven walk.
        if isinstance(kick_policy, str):
            self._policy: Optional[KickPolicy] = make_policy(kick_policy)
        else:
            self._policy = kick_policy
        self._stash: Optional[OnChipStash] = None
        if on_failure is FailurePolicy.STASH:
            self._stash = OnChipStash(stash_capacity, self.mem)
        self._in_rehash = False
        self._rehash_overflow: List[Tuple[Key, Any]] = []
        self.rehash_count = 0
        self.total_kicks = 0
        self._init_storage()

    def _init_storage(self) -> None:
        total = self.d * self.n_buckets
        self._functions = self._family.functions(self.d, self._seed)
        self._keys: List[Optional[Key]] = [None] * total
        self._values: List[Any] = [None] * total
        if self._policy is not None:
            self._policy.attach(total, self.mem)
        self._n_main = 0

    # ------------------------------------------------------------------
    # geometry and accounting helpers
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.d * self.n_buckets

    def __len__(self) -> int:
        return self._n_main + (len(self._stash) if self._stash is not None else 0)

    @property
    def main_items(self) -> int:
        return self._n_main

    @property
    def stash(self) -> Optional[OnChipStash]:
        return self._stash

    def _candidates(self, key: Key) -> List[int]:
        return [
            table * self.n_buckets + fn.bucket(key, self.n_buckets)
            for table, fn in enumerate(self._functions)
        ]

    def _read(self, bucket: int) -> Tuple[Optional[Key], Any]:
        self.mem.offchip_read("bucket")
        return self._keys[bucket], self._values[bucket]

    def _write(self, bucket: int, key: Optional[Key], value: Any) -> None:
        self.mem.offchip_write("bucket")
        self._keys[bucket] = key
        self._values[bucket] = value

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        k = self._canonical(key)
        return self._insert_canonical(k, value)

    def _insert_canonical(self, k: Key, value: Any) -> InsertOutcome:
        cands = self._candidates(k)
        for bucket in cands:
            stored_key, _ = self._read(bucket)
            if stored_key is None:
                self._write(bucket, k, value)
                self._n_main += 1
                return InsertOutcome(InsertStatus.STORED, copies=1)
        self.events.note_collision(len(self) + 1)
        if self.strategy == "bfs":
            return self._insert_bfs(k, value, cands)
        return self._insert_random_walk(k, value, cands)

    def _insert_random_walk(
        self, k: Key, value: Any, cands: List[int]
    ) -> InsertOutcome:
        # `moves` records (bucket, previous key, previous value) so FAIL mode
        # can roll the chain back and leave the table untouched.
        moves: List[Tuple[int, Key, Any]] = []
        cur_key, cur_value = k, value
        prev_bucket: Optional[int] = None
        kicks = 0
        while kicks < self.maxloop:
            choices = [bucket for bucket in cands if bucket != prev_bucket]
            if self._policy is None:
                victim_bucket = choices[self._rng.randrange(len(choices))]
            else:
                if self._policy.exhausted(choices):
                    break
                victim_bucket = self._policy.choose(choices, self._rng)
                self._policy.record_eviction(
                    victim_bucket, [b for b in cands if b != victim_bucket]
                )
            victim_key, victim_value = self._keys[victim_bucket], self._values[
                victim_bucket
            ]
            assert victim_key is not None
            self._write(victim_bucket, cur_key, cur_value)
            moves.append((victim_bucket, victim_key, victim_value))
            kicks += 1
            self.total_kicks += 1
            cur_key, cur_value = victim_key, victim_value
            prev_bucket = victim_bucket
            cands = self._candidates(cur_key)
            for bucket in cands:
                if bucket == prev_bucket:
                    continue
                stored_key, _ = self._read(bucket)
                if stored_key is None:
                    self._write(bucket, cur_key, cur_value)
                    self._n_main += 1
                    return InsertOutcome(
                        InsertStatus.STORED, kicks=kicks, copies=1, collided=True
                    )
        self.events.note_failure(len(self) + 1)
        return self._handle_failure(k, value, cur_key, cur_value, kicks, moves)

    def _insert_bfs(self, k: Key, value: Any, cands: List[int]) -> InsertOutcome:
        """Breadth-first search for the shortest eviction path.

        Nodes are occupied buckets; expanding a node reads the occupant's
        alternative buckets.  ``maxloop`` bounds the number of expansions.
        """
        parents: Dict[int, Optional[int]] = {bucket: None for bucket in cands}
        queue: List[int] = list(cands)
        expansions = 0
        while queue and expansions < self.maxloop:
            bucket = queue.pop(0)
            occupant = self._keys[bucket]
            assert occupant is not None
            expansions += 1
            for alt in self._candidates(occupant):
                if alt == bucket or alt in parents:
                    continue
                stored_key, _ = self._read(alt)
                parents[alt] = bucket
                if stored_key is None:
                    self._apply_bfs_path(k, value, alt, parents)
                    self._n_main += 1
                    kicks = self._path_length(alt, parents)
                    self.total_kicks += kicks
                    return InsertOutcome(
                        InsertStatus.STORED, kicks=kicks, copies=1, collided=True
                    )
                queue.append(alt)
        self.events.note_failure(len(self) + 1)
        # BFS commits no moves before finding a hole, so there is nothing to
        # roll back: the displaced item is the new one itself.
        return self._handle_failure(k, value, k, value, expansions, moves=[])

    def _path_length(self, leaf: int, parents: Dict[int, Optional[int]]) -> int:
        length = 0
        bucket: Optional[int] = leaf
        while parents[bucket] is not None:
            length += 1
            bucket = parents[bucket]
        return length

    def _apply_bfs_path(
        self, k: Key, value: Any, hole: int, parents: Dict[int, Optional[int]]
    ) -> None:
        """Shift occupants toward the hole, then drop the new item in the root."""
        path: List[int] = [hole]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        # path = [hole, ..., root]; move root-ward occupants outward starting
        # nearest the hole so no item is ever overwritten before moving.
        for i in range(len(path) - 1):
            src = path[i + 1]
            dst = path[i]
            self._write(dst, self._keys[src], self._values[src])
        self._write(path[-1], k, value)

    def _handle_failure(
        self,
        original_key: Key,
        original_value: Any,
        displaced_key: Key,
        displaced_value: Any,
        kicks: int,
        moves: List[Tuple[int, Key, Any]],
    ) -> InsertOutcome:
        if self._in_rehash:
            self._rehash_overflow.append((displaced_key, displaced_value))
            return InsertOutcome(
                InsertStatus.STORED, kicks=kicks, copies=1, collided=True
            )
        if self._stash is not None:
            if self._stash.full:
                self._retry_stash()
            if not self._stash.full:
                # The original item is in the table (if any kick happened)
                # and the displaced one is in the stash, so the distinct
                # main-table count is net unchanged.
                self._stash.add(displaced_key, displaced_value)
                return InsertOutcome(InsertStatus.STASHED, kicks=kicks, collided=True)
            # Roll the kick chain back so no stored item is lost, then give
            # up — a real CHS deployment would have to rehash here.
            for bucket, old_key, old_value in reversed(moves):
                self._write(bucket, old_key, old_value)
            raise TableFullError("on-chip stash full and no item could re-enter")
        if self.on_failure is FailurePolicy.REHASH:
            self._rehash_with(displaced_key, displaced_value)
            return InsertOutcome(
                InsertStatus.STORED, kicks=kicks, copies=1, collided=True
            )
        # FAIL: undo the kick chain so the table is exactly as before.
        for bucket, old_key, old_value in reversed(moves):
            self._write(bucket, old_key, old_value)
        return InsertOutcome(InsertStatus.FAILED, kicks=kicks, collided=True)

    def _retry_stash(self) -> None:
        """Try to push stashed items back into the main table (CHS behaviour)."""
        for key, value in self._stash.pop_all():
            outcome = self._reinsert_without_stash(key, value)
            if not outcome:
                self._stash.add(key, value)

    def _reinsert_without_stash(self, k: Key, value: Any) -> bool:
        cands = self._candidates(k)
        for bucket in cands:
            stored_key, _ = self._read(bucket)
            if stored_key is None:
                self._write(bucket, k, value)
                self._n_main += 1
                return True
        return False

    # ------------------------------------------------------------------
    # rehashing
    # ------------------------------------------------------------------

    def _drain_main(self) -> List[Tuple[Key, Any]]:
        items: List[Tuple[Key, Any]] = []
        for bucket in range(self.capacity):
            if self._keys[bucket] is not None:
                self.mem.offchip_read("rehash-drain")
                items.append((self._keys[bucket], self._values[bucket]))
        self._n_main = 0
        return items

    def _rehash_with(self, key: Key, value: Any) -> None:
        pending: List[Tuple[Key, Any]] = [(key, value)]
        for _ in range(self._max_rehash_attempts):
            self.rehash_count += 1
            pending = self._drain_main() + pending
            self.n_buckets = max(
                self.n_buckets + 1, int(self.n_buckets * self._growth_factor)
            )
            self._seed += 1
            self._init_storage()
            self._rehash_overflow = []
            self._in_rehash = True
            try:
                for item_key, item_value in pending:
                    self._insert_canonical(item_key, item_value)
            finally:
                self._in_rehash = False
            if not self._rehash_overflow:
                return
            pending = list(self._rehash_overflow)
        raise TableFullError(
            f"rehashing failed {self._max_rehash_attempts} times in a row"
        )

    # ------------------------------------------------------------------
    # lookup / delete / update
    # ------------------------------------------------------------------

    def lookup(self, key: KeyLike) -> LookupOutcome:
        steps = self.lookup_steps(key)
        while True:
            try:
                next(steps)
            except StopIteration as stop:
                return stop.value

    def lookup_steps(self, key: KeyLike):
        """Generator form of :meth:`lookup` (yields before each off-chip
        read); used by the batch pipeline in :mod:`repro.core.batch`."""
        k = self._canonical(key)
        buckets_read = 0
        for bucket in self._candidates(k):
            yield "bucket"
            stored_key, stored_value = self._read(bucket)
            buckets_read += 1
            if stored_key == k:
                return LookupOutcome(
                    found=True, value=stored_value, buckets_read=buckets_read
                )
        if self._stash is not None:
            found, value = self._stash.lookup(k)
            return LookupOutcome(
                found=found,
                value=value if found else None,
                from_stash=found,
                checked_stash=True,
                buckets_read=buckets_read,
            )
        return LookupOutcome(found=False, buckets_read=buckets_read)

    def delete(self, key: KeyLike) -> DeleteOutcome:
        k = self._canonical(key)
        for bucket in self._candidates(k):
            stored_key, _ = self._read(bucket)
            if stored_key == k:
                self._write(bucket, None, None)
                self._n_main -= 1
                return DeleteOutcome(deleted=True, copies_removed=1)
        if self._stash is not None and self._stash.delete(k):
            return DeleteOutcome(
                deleted=True, copies_removed=1, from_stash=True, checked_stash=True
            )
        return DeleteOutcome(deleted=False)

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        k = self._canonical(key)
        for bucket in self._candidates(k):
            stored_key, _ = self._read(bucket)
            if stored_key == k:
                self._write(bucket, k, value)
                return InsertOutcome(InsertStatus.UPDATED, copies=1)
        if self._stash is not None and self._stash.delete(k):
            self._stash.add(k, value)
            return InsertOutcome(InsertStatus.UPDATED, copies=1)
        return None

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for bucket in range(self.capacity):
            if self._keys[bucket] is not None:
                yield self._keys[bucket], self._values[bucket]
        if self._stash is not None:
            yield from self._stash.items()
