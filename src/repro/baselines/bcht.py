"""BCHT: blocked cuckoo hash table [18] — the paper's blocked baseline.

Single-copy, d hash functions, l slots per bucket.  One off-chip access
retrieves or writes a whole bucket.  The set-associativity among slots
raises the achievable load ratio well past single-slot cuckoo hashing; the
paper pairs it against B-McCuckoo.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

from ..core.config import FailurePolicy
from ..core.errors import ConfigurationError, TableFullError
from ..core.interface import HashTable
from ..core.results import DeleteOutcome, InsertOutcome, InsertStatus, LookupOutcome
from ..core.stash import OnChipStash
from ..hashing import DEFAULT_FAMILY, HashFamily, Key, KeyLike
from ..memory.model import MemoryModel


class BCHT(HashTable):
    """Blocked cuckoo hash table (d hashes, l slots per bucket, one copy)."""

    name = "BCHT"

    def __init__(
        self,
        n_buckets: int,
        d: int = 3,
        slots: int = 3,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        maxloop: int = 500,
        on_failure: FailurePolicy = FailurePolicy.FAIL,
        stash_capacity: int = 4,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        super().__init__(mem)
        if n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        if d < 2:
            raise ConfigurationError("cuckoo hashing needs d >= 2")
        if slots < 1:
            raise ConfigurationError("slots must be positive")
        self.d = d
        self.slots = slots
        self.n_buckets = n_buckets
        self.maxloop = maxloop
        self.on_failure = on_failure
        self._family = family or DEFAULT_FAMILY
        self._functions = self._family.functions(d, seed)
        self._rng = random.Random(seed ^ 0xBC47)
        total = d * n_buckets * slots
        self._keys: List[Optional[Key]] = [None] * total
        self._values: List[Any] = [None] * total
        self._stash: Optional[OnChipStash] = None
        if on_failure is FailurePolicy.STASH:
            self._stash = OnChipStash(stash_capacity, self.mem)
        elif on_failure is FailurePolicy.REHASH:
            raise ConfigurationError("BCHT supports FailurePolicy.FAIL or STASH")
        self._n_main = 0
        self.total_kicks = 0

    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.d * self.n_buckets * self.slots

    def __len__(self) -> int:
        return self._n_main + (len(self._stash) if self._stash is not None else 0)

    @property
    def main_items(self) -> int:
        return self._n_main

    @property
    def stash(self) -> Optional[OnChipStash]:
        return self._stash

    def _candidates(self, key: Key) -> List[int]:
        return [
            table * self.n_buckets + fn.bucket(key, self.n_buckets)
            for table, fn in enumerate(self._functions)
        ]

    def _slot_index(self, bucket: int, slot: int) -> int:
        return bucket * self.slots + slot

    def _read_bucket(self, bucket: int) -> List[Optional[Key]]:
        self.mem.offchip_read("bucket")
        base = self._slot_index(bucket, 0)
        return self._keys[base : base + self.slots]

    def _write_slot(self, bucket: int, slot: int, key: Optional[Key], value: Any) -> None:
        self.mem.offchip_write("bucket")
        index = self._slot_index(bucket, slot)
        self._keys[index] = key
        self._values[index] = value

    def _free_slot(self, bucket_keys: List[Optional[Key]]) -> Optional[int]:
        for slot, stored in enumerate(bucket_keys):
            if stored is None:
                return slot
        return None

    # ------------------------------------------------------------------

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        k = self._canonical(key)
        cands = self._candidates(k)
        for bucket in cands:
            slot = self._free_slot(self._read_bucket(bucket))
            if slot is not None:
                self._write_slot(bucket, slot, k, value)
                self._n_main += 1
                return InsertOutcome(InsertStatus.STORED, copies=1)
        self.events.note_collision(len(self) + 1)
        return self._insert_random_walk(k, value, cands)

    def _insert_random_walk(
        self, k: Key, value: Any, cands: List[int]
    ) -> InsertOutcome:
        moves: List[Tuple[int, int, Key, Any]] = []
        cur_key, cur_value = k, value
        prev_bucket: Optional[int] = None
        kicks = 0
        while kicks < self.maxloop:
            choices = [bucket for bucket in cands if bucket != prev_bucket]
            victim_bucket = choices[self._rng.randrange(len(choices))]
            victim_slot = self._rng.randrange(self.slots)
            index = self._slot_index(victim_bucket, victim_slot)
            victim_key, victim_value = self._keys[index], self._values[index]
            assert victim_key is not None
            self._write_slot(victim_bucket, victim_slot, cur_key, cur_value)
            moves.append((victim_bucket, victim_slot, victim_key, victim_value))
            kicks += 1
            self.total_kicks += 1
            cur_key, cur_value = victim_key, victim_value
            prev_bucket = victim_bucket
            cands = self._candidates(cur_key)
            for bucket in cands:
                if bucket == prev_bucket:
                    continue
                slot = self._free_slot(self._read_bucket(bucket))
                if slot is not None:
                    self._write_slot(bucket, slot, cur_key, cur_value)
                    self._n_main += 1
                    return InsertOutcome(
                        InsertStatus.STORED, kicks=kicks, copies=1, collided=True
                    )
        self.events.note_failure(len(self) + 1)
        if self._stash is not None:
            if not self._stash.full:
                self._stash.add(cur_key, cur_value)
                return InsertOutcome(InsertStatus.STASHED, kicks=kicks, collided=True)
            raise TableFullError("on-chip stash full")
        for bucket, slot, old_key, old_value in reversed(moves):
            self._write_slot(bucket, slot, old_key, old_value)
        return InsertOutcome(InsertStatus.FAILED, kicks=kicks, collided=True)

    # ------------------------------------------------------------------

    def lookup(self, key: KeyLike) -> LookupOutcome:
        k = self._canonical(key)
        buckets_read = 0
        for bucket in self._candidates(k):
            bucket_keys = self._read_bucket(bucket)
            buckets_read += 1
            for slot, stored in enumerate(bucket_keys):
                if stored == k:
                    value = self._values[self._slot_index(bucket, slot)]
                    return LookupOutcome(
                        found=True, value=value, buckets_read=buckets_read
                    )
        if self._stash is not None:
            found, value = self._stash.lookup(k)
            return LookupOutcome(
                found=found,
                value=value if found else None,
                from_stash=found,
                checked_stash=True,
                buckets_read=buckets_read,
            )
        return LookupOutcome(found=False, buckets_read=buckets_read)

    def delete(self, key: KeyLike) -> DeleteOutcome:
        k = self._canonical(key)
        for bucket in self._candidates(k):
            bucket_keys = self._read_bucket(bucket)
            for slot, stored in enumerate(bucket_keys):
                if stored == k:
                    self._write_slot(bucket, slot, None, None)
                    self._n_main -= 1
                    return DeleteOutcome(deleted=True, copies_removed=1)
        if self._stash is not None and self._stash.delete(k):
            return DeleteOutcome(
                deleted=True, copies_removed=1, from_stash=True, checked_stash=True
            )
        return DeleteOutcome(deleted=False)

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        k = self._canonical(key)
        for bucket in self._candidates(k):
            bucket_keys = self._read_bucket(bucket)
            for slot, stored in enumerate(bucket_keys):
                if stored == k:
                    self._write_slot(bucket, slot, k, value)
                    return InsertOutcome(InsertStatus.UPDATED, copies=1)
        if self._stash is not None and self._stash.delete(k):
            self._stash.add(k, value)
            return InsertOutcome(InsertStatus.UPDATED, copies=1)
        return None

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for index in range(self.capacity):
            if self._keys[index] is not None:
                yield self._keys[index], self._values[index]
        if self._stash is not None:
            yield from self._stash.items()
