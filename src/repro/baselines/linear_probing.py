"""Linear probing — the other classical comparator from the introduction.

Open addressing with step-1 probing and tombstone deletion.  Probe
sequences lengthen sharply as load grows, illustrating the degradation the
paper's introduction attributes to traditional collision resolution.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.interface import HashTable
from ..core.results import DeleteOutcome, InsertOutcome, InsertStatus, LookupOutcome
from ..hashing import DEFAULT_FAMILY, HashFamily, Key, KeyLike
from ..memory.model import MemoryModel

_TOMBSTONE = object()


class LinearProbingTable(HashTable):
    """Open-addressed hash table with linear probing."""

    name = "LinearProbing"

    def __init__(
        self,
        n_buckets: int,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        super().__init__(mem)
        if n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        self.n_buckets = n_buckets
        self._hash = (family or DEFAULT_FAMILY).functions(1, seed)[0]
        self._keys: List[Any] = [None] * n_buckets
        self._values: List[Any] = [None] * n_buckets
        self._n_items = 0

    @property
    def capacity(self) -> int:
        return self.n_buckets

    def __len__(self) -> int:
        return self._n_items

    def _probe_from(self, k: Key) -> Iterator[int]:
        start = self._hash.bucket(k, self.n_buckets)
        for step in range(self.n_buckets):
            yield (start + step) % self.n_buckets

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        k = self._canonical(key)
        probes = 0
        for bucket in self._probe_from(k):
            self.mem.offchip_read("probe")
            probes += 1
            if self._keys[bucket] is None or self._keys[bucket] is _TOMBSTONE:
                self.mem.offchip_write("store")
                self._keys[bucket] = k
                self._values[bucket] = value
                self._n_items += 1
                return InsertOutcome(
                    InsertStatus.STORED, copies=1, collided=probes > 1
                )
        self.events.note_failure(len(self) + 1)
        return InsertOutcome(InsertStatus.FAILED, collided=True)

    def lookup(self, key: KeyLike) -> LookupOutcome:
        k = self._canonical(key)
        reads = 0
        for bucket in self._probe_from(k):
            self.mem.offchip_read("probe")
            reads += 1
            stored = self._keys[bucket]
            if stored is None:
                return LookupOutcome(found=False, buckets_read=reads)
            if stored is not _TOMBSTONE and stored == k:
                return LookupOutcome(
                    found=True, value=self._values[bucket], buckets_read=reads
                )
        return LookupOutcome(found=False, buckets_read=reads)

    def delete(self, key: KeyLike) -> DeleteOutcome:
        k = self._canonical(key)
        for bucket in self._probe_from(k):
            self.mem.offchip_read("probe")
            stored = self._keys[bucket]
            if stored is None:
                return DeleteOutcome(deleted=False)
            if stored is not _TOMBSTONE and stored == k:
                self.mem.offchip_write("tombstone")
                self._keys[bucket] = _TOMBSTONE
                self._values[bucket] = None
                self._n_items -= 1
                return DeleteOutcome(deleted=True, copies_removed=1)
        return DeleteOutcome(deleted=False)

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        k = self._canonical(key)
        for bucket in self._probe_from(k):
            self.mem.offchip_read("probe")
            stored = self._keys[bucket]
            if stored is None:
                return None
            if stored is not _TOMBSTONE and stored == k:
                self.mem.offchip_write("store")
                self._values[bucket] = value
                return InsertOutcome(InsertStatus.UPDATED, copies=1)
        return None

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for bucket in range(self.n_buckets):
            stored = self._keys[bucket]
            if stored is not None and stored is not _TOMBSTONE:
                yield stored, self._values[bucket]
