"""Chaining hash table — one of the introduction's classical comparators.

Collisions are resolved by appending to a per-bucket linked chain.  Lookup
cost grows with load (the chain must be walked), which is exactly the
behaviour cuckoo hashing's worst-case-constant lookup is designed to avoid;
the quickstart example contrasts the two.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.interface import HashTable
from ..core.results import DeleteOutcome, InsertOutcome, InsertStatus, LookupOutcome
from ..hashing import DEFAULT_FAMILY, HashFamily, Key, KeyLike
from ..memory.model import MemoryModel


class ChainedHashTable(HashTable):
    """Separate-chaining hash table with off-chip chain nodes."""

    name = "Chained"

    def __init__(
        self,
        n_buckets: int,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        super().__init__(mem)
        if n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        self.n_buckets = n_buckets
        self._hash = (family or DEFAULT_FAMILY).functions(1, seed)[0]
        self._buckets: List[List[Tuple[Key, Any]]] = [[] for _ in range(n_buckets)]
        self._n_items = 0

    @property
    def capacity(self) -> int:
        # Chaining has no hard capacity; the bucket count doubles as the
        # nominal capacity so load_ratio matches the usual n/m definition.
        return self.n_buckets

    def __len__(self) -> int:
        return self._n_items

    def _chain(self, k: Key) -> List[Tuple[Key, Any]]:
        return self._buckets[self._hash.bucket(k, self.n_buckets)]

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        k = self._canonical(key)
        chain = self._chain(k)
        self.mem.offchip_read("chain-head")
        self.mem.offchip_write("chain-append")
        chain.append((k, value))
        self._n_items += 1
        return InsertOutcome(InsertStatus.STORED, copies=1)

    def lookup(self, key: KeyLike) -> LookupOutcome:
        k = self._canonical(key)
        chain = self._chain(k)
        reads = 0
        for stored_key, value in chain:
            self.mem.offchip_read("chain-node")
            reads += 1
            if stored_key == k:
                return LookupOutcome(found=True, value=value, buckets_read=reads)
        if not chain:
            self.mem.offchip_read("chain-head")
            reads += 1
        return LookupOutcome(found=False, buckets_read=reads)

    def delete(self, key: KeyLike) -> DeleteOutcome:
        k = self._canonical(key)
        chain = self._chain(k)
        for position, (stored_key, _) in enumerate(chain):
            self.mem.offchip_read("chain-node")
            if stored_key == k:
                chain.pop(position)
                self.mem.offchip_write("chain-unlink")
                self._n_items -= 1
                return DeleteOutcome(deleted=True, copies_removed=1)
        return DeleteOutcome(deleted=False)

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        k = self._canonical(key)
        chain = self._chain(k)
        for position, (stored_key, _) in enumerate(chain):
            self.mem.offchip_read("chain-node")
            if stored_key == k:
                chain[position] = (k, value)
                self.mem.offchip_write("chain-node")
                return InsertOutcome(InsertStatus.UPDATED, copies=1)
        return None

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for chain in self._buckets:
            yield from chain

    @property
    def max_chain_length(self) -> int:
        return max((len(chain) for chain in self._buckets), default=0)
