"""Baseline hash tables the paper compares against or discusses (§II)."""

from .bcht import BCHT
from .bloomfront import BloomFrontedCuckoo
from .chained import ChainedHashTable
from .chs import CHS
from .cuckoo import CuckooTable
from .linear_probing import LinearProbingTable
from .smartcuckoo import SmartCuckoo

__all__ = [
    "BCHT",
    "BloomFrontedCuckoo",
    "CHS",
    "ChainedHashTable",
    "CuckooTable",
    "LinearProbingTable",
    "SmartCuckoo",
]
