"""Bloom-fronted cuckoo table — an EMOMA/DEHT-style comparator (§II.B).

EMOMA [24] and DEHT [25] attack the same problem as McCuckoo's counters —
avoiding off-chip probes — by keeping an *on-chip Bloom filter* (or
discriminator vectors) in front of the off-chip table.  This baseline
captures that design point: a standard cuckoo table whose inserted keys are
mirrored into an on-chip Bloom filter that pre-screens every lookup.

It exists so the paper's second contribution can be measured: McCuckoo's
2-bit counter array should achieve comparable (better, on non-existing
queries at matched memory) screening with *less on-chip memory* than a
Bloom filter sized for a useful false-positive rate, while additionally
accelerating insertion and deletion — which a Bloom front cannot do.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from ..core.config import FailurePolicy
from ..core.results import DeleteOutcome, InsertOutcome, LookupOutcome
from ..filters.bloom import BloomFilter
from ..hashing import HashFamily, Key, KeyLike
from ..memory.model import MemoryModel
from .cuckoo import CuckooTable


class BloomFrontedCuckoo(CuckooTable):
    """Standard d-ary cuckoo table behind an on-chip Bloom pre-screen.

    The filter is sized for ``expected_items`` at ``fp_rate``.  Lookups
    consult it first (charged as ``k`` on-chip reads); a negative answers
    immediately, a positive falls through to the normal off-chip probes.
    Deletions cannot remove filter bits (Bloom filters do not support
    deletion), so the screen degrades under churn — one of the asymmetries
    the paper holds against this class of design.
    """

    name = "BloomCuckoo"

    def __init__(
        self,
        n_buckets: int,
        d: int = 3,
        expected_items: Optional[int] = None,
        fp_rate: float = 0.01,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        maxloop: int = 500,
        on_failure: FailurePolicy = FailurePolicy.FAIL,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        super().__init__(
            n_buckets,
            d=d,
            family=family,
            seed=seed,
            maxloop=maxloop,
            strategy="random",
            on_failure=on_failure,
            mem=mem,
        )
        if expected_items is None:
            expected_items = self.capacity
        self._filter = BloomFilter.for_capacity(
            expected_items, fp_rate, family=family, seed=seed ^ 0xB100
        )

    @property
    def bloom(self) -> BloomFilter:
        return self._filter

    @property
    def onchip_bytes(self) -> int:
        """On-chip SRAM the Bloom front occupies (the comparison metric
        against McCuckoo's 2-bit-per-bucket counter array)."""
        return (self._filter.m_bits + 7) // 8

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        outcome = super().put(key, value)
        if not outcome.failed:
            k = self._canonical(key)
            self._filter.add(k)
            self.mem.onchip_write("bloom", count=self._filter.k_hashes)
        return outcome

    def lookup(self, key: KeyLike) -> LookupOutcome:
        k = self._canonical(key)
        self.mem.onchip_read("bloom", count=self._filter.k_hashes)
        if k not in self._filter:
            return LookupOutcome(found=False)
        return super().lookup(key)

    def delete(self, key: KeyLike) -> DeleteOutcome:
        # The table entry goes away; the filter bits cannot (no deletion in
        # a plain Bloom filter), so future lookups of this key pay the
        # off-chip probes again — the screen only ever loses selectivity.
        return super().delete(key)

    def items(self) -> Iterator[Tuple[Key, Any]]:
        return super().items()
