"""CHS: Cuckoo Hashing with a (small, on-chip) Stash [22].

The classic failure-handling baseline the paper contrasts its off-chip
stash against: a stash of ~4 entries kept on-chip because it must be
scanned on *every* lookup that misses the main table.  Functionally this is
:class:`~repro.baselines.cuckoo.CuckooTable` with ``FailurePolicy.STASH``;
the class exists so experiments can name the scheme directly.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import FailurePolicy
from ..hashing import HashFamily
from ..memory.model import MemoryModel
from .cuckoo import CuckooTable


class CHS(CuckooTable):
    """d-ary cuckoo table backed by a small on-chip stash."""

    name = "CHS"

    def __init__(
        self,
        n_buckets: int,
        d: int = 3,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        maxloop: int = 500,
        stash_capacity: int = 4,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        super().__init__(
            n_buckets,
            d=d,
            family=family,
            seed=seed,
            maxloop=maxloop,
            strategy="random",
            on_failure=FailurePolicy.STASH,
            stash_capacity=stash_capacity,
            mem=mem,
        )
