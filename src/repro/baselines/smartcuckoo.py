"""SmartCuckoo (USENIX ATC'17, the paper's [15]): loop prediction for d=2.

SmartCuckoo represents a 2-hash cuckoo table as a *directed pseudoforest*:
each occupied bucket is a vertex, each item an edge between its two
candidate buckets, directed from the bucket it occupies toward its
alternative.  A connected component of an undirected graph with as many
edges as vertices contains exactly one cycle; in cuckoo terms, a component
is **maximal** once it carries a cycle — every bucket in it is full — and
inserting another item whose endpoints both land in maximal subgraphs must
fail.  Tracking component sizes and edge counts in a union-find therefore
*predetermines* endless kick-out loops without a single probe.

The paper positions McCuckoo against this line of work (SmartCuckoo only
handles d = 2 and pays an auxiliary structure); this implementation exists
as the comparator for the walk-free failure-detection experiments.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.interface import HashTable
from ..core.results import DeleteOutcome, InsertOutcome, InsertStatus, LookupOutcome
from ..hashing import DEFAULT_FAMILY, HashFamily, Key, KeyLike
from ..memory.model import MemoryModel


class _UnionFind:
    """Union-find over buckets, tracking vertex and edge counts per set."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n
        self.edges = [0] * n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def add_edge(self, a: int, b: int) -> int:
        """Connect a-b with one edge; returns the merged root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            self.edges[ra] += 1
            return ra
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.edges[ra] += self.edges[rb] + 1
        return ra

    def is_maximal(self, x: int) -> bool:
        """A component with edges >= vertices carries a cycle: no bucket in
        it can absorb another item."""
        root = self.find(x)
        return self.edges[root] >= self.size[root]


class SmartCuckoo(HashTable):
    """2-hash single-copy cuckoo table with pseudoforest loop prediction.

    Insertion first consults the on-chip union-find: if both candidate
    components are maximal the insertion is rejected *immediately* — zero
    kicks, zero off-chip probes — where classic cuckoo hashing would burn a
    full ``maxloop`` walk before giving up.  Deletion is not supported
    (removing edges from a union-find is not incremental), matching the
    published system's insert/lookup focus.
    """

    name = "SmartCuckoo"

    def __init__(
        self,
        n_buckets: int,
        family: Optional[HashFamily] = None,
        seed: int = 0,
        maxloop: int = 500,
        mem: Optional[MemoryModel] = None,
    ) -> None:
        super().__init__(mem)
        if n_buckets <= 0:
            raise ConfigurationError("n_buckets must be positive")
        self.d = 2
        self.n_buckets = n_buckets
        self.maxloop = maxloop
        self._functions = (family or DEFAULT_FAMILY).functions(2, seed)
        total = 2 * n_buckets
        self._keys: List[Optional[Key]] = [None] * total
        self._values: List[Any] = [None] * total
        self._forest = _UnionFind(total)
        self._n_items = 0
        self.total_kicks = 0
        self.predicted_failures = 0
        self.walked_failures = 0

    @property
    def capacity(self) -> int:
        return 2 * self.n_buckets

    def __len__(self) -> int:
        return self._n_items

    def _candidates(self, key: Key) -> List[int]:
        return [
            table * self.n_buckets + fn.bucket(key, self.n_buckets)
            for table, fn in enumerate(self._functions)
        ]

    def _read(self, bucket: int) -> Tuple[Optional[Key], Any]:
        self.mem.offchip_read("bucket")
        return self._keys[bucket], self._values[bucket]

    def _write(self, bucket: int, key: Key, value: Any) -> None:
        self.mem.offchip_write("bucket")
        self._keys[bucket] = key
        self._values[bucket] = value

    def put(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        k = self._canonical(key)
        b1, b2 = self._candidates(k)
        # on-chip pseudoforest consultation
        self.mem.onchip_read("forest", count=2)
        if self._forest.is_maximal(b1) and self._forest.is_maximal(b2):
            # both components already carry a cycle: provably unplaceable
            self.predicted_failures += 1
            self.events.note_failure(len(self) + 1)
            return InsertOutcome(InsertStatus.FAILED, collided=True)
        for bucket in (b1, b2):
            stored, _ = self._read(bucket)
            if stored is None:
                self._write(bucket, k, value)
                self._commit_edge(b1, b2)
                return InsertOutcome(InsertStatus.STORED, copies=1)
        self.events.note_collision(len(self) + 1)
        return self._insert_with_kicks(k, value, b1, b2)

    def _commit_edge(self, b1: int, b2: int) -> None:
        self._forest.add_edge(b1, b2)
        self.mem.onchip_write("forest")
        self._n_items += 1

    def _insert_with_kicks(
        self, k: Key, value: Any, b1: int, b2: int
    ) -> InsertOutcome:
        # The prediction said a slot exists somewhere in a non-maximal
        # component, so the walk is guaranteed to terminate; the walk stays
        # bounded by maxloop anyway as a safety net.
        moves: List[Tuple[int, Key, Any]] = []
        cur_key, cur_value = k, value
        bucket = b2 if self._forest.is_maximal(b1) else b1
        kicks = 0
        while kicks < self.maxloop:
            victim_key, victim_value = self._keys[bucket], self._values[bucket]
            assert victim_key is not None
            self._write(bucket, cur_key, cur_value)
            moves.append((bucket, victim_key, victim_value))
            kicks += 1
            self.total_kicks += 1
            cur_key, cur_value = victim_key, victim_value
            alt = [c for c in self._candidates(cur_key) if c != bucket][0]
            stored, _ = self._read(alt)
            if stored is None:
                self._write(alt, cur_key, cur_value)
                self._commit_edge(b1, b2)
                return InsertOutcome(
                    InsertStatus.STORED, kicks=kicks, copies=1, collided=True
                )
            bucket = alt
        # should be unreachable when the prediction is sound; roll back
        for bucket, old_key, old_value in reversed(moves):
            self._write(bucket, old_key, old_value)
        self.walked_failures += 1
        self.events.note_failure(len(self) + 1)
        return InsertOutcome(InsertStatus.FAILED, kicks=kicks, collided=True)

    def lookup(self, key: KeyLike) -> LookupOutcome:
        k = self._canonical(key)
        buckets_read = 0
        for bucket in self._candidates(k):
            stored, value = self._read(bucket)
            buckets_read += 1
            if stored == k:
                return LookupOutcome(found=True, value=value,
                                     buckets_read=buckets_read)
        return LookupOutcome(found=False, buckets_read=buckets_read)

    def delete(self, key: KeyLike) -> DeleteOutcome:
        from ..core.errors import UnsupportedOperationError

        raise UnsupportedOperationError(
            "SmartCuckoo's pseudoforest does not support edge removal"
        )

    def try_update(self, key: KeyLike, value: Any) -> Optional[InsertOutcome]:
        k = self._canonical(key)
        for bucket in self._candidates(k):
            stored, _ = self._read(bucket)
            if stored == k:
                self._write(bucket, k, value)
                return InsertOutcome(InsertStatus.UPDATED, copies=1)
        return None

    def items(self) -> Iterator[Tuple[Key, Any]]:
        for bucket in range(self.capacity):
            if self._keys[bucket] is not None:
                yield self._keys[bucket], self._values[bucket]

    @property
    def onchip_bytes(self) -> int:
        """Rough footprint of the auxiliary pseudoforest (parent + counts),
        the cost the paper holds against this approach."""
        import math

        per_entry_bits = 3 * max(1, math.ceil(math.log2(self.capacity)))
        return (self.capacity * per_entry_bits + 7) // 8
