"""Standard Bloom filter.

§III.B.2 of the paper observes that McCuckoo's on-chip counters, viewed as
zero/non-zero, *are* a Bloom filter over the inserted key set: every
insertion leaves all d candidate counters non-zero, so a zero counter proves
absence.  This module provides the classic structure both as a library
primitive and as the reference the equivalence tests compare against.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from ..hashing import DEFAULT_FAMILY, HashFamily, Key


class BloomFilter:
    """Fixed-size Bloom filter over 64-bit keys.

    ``m`` bits, ``k`` hash functions.  Supports only ``add`` and membership;
    deletions are intentionally unsupported (the paper leans on exactly this
    property when discussing stale stash flags).
    """

    def __init__(
        self,
        m_bits: int,
        k_hashes: int,
        family: Optional[HashFamily] = None,
        seed: int = 0,
    ) -> None:
        if m_bits <= 0:
            raise ValueError("m_bits must be positive")
        if k_hashes <= 0:
            raise ValueError("k_hashes must be positive")
        self.m_bits = m_bits
        self.k_hashes = k_hashes
        self._bits = bytearray((m_bits + 7) // 8)
        self._functions = (family or DEFAULT_FAMILY).functions(k_hashes, seed)
        self._count = 0

    @classmethod
    def for_capacity(
        cls,
        n_items: int,
        fp_rate: float,
        family: Optional[HashFamily] = None,
        seed: int = 0,
    ) -> "BloomFilter":
        """Size a filter for ``n_items`` at the target false-positive rate."""
        if n_items <= 0:
            raise ValueError("n_items must be positive")
        if not 0.0 < fp_rate < 1.0:
            raise ValueError("fp_rate must be in (0, 1)")
        m = math.ceil(-n_items * math.log(fp_rate) / (math.log(2) ** 2))
        k = max(1, round(m / n_items * math.log(2)))
        return cls(m, k, family=family, seed=seed)

    def _positions(self, key: Key) -> Iterable[int]:
        for fn in self._functions:
            yield fn.bucket(key, self.m_bits)

    def add(self, key: Key) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self._count += 1

    def __contains__(self, key: Key) -> bool:
        return all(self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key))

    def __len__(self) -> int:
        return self._count

    @property
    def bits_set(self) -> int:
        return sum(bin(byte).count("1") for byte in self._bits)

    def expected_fp_rate(self) -> float:
        """Theoretical false-positive rate at the current fill."""
        fill = self.bits_set / self.m_bits
        return fill**self.k_hashes

    def clear(self) -> None:
        self._bits = bytearray(len(self._bits))
        self._count = 0
