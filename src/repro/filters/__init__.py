"""Filter substrates: Bloom filter and cuckoo filter."""

from .bloom import BloomFilter
from .cuckoo_filter import CuckooFilter

__all__ = ["BloomFilter", "CuckooFilter"]
