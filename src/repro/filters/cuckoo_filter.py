"""Cuckoo filter (Fan et al., CoNEXT 2014 — the paper's reference [12]).

An approximate-membership structure built from cuckoo hashing itself:
buckets hold small fingerprints and partial-key cuckoo hashing derives an
item's alternate bucket from its *fingerprint* (``alt = bucket XOR
hash(fp)``), so relocation never needs the original key.  Included here as
the canonical downstream application of the cuckoo machinery this library
reproduces — and because the paper leans on the counters-as-Bloom analogy,
a real cuckoo filter makes a useful comparison point for the membership
benchmarks.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..hashing import Key, KeyLike, canonical_key
from ..hashing.splitmix import splitmix64


class CuckooFilter:
    """Partial-key cuckoo filter with b-slot buckets.

    Parameters
    ----------
    n_buckets:
        Number of buckets; rounded up to a power of two so the XOR
        alternate-bucket trick is a bijection.
    fingerprint_bits:
        Size of each stored fingerprint (1..32).  Larger fingerprints lower
        the false-positive rate (~ 2b / 2^f).
    slots_per_bucket:
        b in the original paper; 4 reaches ~95 % load.
    """

    def __init__(
        self,
        n_buckets: int,
        fingerprint_bits: int = 12,
        slots_per_bucket: int = 4,
        maxloop: int = 500,
        seed: int = 0,
    ) -> None:
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        if not 1 <= fingerprint_bits <= 32:
            raise ValueError("fingerprint_bits must be in 1..32")
        if slots_per_bucket < 1:
            raise ValueError("slots_per_bucket must be positive")
        if maxloop < 0:
            raise ValueError("maxloop must be non-negative")
        self.n_buckets = 1 << (n_buckets - 1).bit_length()
        self.fingerprint_bits = fingerprint_bits
        self.slots_per_bucket = slots_per_bucket
        self.maxloop = maxloop
        self._seed = seed
        self._rng = random.Random(seed ^ 0xF117E5)
        self._buckets: List[List[int]] = [[] for _ in range(self.n_buckets)]
        self._count = 0
        # one-entry victim cache, as in the reference implementation: holds
        # the fingerprint displaced by a failed relocation chain
        self._victim: Optional[tuple] = None  # (bucket, fingerprint)

    # -- hashing -----------------------------------------------------------

    def _fingerprint(self, key: Key) -> int:
        fp = splitmix64(key ^ self._seed) & ((1 << self.fingerprint_bits) - 1)
        return fp or 1  # 0 is reserved for "empty" in packed implementations

    def _bucket1(self, key: Key) -> int:
        return splitmix64(key + 0x9E3779B97F4A7C15 + self._seed) % self.n_buckets

    def _alt_bucket(self, bucket: int, fingerprint: int) -> int:
        return (bucket ^ splitmix64(fingerprint)) % self.n_buckets

    def _candidates(self, key: Key) -> tuple:
        fp = self._fingerprint(key)
        b1 = self._bucket1(key)
        return fp, b1, self._alt_bucket(b1, fp)

    # -- operations ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.n_buckets * self.slots_per_bucket

    @property
    def load_ratio(self) -> float:
        return self._count / self.capacity

    def __len__(self) -> int:
        return self._count

    def add(self, key: KeyLike) -> bool:
        """Insert; returns False when the filter is too full (the caller
        should rebuild bigger, as with a failed cuckoo insertion)."""
        if self._victim is not None:
            return False  # a prior failure must be resolved by rebuilding
        fp, b1, b2 = self._candidates(canonical_key(key))
        for bucket in (b1, b2):
            if len(self._buckets[bucket]) < self.slots_per_bucket:
                self._buckets[bucket].append(fp)
                self._count += 1
                return True
        # relocate fingerprints, partial-key style
        bucket = self._rng.choice((b1, b2))
        current = fp
        for _ in range(self.maxloop):
            slot = self._rng.randrange(self.slots_per_bucket)
            current, self._buckets[bucket][slot] = self._buckets[bucket][slot], current
            bucket = self._alt_bucket(bucket, current)
            if len(self._buckets[bucket]) < self.slots_per_bucket:
                self._buckets[bucket].append(current)
                self._count += 1
                return True
        # A fingerprint chain cannot be undone without the original keys;
        # park the displaced fingerprint in the victim cache (still queryable)
        # and report failure so the caller rebuilds a bigger filter.
        self._victim = (bucket, current)
        self._count += 1
        return False

    def __contains__(self, key: KeyLike) -> bool:
        fp, b1, b2 = self._candidates(canonical_key(key))
        if fp in self._buckets[b1] or fp in self._buckets[b2]:
            return True
        return self._victim is not None and self._victim[1] == fp and (
            self._victim[0] in (b1, b2)
        )

    def remove(self, key: KeyLike) -> bool:
        """Delete one copy of the key's fingerprint (cuckoo filters support
        deletion, unlike Bloom filters — but only of items actually added)."""
        fp, b1, b2 = self._candidates(canonical_key(key))
        for bucket in (b1, b2):
            if fp in self._buckets[bucket]:
                self._buckets[bucket].remove(fp)
                self._count -= 1
                return True
        if self._victim is not None and self._victim[1] == fp and (
            self._victim[0] in (b1, b2)
        ):
            self._victim = None
            self._count -= 1
            return True
        return False

    def expected_fp_rate(self) -> float:
        """Approximate false-positive probability at the current fill."""
        return min(
            1.0,
            2 * self.slots_per_bucket * self.load_ratio / (1 << self.fingerprint_bits),
        )

    @property
    def storage_bits(self) -> int:
        """Bits a packed implementation would occupy."""
        return self.capacity * self.fingerprint_bits
