"""Zipfian sampling for skewed workloads.

Real text corpora (such as the NYTimes bag-of-words collection the paper
uses) have Zipf-distributed word frequencies, and key-value query streams
are commonly modelled as Zipfian.  This sampler precomputes the CDF once
and draws by binary search, which is fast enough for the experiment sizes
used here.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence


class ZipfSampler:
    """Draws ranks in ``[0, n)`` with probability proportional to 1/(r+1)^s."""

    def __init__(self, n: int, s: float = 1.0, seed: int = 0) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if s < 0:
            raise ValueError("skew s must be non-negative")
        self.n = n
        self.s = s
        self._rng = random.Random(seed)
        weights = [1.0 / (rank + 1) ** s for rank in range(n)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: List[float] = []
        for weight in weights:
            cumulative += weight / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self) -> int:
        """One Zipf-distributed rank."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    def pmf(self, rank: int) -> float:
        """Probability of drawing ``rank`` (for distribution tests)."""
        if not 0 <= rank < self.n:
            raise IndexError("rank out of range")
        low = self._cdf[rank - 1] if rank else 0.0
        return self._cdf[rank] - low


def zipf_choices(items: Sequence, count: int, s: float = 1.0, seed: int = 0) -> List:
    """``count`` draws from ``items`` with Zipf-distributed popularity."""
    sampler = ZipfSampler(len(items), s=s, seed=seed)
    return [items[rank] for rank in sampler.sample_many(count)]
