"""Synthetic DocWords workload.

The paper's software evaluation inserts the NYTimes collection of the UCI
*Bag of Words* dataset: each record is a (DocID, WordID, count) triple, and
"the DocID and WordID are combined to form the key of each item".  The real
corpus is not redistributable here, so this module generates a statistically
faithful stand-in:

* a vocabulary of ``n_words`` word ids with Zipf-distributed frequencies
  (word frequency in news text is classically Zipfian, s ≈ 1);
* documents draw ``words_per_doc`` words from that distribution;
* each *distinct* (doc, word) pair becomes one item, keyed as
  ``(doc_id << 32) | word_id`` — the natural combination of the two ids.

The hash tables only ever see the resulting 64-bit keys, so what matters is
that the keys are distinct and plentiful, which this generator guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Set, Tuple

from ..hashing import Key
from .zipf import ZipfSampler


@dataclass(frozen=True)
class DocWordsConfig:
    """Shape of the synthetic corpus."""

    n_docs: int = 1000
    n_words: int = 20000
    words_per_doc: int = 120
    zipf_s: float = 1.0
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_docs <= 0 or self.n_words <= 0 or self.words_per_doc <= 0:
            raise ValueError("corpus dimensions must be positive")
        if self.n_words > 1 << 32 or self.n_docs > 1 << 32:
            raise ValueError("doc and word ids must fit in 32 bits")


def combine_ids(doc_id: int, word_id: int) -> Key:
    """Pack a (DocID, WordID) pair into the 64-bit table key."""
    if not 0 <= doc_id < 1 << 32:
        raise ValueError("doc_id out of 32-bit range")
    if not 0 <= word_id < 1 << 32:
        raise ValueError("word_id out of 32-bit range")
    return (doc_id << 32) | word_id


def split_key(key: Key) -> Tuple[int, int]:
    """Inverse of :func:`combine_ids`."""
    return key >> 32, key & 0xFFFFFFFF


def load_docwords_file(path: str, limit: int = 0) -> List[Key]:
    """Load keys from a real UCI *Bag of Words* ``docword.*.txt`` file.

    The format is three header lines (D, W, NNZ) followed by one
    ``docID wordID count`` triple per line.  Users who have the actual
    NYTimes collection the paper used can feed it straight into the
    experiments; everyone else uses :class:`DocWordsGenerator`.

    Doc and word ids are 1-based in the file and are kept as-is; each
    (doc, word) pair becomes one combined 64-bit key.  ``limit`` caps the
    number of keys (0 = all).
    """
    keys: List[Key] = []
    with open(path, "r", encoding="utf-8") as handle:
        header: List[int] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if len(header) < 3:
                header.append(int(line))
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed docword line: {line!r}")
            doc_id, word_id = int(parts[0]), int(parts[1])
            keys.append(combine_ids(doc_id, word_id))
            if limit and len(keys) >= limit:
                break
    if len(header) < 3:
        raise ValueError("file is missing the three D/W/NNZ header lines")
    return keys


class DocWordsGenerator:
    """Streams the distinct (doc, word) items of a synthetic corpus."""

    def __init__(self, config: DocWordsConfig = DocWordsConfig()) -> None:
        self.config = config

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """Distinct (doc_id, word_id) pairs, document by document.

        Every call restarts the corpus from scratch, so the stream is
        reproducible and the generator can be iterated repeatedly.
        """
        sampler = ZipfSampler(
            self.config.n_words, s=self.config.zipf_s, seed=self.config.seed
        )
        for doc_id in range(self.config.n_docs):
            seen: Set[int] = set()
            for _ in range(self.config.words_per_doc):
                word_id = sampler.sample()
                if word_id not in seen:
                    seen.add(word_id)
                    yield doc_id, word_id

    def keys(self) -> Iterator[Key]:
        """The combined 64-bit keys, in corpus order."""
        for doc_id, word_id in self.pairs():
            yield combine_ids(doc_id, word_id)

    def materialise(self, limit: int = 0) -> List[Key]:
        """Collect up to ``limit`` keys (all of them when limit is 0)."""
        keys: List[Key] = []
        for key in self.keys():
            keys.append(key)
            if limit and len(keys) >= limit:
                break
        return keys
