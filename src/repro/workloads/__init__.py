"""Workload generators: key streams, synthetic DocWords, Zipf, traces."""

from .adversarial import (
    attack_overload_factor,
    expected_capacity_of_window,
    mine_colliding_keys,
)
from .churn import DiurnalLoadGenerator, HotKeyChurnGenerator
from .docwords import (
    DocWordsConfig,
    DocWordsGenerator,
    combine_ids,
    load_docwords_file,
    split_key,
)
from .keys import distinct_keys, key_stream, missing_keys, sample_keys
from .traces import OpKind, TraceGenerator, TraceOp, TraceStats, replay
from .ycsb import MIXES, YCSBConfig, YCSBWorkload
from .zipf import ZipfSampler, zipf_choices

__all__ = [
    "DocWordsConfig",
    "attack_overload_factor",
    "expected_capacity_of_window",
    "mine_colliding_keys",
    "DiurnalLoadGenerator",
    "DocWordsGenerator",
    "HotKeyChurnGenerator",
    "OpKind",
    "TraceGenerator",
    "TraceOp",
    "TraceStats",
    "ZipfSampler",
    "combine_ids",
    "distinct_keys",
    "key_stream",
    "load_docwords_file",
    "missing_keys",
    "replay",
    "sample_keys",
    "split_key",
    "MIXES",
    "YCSBConfig",
    "YCSBWorkload",
    "zipf_choices",
]
