"""Time-varying workloads: hot-key churn and diurnal load ramps.

The static generators in this package hold their key popularity and table
occupancy fixed for a whole run.  Real caches and KV front-ends do neither:
the popular ("hot") keys rotate as content trends, and offered occupancy
swings with the day cycle.  Both effects matter specifically at high load —
a table parked at 0.95+ fill sees every popularity shift as a burst of
displacements, and a load ramp exercises the insert frontier again and
again instead of once.

Both generators emit :class:`~repro.workloads.traces.TraceOp` streams, so
they replay through :func:`repro.workloads.traces.replay` (shadow-dict
validation included) and drive the live server through ``repro loadgen``
(workloads ``churn`` and ``diurnal``).
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List

from ..hashing import Key
from .keys import distinct_keys, key_stream
from .traces import OpKind, TraceOp
from .zipf import ZipfSampler


class HotKeyChurnGenerator:
    """A rotating Zipf hot set over a fixed-size working set.

    At any instant a window of ``hot_size`` keys is "hot": ``hot_fraction``
    of operations target it with Zipf-distributed popularity (rank 0 is the
    hottest key), the rest pick uniformly from the whole working set.
    Every ``rotate_every`` operations the window shifts by its own size, so
    yesterday's hot keys go cold and previously idle keys take the traffic.

    Operations on the chosen key are ``get_ratio`` lookups and
    ``update_ratio`` upserts; ``churn_ratio`` operations instead *replace*
    a key — delete one working-set member and insert a brand-new key in
    its place — so the key population itself turns over while occupancy
    stays constant (the high-load property under test).

    With ``preload`` (default) the stream begins with one INSERT per
    working-set key, so replaying the whole iterator against an empty
    table is self-contained; front-ends that preload separately (the load
    generator) can slice those off as the warm-up phase.
    """

    def __init__(
        self,
        n_ops: int,
        n_keys: int = 1024,
        hot_size: int = 64,
        rotate_every: int = 512,
        hot_fraction: float = 0.9,
        zipf_s: float = 1.0,
        get_ratio: float = 0.7,
        update_ratio: float = 0.2,
        churn_ratio: float = 0.1,
        seed: int = 0,
        preload: bool = True,
    ) -> None:
        if n_ops <= 0 or n_keys <= 0:
            raise ValueError("n_ops and n_keys must be positive")
        if not 0 < hot_size <= n_keys:
            raise ValueError("hot_size must be in [1, n_keys]")
        if rotate_every <= 0:
            raise ValueError("rotate_every must be positive")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        ratios = (get_ratio, update_ratio, churn_ratio)
        if any(r < 0 for r in ratios) or sum(ratios) <= 0:
            raise ValueError("ratios must be non-negative with a positive sum")
        self.n_ops = n_ops
        self.n_keys = n_keys
        self.hot_size = hot_size
        self.rotate_every = rotate_every
        self.hot_fraction = hot_fraction
        self.zipf_s = zipf_s
        self._weights = ratios
        self._seed = seed
        self.preload = preload

    def hot_window_start(self, op_index: int) -> int:
        """Working-set index where the hot window begins at ``op_index``."""
        return (op_index // self.rotate_every * self.hot_size) % self.n_keys

    def __iter__(self) -> Iterator[TraceOp]:
        rng = random.Random(self._seed)
        zipf = ZipfSampler(self.hot_size, s=self.zipf_s, seed=self._seed + 1)
        live: List[Key] = list(distinct_keys(self.n_keys, seed=self._seed))
        live_set = set(live)
        fresh = key_stream(seed=self._seed ^ 0xC0FFEE)
        value = 0
        if self.preload:
            for key in live:
                yield TraceOp(OpKind.INSERT, key, value)
                value += 1
        kinds = (OpKind.LOOKUP, OpKind.UPDATE, OpKind.DELETE)
        for i in range(self.n_ops):
            if rng.random() < self.hot_fraction:
                index = (self.hot_window_start(i) + zipf.sample()) % self.n_keys
            else:
                index = rng.randrange(self.n_keys)
            kind = rng.choices(kinds, weights=self._weights)[0]
            if kind is OpKind.LOOKUP:
                yield TraceOp(OpKind.LOOKUP, live[index])
            elif kind is OpKind.UPDATE:
                yield TraceOp(OpKind.UPDATE, live[index], value)
                value += 1
            else:
                # churn: retire this key and bring a never-seen one into
                # the same working-set slot (occupancy is unchanged)
                old = live[index]
                key = next(fresh)
                while key in live_set:
                    key = next(fresh)
                live[index] = key
                live_set.discard(old)
                live_set.add(key)
                yield TraceOp(OpKind.DELETE, old)
                yield TraceOp(OpKind.INSERT, key, value)
                value += 1


class DiurnalLoadGenerator:
    """A day-cycle occupancy ramp between ``base_keys`` and ``peak_keys``.

    The target working-set size follows a raised-cosine wave with the given
    ``period`` (in operations), starting at the trough.  Each step emits
    whatever moves actual occupancy toward the target — INSERTs of fresh
    keys on the ramp up, DELETEs of random residents on the ramp down —
    and otherwise a background LOOKUP (``zipf_s`` skewed over residents;
    0 means uniform).  ``get_ratio`` interleaves extra lookups even while
    ramping, so reads never fully starve.

    Replaying several periods against a table sized for ``peak_keys`` at
    high fill exercises the insertion frontier once per simulated day
    rather than once per run, which is what shakes out policies whose
    bookkeeping goes stale after deletions.
    """

    def __init__(
        self,
        n_ops: int,
        base_keys: int = 256,
        peak_keys: int = 2048,
        period: int = 4096,
        get_ratio: float = 0.5,
        zipf_s: float = 0.0,
        seed: int = 0,
    ) -> None:
        if n_ops <= 0:
            raise ValueError("n_ops must be positive")
        if not 0 < base_keys <= peak_keys:
            raise ValueError("need 0 < base_keys <= peak_keys")
        if period <= 1:
            raise ValueError("period must be > 1")
        if not 0.0 <= get_ratio < 1.0:
            raise ValueError("get_ratio must be in [0, 1)")
        self.n_ops = n_ops
        self.base_keys = base_keys
        self.peak_keys = peak_keys
        self.period = period
        self.get_ratio = get_ratio
        self.zipf_s = zipf_s
        self._seed = seed

    def target_keys(self, op_index: int) -> int:
        """Intended working-set size at ``op_index`` (trough at index 0)."""
        phase = 2.0 * math.pi * (op_index % self.period) / self.period
        span = self.peak_keys - self.base_keys
        return self.base_keys + round(span * 0.5 * (1.0 - math.cos(phase)))

    def __iter__(self) -> Iterator[TraceOp]:
        rng = random.Random(self._seed)
        zipf = (ZipfSampler(self.peak_keys, s=self.zipf_s,
                            seed=self._seed + 1)
                if self.zipf_s > 0 else None)
        fresh = key_stream(seed=self._seed ^ 0xD1A1)
        live: List[Key] = []
        live_set = set()
        value = 0
        for i in range(self.n_ops):
            target = self.target_keys(i)
            if live and rng.random() < self.get_ratio:
                yield TraceOp(OpKind.LOOKUP, self._pick(live, rng, zipf))
            elif len(live) < target or not live:
                key = next(fresh)
                while key in live_set:
                    key = next(fresh)
                live.append(key)
                live_set.add(key)
                yield TraceOp(OpKind.INSERT, key, value)
                value += 1
            elif len(live) > target:
                index = rng.randrange(len(live))
                key = live[index]
                live[index] = live[-1]
                live.pop()
                live_set.discard(key)
                yield TraceOp(OpKind.DELETE, key)
            else:
                yield TraceOp(OpKind.LOOKUP, self._pick(live, rng, zipf))

    def _pick(self, live: List[Key], rng: random.Random,
              zipf: "ZipfSampler | None") -> Key:
        if zipf is not None:
            return live[zipf.sample() % len(live)]
        return live[rng.randrange(len(live))]
