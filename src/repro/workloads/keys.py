"""Key-stream generators for experiments.

Experiments need streams of *distinct* 64-bit keys (insertions assume
absence) plus disjoint streams of fresh keys for non-existing-item queries.
Everything is deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Set

from ..hashing import MASK64, Key
from ..hashing.splitmix import splitmix64


def distinct_keys(count: int, seed: int = 0) -> List[Key]:
    """``count`` distinct pseudo-random 64-bit keys.

    Keys are produced by walking SplitMix64 from the seed, which guarantees
    distinctness for far more than 2^32 draws in practice; collisions are
    checked anyway because experiments rely on distinctness.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    keys: List[Key] = []
    seen: Set[Key] = set()
    state = seed & MASK64
    while len(keys) < count:
        state = (state + 0x9E3779B97F4A7C15) & MASK64
        key = splitmix64(state)
        if key not in seen:
            seen.add(key)
            keys.append(key)
    return keys


def key_stream(seed: int = 0) -> Iterator[Key]:
    """Endless stream of distinct keys (for fill-until-failure sweeps)."""
    seen: Set[Key] = set()
    state = seed & MASK64
    while True:
        state = (state + 0x9E3779B97F4A7C15) & MASK64
        key = splitmix64(state)
        if key not in seen:
            seen.add(key)
            yield key


def missing_keys(count: int, present: Set[Key], seed: int = 1) -> List[Key]:
    """``count`` distinct keys guaranteed absent from ``present``."""
    keys: List[Key] = []
    seen: Set[Key] = set(present)
    state = (seed ^ 0xDEADBEEF) & MASK64
    while len(keys) < count:
        state = (state + 0x9E3779B97F4A7C15) & MASK64
        key = splitmix64(state)
        if key not in seen:
            seen.add(key)
            keys.append(key)
    return keys


def sample_keys(keys: List[Key], count: int, seed: int = 2) -> List[Key]:
    """A reproducible sample (without replacement) of existing keys."""
    if count > len(keys):
        raise ValueError(f"cannot sample {count} from {len(keys)} keys")
    rng = random.Random(seed)
    return rng.sample(keys, count)
