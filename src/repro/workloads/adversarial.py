"""Adversarial key sets: stress the collision-resolution machinery.

Cuckoo tables in security-sensitive settings (the paper cites private set
intersection, ORAM, history-independent hashing) face inputs chosen to
collide.  An attacker who can predict the hash functions can mine keys
whose candidate buckets concentrate on a small region, overloading it far
below the nominal load threshold.

:func:`mine_colliding_keys` plays that attacker: it searches a key stream
for keys all of whose candidates land inside a chosen window of each
sub-table.  A window of W buckets per sub-table can hold at most ``d*W``
items (single-slot), so offering more than that *guarantees* insertion
failures regardless of maxloop — which is exactly what the stash exists to
absorb.  The tests use these sets to verify graceful degradation: no lost
items, no false results, stash takes the overflow.
"""

from __future__ import annotations

from typing import List, Sequence

from ..hashing import Key
from .keys import key_stream


def mine_colliding_keys(
    table,
    count: int,
    window: int = 4,
    seed: int = 0,
    max_draws: int = 2_000_000,
) -> List[Key]:
    """Mine ``count`` keys whose every candidate falls in the first
    ``window`` buckets of its sub-table.

    ``table`` provides the hash functions (``_candidates``) — the attacker
    model where the hash family and seed are known.  Raises RuntimeError if
    the stream budget runs out (window too small for the table size).
    """
    if count <= 0:
        raise ValueError("count must be positive")
    if window <= 0:
        raise ValueError("window must be positive")
    n = table.n_buckets
    mined: List[Key] = []
    stream = key_stream(seed=seed)
    for _ in range(max_draws):
        key = next(stream)
        cands = table._candidates(key)
        if all(bucket % n < window for bucket in cands):
            mined.append(key)
            if len(mined) == count:
                return mined
    raise RuntimeError(
        f"mined only {len(mined)}/{count} colliding keys in {max_draws} draws; "
        "increase window or max_draws"
    )


def expected_capacity_of_window(table, window: int) -> int:
    """Items a window of ``window`` buckets per sub-table can hold at most."""
    slots = getattr(table, "slots", 1)
    return table.d * window * slots


def attack_overload_factor(keys: Sequence[Key], table, window: int) -> float:
    """How far past the window's capacity an attack set pushes it."""
    capacity = expected_capacity_of_window(table, window)
    return len(keys) / capacity if capacity else float("inf")
