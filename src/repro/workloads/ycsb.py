"""YCSB-style workload mixes.

The Yahoo! Cloud Serving Benchmark's core workloads are the lingua franca
for key-value store evaluation; hash-table papers (including several of the
systems McCuckoo cites — MemC3, SILT) report against them.  This module
generates the standard mixes as :class:`~repro.workloads.traces.TraceOp`
streams so they replay through the same harness as the paper's own
workloads.

Implemented mixes (scan-based workload E is omitted — hash tables have no
range scans):

=====  =====================================  ====================
 name  operation mix                          request distribution
=====  =====================================  ====================
 A     50 % read / 50 % update                zipfian
 B     95 % read / 5 % update                 zipfian
 C     100 % read                             zipfian
 D     95 % read / 5 % insert                 latest
 F     50 % read / 50 % read-modify-write     zipfian
=====  =====================================  ====================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List

from ..hashing import Key
from .keys import distinct_keys, key_stream
from .traces import OpKind, TraceOp
from .zipf import ZipfSampler

#: per-mix (read, update, insert, rmw) fractions
MIXES: Dict[str, Dict[str, float]] = {
    "A": {"read": 0.5, "update": 0.5, "insert": 0.0, "rmw": 0.0},
    "B": {"read": 0.95, "update": 0.05, "insert": 0.0, "rmw": 0.0},
    "C": {"read": 1.0, "update": 0.0, "insert": 0.0, "rmw": 0.0},
    "D": {"read": 0.95, "update": 0.0, "insert": 0.05, "rmw": 0.0},
    "F": {"read": 0.5, "update": 0.0, "insert": 0.0, "rmw": 0.5},
}


@dataclass(frozen=True)
class YCSBConfig:
    """Workload shape: record count, op count, mix and skew."""

    workload: str = "A"
    n_records: int = 1000
    n_ops: int = 5000
    zipf_s: float = 0.99
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workload not in MIXES:
            raise ValueError(
                f"unknown workload {self.workload!r}; options: {sorted(MIXES)}"
            )
        if self.n_records <= 0 or self.n_ops <= 0:
            raise ValueError("n_records and n_ops must be positive")


class YCSBWorkload:
    """Generates the load phase and the run phase of one YCSB mix."""

    def __init__(self, config: YCSBConfig) -> None:
        self.config = config
        self._records: List[Key] = distinct_keys(config.n_records, seed=config.seed)

    @property
    def records(self) -> List[Key]:
        return list(self._records)

    def load_phase(self) -> Iterator[TraceOp]:
        """Insert every record once (YCSB's load stage)."""
        for position, key in enumerate(self._records):
            yield TraceOp(OpKind.INSERT, key, position)

    def run_phase(self) -> Iterator[TraceOp]:
        """The transaction stage: ``n_ops`` draws from the mix."""
        mix = MIXES[self.config.workload]
        rng = random.Random(self.config.seed ^ 0x5C5B)
        zipf = ZipfSampler(
            len(self._records), s=self.config.zipf_s, seed=self.config.seed + 1
        )
        fresh = key_stream(seed=self.config.seed ^ 0xD15C)
        live = list(self._records)
        live_set = set(live)
        kinds = ["read", "update", "insert", "rmw"]
        weights = [mix[kind] for kind in kinds]
        value_counter = len(live)
        for _ in range(self.config.n_ops):
            kind = rng.choices(kinds, weights=weights)[0]
            if kind == "insert":
                key = next(fresh)
                while key in live_set:
                    key = next(fresh)
                live.append(key)
                live_set.add(key)
                yield TraceOp(OpKind.INSERT, key, value_counter)
                value_counter += 1
            elif kind == "read":
                yield TraceOp(OpKind.LOOKUP, self._choose(live, zipf, rng))
            elif kind == "update":
                yield TraceOp(
                    OpKind.UPDATE, self._choose(live, zipf, rng), value_counter
                )
                value_counter += 1
            else:  # read-modify-write: a read immediately followed by update
                key = self._choose(live, zipf, rng)
                yield TraceOp(OpKind.LOOKUP, key)
                yield TraceOp(OpKind.UPDATE, key, value_counter)
                value_counter += 1

    def _choose(self, live: List[Key], zipf: ZipfSampler, rng: random.Random) -> Key:
        if self.config.workload == "D":
            # "latest" distribution: strongly favour recently inserted keys
            rank = min(zipf.sample(), len(live) - 1)
            return live[len(live) - 1 - rank]
        rank = zipf.sample()
        return live[rank % len(live)]
