"""Operation traces: mixed insert/lookup/delete streams.

Dynamic-workload experiments (deletion aftermath, stash-flag staleness,
concurrency interleavings) replay a trace of operations rather than a pure
fill.  :class:`TraceGenerator` builds reproducible traces with configurable
mix ratios; :func:`replay` runs one against any table and reports outcome
counts, validating results against a shadow dict.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional

from ..core.interface import HashTable
from ..hashing import Key
from .keys import key_stream


class OpKind(Enum):
    INSERT = "insert"
    LOOKUP = "lookup"
    LOOKUP_MISSING = "lookup_missing"
    DELETE = "delete"
    UPDATE = "update"


@dataclass(frozen=True)
class TraceOp:
    kind: OpKind
    key: Key
    value: Optional[int] = None


@dataclass
class TraceStats:
    """Counts gathered while replaying a trace."""

    inserts: int = 0
    stashed: int = 0
    failed: int = 0
    updates: int = 0
    lookups: int = 0
    hits: int = 0
    false_negatives: int = 0
    false_positives: int = 0
    deletes: int = 0
    delete_misses: int = 0
    stash_checks: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)


class TraceGenerator:
    """Generates a reproducible mixed-operation trace.

    Ratios need not sum to 1; they are normalised.  Lookup and delete
    operations target previously inserted keys; ``lookup_missing`` draws
    keys guaranteed never inserted.
    """

    def __init__(
        self,
        n_ops: int,
        insert_ratio: float = 0.5,
        lookup_ratio: float = 0.3,
        missing_ratio: float = 0.1,
        delete_ratio: float = 0.1,
        seed: int = 0,
    ) -> None:
        if n_ops <= 0:
            raise ValueError("n_ops must be positive")
        ratios = [insert_ratio, lookup_ratio, missing_ratio, delete_ratio]
        if any(r < 0 for r in ratios) or sum(ratios) <= 0:
            raise ValueError("ratios must be non-negative with a positive sum")
        self.n_ops = n_ops
        total = sum(ratios)
        self._weights = [r / total for r in ratios]
        self._seed = seed

    def __iter__(self) -> Iterator[TraceOp]:
        rng = random.Random(self._seed)
        fresh = key_stream(seed=self._seed)
        missing = key_stream(seed=self._seed ^ 0xFFFF_FFFF)
        live: List[Key] = []
        live_set: set = set()
        kinds = [OpKind.INSERT, OpKind.LOOKUP, OpKind.LOOKUP_MISSING, OpKind.DELETE]
        emitted = 0
        value_counter = 0
        while emitted < self.n_ops:
            kind = rng.choices(kinds, weights=self._weights)[0]
            if kind is OpKind.INSERT or not live:
                key = next(fresh)
                while key in live_set:
                    key = next(fresh)
                live.append(key)
                live_set.add(key)
                yield TraceOp(OpKind.INSERT, key, value_counter)
                value_counter += 1
            elif kind is OpKind.LOOKUP:
                yield TraceOp(OpKind.LOOKUP, live[rng.randrange(len(live))])
            elif kind is OpKind.LOOKUP_MISSING:
                key = next(missing)
                while key in live_set:
                    key = next(missing)
                yield TraceOp(OpKind.LOOKUP_MISSING, key)
            else:
                index = rng.randrange(len(live))
                key = live.pop(index)
                live_set.discard(key)
                yield TraceOp(OpKind.DELETE, key)
            emitted += 1


def replay(
    table: HashTable, trace: Iterator[TraceOp], check: bool = True
) -> TraceStats:
    """Run a trace against ``table``, optionally validating with a shadow dict.

    ``false_negatives`` counts keys the shadow says are present but the
    table missed; ``false_positives`` the reverse.  Both must stay zero for
    a correct implementation.
    """
    stats = TraceStats()
    shadow: Dict[Key, Optional[int]] = {}
    for op in trace:
        stats.per_kind[op.kind.value] = stats.per_kind.get(op.kind.value, 0) + 1
        if op.kind is OpKind.INSERT:
            outcome = table.put(op.key, op.value)
            stats.inserts += 1
            if outcome.stashed:
                stats.stashed += 1
            if outcome.failed:
                stats.failed += 1
            else:
                shadow[op.key] = op.value
        elif op.kind is OpKind.UPDATE:
            outcome = table.upsert(op.key, op.value)
            stats.updates += 1
            if check:
                expected = op.key in shadow
                updated = outcome.status.value == "updated"
                if expected and not updated:
                    stats.false_negatives += 1
                if not expected and updated:
                    stats.false_positives += 1
            if not outcome.failed:
                shadow[op.key] = op.value
        elif op.kind in (OpKind.LOOKUP, OpKind.LOOKUP_MISSING):
            outcome = table.lookup(op.key)
            stats.lookups += 1
            if outcome.checked_stash:
                stats.stash_checks += 1
            if outcome.found:
                stats.hits += 1
            if check:
                expected = op.key in shadow
                if expected and not outcome.found:
                    stats.false_negatives += 1
                if not expected and outcome.found:
                    stats.false_positives += 1
        else:
            outcome = table.delete(op.key)
            stats.deletes += 1
            if not outcome.deleted:
                stats.delete_misses += 1
            if check and (op.key in shadow) != outcome.deleted:
                if op.key in shadow:
                    stats.false_negatives += 1
                else:
                    stats.false_positives += 1
            shadow.pop(op.key, None)
    return stats
