"""repro — a full reproduction of *Multi-copy Cuckoo Hashing* (ICDE 2019).

Public API highlights:

* :class:`McCuckoo` / :class:`BlockedMcCuckoo` — the paper's contribution.
* :class:`CuckooTable`, :class:`BCHT`, :class:`CHS` — the baselines.
* :class:`MemoryModel` / :class:`LatencyModel` — the memory-hierarchy
  simulator every scheme reports its accesses to.
* :mod:`repro.workloads` — key streams and the synthetic DocWords corpus.
* :mod:`repro.analysis` — one function per table/figure of the paper.
"""

from .baselines import (
    BCHT,
    CHS,
    BloomFrontedCuckoo,
    ChainedHashTable,
    CuckooTable,
    LinearProbingTable,
    SmartCuckoo,
)
from .concurrency import ConcurrentMcCuckoo, find_cuckoo_path
from .core import (
    BatchResult,
    BlockedMcCuckoo,
    DeletionMode,
    FailurePolicy,
    HashTable,
    InsertOutcome,
    InsertStatus,
    McCuckoo,
    McCuckooMultiMap,
    MinCounterPolicy,
    RandomWalkPolicy,
    WearAwarePolicy,
    ResizableMcCuckoo,
    ShardedMcCuckoo,
    SiblingTracking,
    TableFullError,
    batched_lookup,
    load_snapshot,
    save_snapshot,
)
from .filters import BloomFilter, CuckooFilter
from .hashing import canonical_key
from .memory import PAPER_FPGA, LatencyModel, MemoryModel, WearMeter

__version__ = "1.0.0"

__all__ = [
    "BCHT",
    "BatchResult",
    "BloomFilter",
    "BloomFrontedCuckoo",
    "BlockedMcCuckoo",
    "CHS",
    "ChainedHashTable",
    "ConcurrentMcCuckoo",
    "CuckooTable",
    "DeletionMode",
    "FailurePolicy",
    "HashTable",
    "InsertOutcome",
    "InsertStatus",
    "LatencyModel",
    "LinearProbingTable",
    "McCuckoo",
    "McCuckooMultiMap",
    "MemoryModel",
    "MinCounterPolicy",
    "WearAwarePolicy",
    "WearMeter",
    "PAPER_FPGA",
    "RandomWalkPolicy",
    "ResizableMcCuckoo",
    "ShardedMcCuckoo",
    "SiblingTracking",
    "SmartCuckoo",
    "TableFullError",
    "batched_lookup",
    "canonical_key",
    "CuckooFilter",
    "find_cuckoo_path",
    "load_snapshot",
    "save_snapshot",
    "__version__",
]
