"""One-writer-many-readers McCuckoo (§III.H).

Standard cuckoo insertion makes evicted items temporarily vanish, so a
concurrent reader can miss a stored key.  Following MemC3's recipe, the
writer here first discovers the whole cuckoo path (cheap, thanks to the
counters — see :mod:`repro.concurrency.paths`), then executes the moves
from the far end of the path backwards: each hop *duplicates* an item into
its next bucket before the old location is overwritten, so every stored
item is findable at every instant.

The writer is exposed both as a plain :meth:`insert` and as
:meth:`insert_stepwise`, a generator yielding between atomic steps so the
deterministic interleaving harness can run readers at every boundary.  A
seqlock-style version counter lets readers detect concurrent mutation and
retry, mirroring what a real shared-memory implementation would do.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from ..core.mccuckoo import McCuckoo
from ..core.results import InsertOutcome, InsertStatus, LookupOutcome
from ..hashing import KeyLike
from .paths import find_cuckoo_path
from .seqlock import SeqlockRegion


class ConcurrentMcCuckoo:
    """Single-writer/multi-reader wrapper around :class:`McCuckoo`."""

    def __init__(self, table: McCuckoo, max_path_nodes: int = 512) -> None:
        self.table = table
        self.max_path_nodes = max_path_nodes
        self.version = 0  # even: quiescent; odd: writer mid-step
        self.last_outcome: Optional[InsertOutcome] = None
        self.last_delete = None
        self._seqlock = SeqlockRegion(lambda: self.version)

    # -- writer side -------------------------------------------------------

    def _begin_step(self) -> None:
        self.version += 1

    def _end_step(self) -> None:
        self.version += 1

    def insert(self, key: KeyLike, value: Any = None) -> InsertOutcome:
        """Blocking insert: runs all steps back to back."""
        for _ in self.insert_stepwise(key, value):
            pass
        assert self.last_outcome is not None
        return self.last_outcome

    def insert_stepwise(self, key: KeyLike, value: Any = None) -> Iterator[str]:
        """Generator-based insert; yields a label between atomic steps.

        The interleaving harness drives this generator and runs reader
        operations at every yield point.  ``last_outcome`` carries the
        final result once the generator is exhausted.
        """
        self.last_outcome: Optional[InsertOutcome] = None
        k = self.table._canonical(key)
        yield "path-search:start"
        path = find_cuckoo_path(self.table, k, self.max_path_nodes)
        yield "path-search:done"
        if path is None:
            # No path: fall back to the table's failure handling (stash).
            self._begin_step()
            cands = self.table._candidates(k)
            self.table.events.note_failure(len(self.table) + 1)
            self.last_outcome = self.table._handle_failure(k, value, cands, kicks=0)
            self._end_step()
            return
        if len(path) == 1:
            # Direct placement through the normal multi-copy principles.
            self._begin_step()
            self.last_outcome = self.table._insert_canonical(k, value)
            self._end_step()
            return
        # Execute moves from the far end backwards; every hop duplicates
        # before anything is overwritten, so readers never miss an item.
        hops: List[Tuple[int, int]] = list(zip(path[:-1], path[1:]))
        for src, dst in reversed(hops):
            self._begin_step()
            self._move_occupant(src, dst)
            self._end_step()
            yield f"moved:{src}->{dst}"
        self._begin_step()
        occupant_bucket = path[0]
        self.table._write_entry(
            occupant_bucket, k, value, 1 << self.table._position_of(occupant_bucket)
        )
        self.table._counters.set(occupant_bucket, 1)
        self.table._n_main += 1
        self._end_step()
        self.last_outcome = InsertOutcome(
            InsertStatus.STORED, kicks=len(hops), copies=1, collided=True
        )
        yield "placed"

    def _move_occupant(self, src: int, dst: int) -> None:
        """Copy the occupant of ``src`` into ``dst`` (which is a terminal or
        an already-vacated hop), leaving ``src`` intact for readers."""
        table = self.table
        occupant, occ_value, _, _ = table._read_entry(src)
        assert occupant is not None
        dst_value = table._counters.get(dst)
        if dst_value >= 2:
            # Terminal holds a redundant copy: retire it first.
            decremented = table._claim_overwrite(dst, dst_value)
            del decremented
        table._write_entry(dst, occupant, occ_value, 1 << table._position_of(dst))
        table._counters.set(dst, 1)
        # src still physically holds the occupant with counter 1; the next
        # (earlier) hop or the final placement will overwrite it.

    # -- writer side: deletion ---------------------------------------------

    def delete(self, key: KeyLike):
        """Blocking delete: runs all steps back to back."""
        for _ in self.delete_stepwise(key):
            pass
        assert self.last_delete is not None
        return self.last_delete

    def delete_stepwise(self, key: KeyLike) -> Iterator[str]:
        """Generator-based delete; yields between atomic counter resets.

        Deletion only mutates on-chip counters (and tombstone marks), one
        bucket per step.  Readers of *other* keys are unaffected at every
        boundary; readers of the deleted key linearize at whichever step
        they observe.  ``last_delete`` carries the outcome at exhaustion.
        """
        from ..core.config import DeletionMode
        from ..core.errors import UnsupportedOperationError

        table = self.table
        if table.deletion_mode is DeletionMode.DISABLED:
            raise UnsupportedOperationError(
                "underlying table was built with DeletionMode.DISABLED"
            )
        self.last_delete = None
        k = table._canonical(key)
        yield "scan:start"
        cands = table._candidates(k)
        vals = table._counters.get_many(cands)
        if table._never_inserted(cands, vals):
            from ..core.results import DeleteOutcome

            self.last_delete = DeleteOutcome(deleted=False)
            return
        copies, _ = table._find_copies(k, cands, vals)
        if not copies:
            # main-table miss: fall back to the table's stash handling
            self._begin_step()
            self.last_delete = table.delete(key)
            self._end_step()
            return
        for bucket in copies:
            self._begin_step()
            table._counters.set(bucket, 0)
            if table._tombstones is not None:
                table._tombstones.mark(bucket)
            self._end_step()
            yield f"zeroed:{bucket}"
        table._n_main -= 1
        from ..core.results import DeleteOutcome

        self.last_delete = DeleteOutcome(deleted=True, copies_removed=len(copies))

    # -- reader side -------------------------------------------------------

    def lookup(self, key: KeyLike, max_retries: int = 16) -> LookupOutcome:
        """Optimistic seqlock read: retry while the writer is mid-step.

        The retry count is returned on the outcome (``outcome.retries``)
        and accumulated in :attr:`lookup_retries`.  Exhausting the budget
        raises :class:`SeqlockContentionError` — a value read under a
        moving version must never be returned as if it were coherent.
        """
        outcome, retries = self._seqlock.read(
            lambda: self.table.lookup(key), max_retries=max_retries
        )
        if retries:
            object.__setattr__(outcome, "retries", retries)
        return outcome

    @property
    def lookup_retries(self) -> int:
        """Cumulative seqlock retries burned by :meth:`lookup` calls."""
        return self._seqlock.retries

    def get(self, key: KeyLike, default: Any = None) -> Any:
        outcome = self.lookup(key)
        return outcome.value if outcome.found else default

    def __contains__(self, key: KeyLike) -> bool:
        return self.lookup(key).found

    def __len__(self) -> int:
        return len(self.table)
