"""Cuckoo-path search guided by McCuckoo's counters (§III.H).

MemC3 showed that one-writer-many-readers concurrency needs the eviction
sequence (the *cuckoo path*) discovered **before** any item moves, so the
moves can then be executed from the path's far end backwards and no item is
ever absent from the table mid-insertion.  MemC3 left path discovery slow;
McCuckoo's on-chip counters make it fast: any counter other than 1 marks a
terminal bucket (empty, or holding an overwritable redundant copy), so the
search only expands sole-copy buckets and recognises terminals without
touching off-chip memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.mccuckoo import McCuckoo
from ..hashing import Key


def find_cuckoo_path(
    table: McCuckoo, key: Key, max_nodes: int = 512
) -> Optional[List[int]]:
    """BFS for the shortest eviction path for ``key``.

    Returns a bucket list ``[b0, .., bt]`` where the new item will land in
    ``b0``, each ``b_i``'s occupant moves to ``b_{i+1}``, and ``b_t`` is a
    terminal (counter != 1, i.e. empty or overwritable).  A single-element
    path means the key can be placed directly.  Returns None when no path
    exists within the node budget.

    Expanding a node costs one off-chip read (the occupant's key must be
    learned); terminal detection is pure on-chip counter work.
    """
    cands = table._candidates(key)
    vals = table._counters.get_many(cands)
    for bucket, value in zip(cands, vals):
        if value != 1:
            return [bucket]
    parents: Dict[int, Optional[int]] = {bucket: None for bucket in cands}
    queue: List[int] = list(cands)
    expansions = 0
    while queue and expansions < max_nodes:
        bucket = queue.pop(0)
        occupant = table._read_entry(bucket)[0]
        assert occupant is not None
        expansions += 1
        for alt in table._candidates(occupant):
            if alt == bucket or alt in parents:
                continue
            parents[alt] = bucket
            if table._counters.get(alt) != 1:
                return _reconstruct(alt, parents)
            queue.append(alt)
    return None


def _reconstruct(terminal: int, parents: Dict[int, Optional[int]]) -> List[int]:
    path: List[int] = [terminal]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    path.reverse()
    return path
