"""Deterministic interleaving harness for the concurrency tests.

Python cannot demonstrate shared-memory races natively, so the harness
simulates them: the writer's :meth:`insert_stepwise` generator is advanced
one atomic step at a time, and between steps every registered reader probe
runs.  A probe that ever misses a key that is logically present is a
linearizability violation — the property the paper's path-ordered insertion
is meant to guarantee.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple

from ..hashing import Key, KeyLike
from .concurrent_table import ConcurrentMcCuckoo


@dataclass
class InterleaveReport:
    """What the harness observed across all interleaving points."""

    steps: int = 0
    probes: int = 0
    missed_keys: List[Tuple[Key, str]] = field(default_factory=list)
    wrong_values: List[Tuple[Key, str]] = field(default_factory=list)

    @property
    def linearizable(self) -> bool:
        return not self.missed_keys and not self.wrong_values


class InterleavingHarness:
    """Runs writer inserts step by step with reader probes in between."""

    def __init__(
        self,
        table: ConcurrentMcCuckoo,
        probe_sample: int = 8,
        seed: int = 0,
    ) -> None:
        self.table = table
        self.probe_sample = probe_sample
        self._rng = random.Random(seed)
        self._present: dict = {}

    def insert_with_probes(
        self, key: KeyLike, value: Any = None, report: Optional[InterleaveReport] = None
    ) -> InterleaveReport:
        """Insert ``key`` while probing previously inserted keys at every
        step boundary; records any reader-visible anomaly."""
        if report is None:
            report = InterleaveReport()
        stepper = self.table.insert_stepwise(key, value)
        for label in stepper:
            report.steps += 1
            self._probe(report, label)
        outcome = self.table.last_outcome
        if outcome is not None and not outcome.failed:
            self._present[self.table.table._canonical(key)] = value
        return report

    def _probe(self, report: InterleaveReport, label: str) -> None:
        if not self._present:
            return
        keys = list(self._present)
        sample_size = min(self.probe_sample, len(keys))
        for probe_key in self._rng.sample(keys, sample_size):
            report.probes += 1
            outcome = self.table.lookup(probe_key)
            if not outcome.found:
                report.missed_keys.append((probe_key, label))
            elif outcome.value != self._present[probe_key]:
                report.wrong_values.append((probe_key, label))

    def known_keys(self) -> Set[Key]:
        return set(self._present)
