"""One-writer-many-readers concurrency support (§III.H)."""

from .concurrent_table import ConcurrentMcCuckoo
from .interleave import InterleaveReport, InterleavingHarness
from .paths import find_cuckoo_path

__all__ = [
    "ConcurrentMcCuckoo",
    "InterleaveReport",
    "InterleavingHarness",
    "find_cuckoo_path",
]
