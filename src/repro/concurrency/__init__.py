"""One-writer-many-readers concurrency support (§III.H)."""

from .concurrent_table import ConcurrentMcCuckoo
from .interleave import InterleaveReport, InterleavingHarness
from .paths import find_cuckoo_path
from .seqlock import SeqlockContentionError, SeqlockRegion

__all__ = [
    "ConcurrentMcCuckoo",
    "InterleaveReport",
    "InterleavingHarness",
    "SeqlockContentionError",
    "SeqlockRegion",
    "find_cuckoo_path",
]
