"""Reusable seqlock protocol (reader side).

A seqlock guards a region that one writer mutates in place while many
readers probe it without locks: the writer increments a version word
before and after every mutation batch (odd = in flux), and a reader
snapshots the version, performs its read, and accepts the result only if
the version is even and unchanged across the read — otherwise the read
may have straddled a half-applied write and must be retried.

:class:`SeqlockRegion` packages the reader loop over an abstract version
cell (a callable), so the same protocol drives both the in-process
:class:`~repro.concurrency.concurrent_table.ConcurrentMcCuckoo` version
counter and the cross-process shared-memory index images published by the
serve layer (:mod:`repro.serve.shared_image`), where the version word
lives in a ``multiprocessing.shared_memory`` segment.

Exhaustion is loud: a read that cannot validate within ``max_retries``
attempts raises :class:`SeqlockContentionError` instead of silently
degrading to an unversioned (potentially torn) read — the caller decides
whether to propagate, retry later, or fall back to a slower coherent
path (the serve layer falls back to the worker ring transport).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple, TypeVar

from ..core.errors import ReproError

T = TypeVar("T")


class SeqlockContentionError(ReproError):
    """A seqlock read could not validate within its retry budget.

    Carries ``retries`` (the attempts burned) so callers can account the
    contention before falling back.  Raised instead of returning a value
    read under an odd or moving version — a torn read must never leak.
    """

    def __init__(self, message: str, retries: int = 0) -> None:
        super().__init__(message)
        self.retries = retries


class SeqlockRegion:
    """Reader-side seqlock loop over an abstract version cell.

    Parameters
    ----------
    load_version:
        Zero-argument callable returning the current version as an int.
        For an in-process region this reads an attribute; for a shared
        memory region it unpacks a u64 from the mapped buffer.  Each
        retry re-invokes it, so the callable must observe fresh state.
    max_retries:
        Default validation budget per :meth:`read` call.

    ``retries`` accumulates every retry across the region's lifetime —
    the serve layer surfaces it as the ``shared_read_retries`` stat.
    """

    def __init__(
        self, load_version: Callable[[], int], max_retries: int = 16
    ) -> None:
        if max_retries < 1:
            raise ValueError("max_retries must be positive")
        self._load = load_version
        self.max_retries = max_retries
        self.retries = 0

    def read(
        self, body: Callable[[], T], max_retries: Optional[int] = None
    ) -> Tuple[T, int]:
        """Run ``body`` under the seqlock; returns ``(result, retries)``.

        ``body`` runs only when the version is even, and its result is
        accepted only if the version is unchanged afterwards.  Raises
        :class:`SeqlockContentionError` once the budget is exhausted;
        the cumulative ``retries`` counter is updated either way.
        """
        limit = self.max_retries if max_retries is None else max_retries
        if limit < 1:
            raise ValueError("max_retries must be positive")
        spent = 0
        for _ in range(limit):
            before = self._load()
            if before & 1:
                spent += 1
                continue  # writer mid-step; a real reader would spin
            result = body()
            if self._load() == before:
                self.retries += spent
                return result, spent
            spent += 1
        self.retries += spent
        raise SeqlockContentionError(
            f"seqlock read failed to validate after {spent} retries", spent
        )


__all__ = ["SeqlockContentionError", "SeqlockRegion"]
