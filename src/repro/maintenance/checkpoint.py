"""Checkpointing: bound recovery time by snapshotting the index.

A checkpoint freezes the store's index (bit-for-bit, via
:mod:`repro.core.snapshot`) together with the log position it was taken
at and a CRC of the log prefix up to that position.  Recovery
(:meth:`~repro.apps.kvstore.LogStructuredStore.recover_with_checkpoint`)
then restores the index and replays only the post-checkpoint tail —
restart time tracks the write rate since the last checkpoint, not the
store's entire history.

The artifact is a single overwrite-in-place slot, which is exactly what
makes the ``torn_checkpoint`` fault rule interesting: a crash mid-write
leaves a prefix that fails the artifact CRC, and recovery must detect
that and fall back to a full log replay rather than trust half an index.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..apps.kvstore import LogStructuredStore
from ..faults import InjectedCrash

#: hook signature: ``writer(artifact_bytes)`` — persists the checkpoint
#: somewhere that survives the process (worker shards write a file).
CheckpointWriter = Callable[[bytes], None]


class Checkpointer:
    """Takes checkpoints of a :class:`LogStructuredStore`."""

    def checkpoint(
        self,
        store: LogStructuredStore,
        writer: Optional[CheckpointWriter] = None,
    ) -> bytes:
        """Checkpoint ``store``; returns the artifact bytes.

        The store keeps the artifact in its in-memory checkpoint slot
        (what in-process crash simulation recovers from); ``writer``
        additionally persists it for cross-process recovery.  Under a
        ``torn_checkpoint`` fault the slot holds only the torn prefix —
        the writer is still invoked with it so a durable checkpoint file
        is torn the same way the in-memory slot is — and the
        :class:`InjectedCrash` propagates to the caller.
        """
        try:
            artifact = store.take_checkpoint()
        except InjectedCrash:
            if writer is not None and store.checkpoint_bytes is not None:
                writer(store.checkpoint_bytes)
            raise
        if writer is not None:
            writer(artifact)
        return artifact


__all__ = ["CheckpointWriter", "Checkpointer"]
