"""Scheduling: when to compact, when to checkpoint.

:class:`MaintenanceDaemon` is deliberately not a thread.  The serving
stack's concurrency unit is the one-writer-per-shard loop (asyncio task
in single-process mode, worker process in multi-process mode), and the
one invariant everything else leans on is that exactly one context ever
mutates a shard.  A background thread would break that or need locks; so
the daemon is instead *ticked* from the writer loop between write
batches.  Each tick does bounded, per-shard work and other shards'
writers are never blocked — reads don't touch the writer loop at all.

Policies are the classic pair: compact when the garbage ratio crosses a
threshold (and the log is big enough to be worth it), checkpoint every N
appends plus immediately after a compaction (compaction rewrites the
image, invalidating any prior checkpoint, so an un-checkpointed compacted
store would pay a full replay on the next restart).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..apps.kvstore import LogStructuredStore
from .checkpoint import Checkpointer
from .compactor import Compactor, InterruptHook


@dataclass(frozen=True)
class MaintenanceConfig:
    """Thresholds for the maintenance daemon.

    ``compact_at`` is a garbage-ratio threshold in [0, 1]; a negative
    value disables compaction.  ``checkpoint_every`` is the append count
    between checkpoints; 0 disables checkpointing.
    """

    compact_at: float = 0.5
    compact_min_records: int = 128
    checkpoint_every: int = 512
    checkpoint_after_compaction: bool = True

    @classmethod
    def aggressive(cls) -> "MaintenanceConfig":
        """Thresholds low enough for chaos tests to hit both paths fast."""
        return cls(compact_at=0.25, compact_min_records=32, checkpoint_every=64)

    @property
    def enabled(self) -> bool:
        return self.compact_at >= 0.0 or self.checkpoint_every > 0

    def describe(self) -> str:
        return (
            f"maintenance(compact_at={self.compact_at}, "
            f"min_records={self.compact_min_records}, "
            f"checkpoint_every={self.checkpoint_every})"
        )


class MaintenanceDaemon:
    """Ticks compaction/checkpoint policies for one or more shards."""

    def __init__(
        self,
        config: Optional[MaintenanceConfig] = None,
        interrupt: Optional[InterruptHook] = None,
        checkpoint_writer: Optional[Callable[[int, bytes], None]] = None,
    ) -> None:
        self.config = config if config is not None else MaintenanceConfig()
        self._interrupt = interrupt
        self._checkpoint_writer = checkpoint_writer
        self._compactor = Compactor()
        self._checkpointer = Checkpointer()
        self._on_commit: Optional[Callable[[LogStructuredStore], None]] = None

    def set_commit_hook(
        self, hook: Optional[Callable[[LogStructuredStore], None]]
    ) -> None:
        """Called after a compaction commit (workers swap the shard file)."""
        self._on_commit = hook

    # ------------------------------------------------------------------

    def _write_checkpoint(self, store: LogStructuredStore, shard: int) -> None:
        writer = None
        if self._checkpoint_writer is not None:
            writer = lambda data: self._checkpoint_writer(shard, data)  # noqa: E731
        self._checkpointer.checkpoint(store, writer=writer)

    def maybe_run(self, store: LogStructuredStore, shard: int = 0) -> Dict[str, Any]:
        """One scheduling tick for ``store``.

        Returns ``{"compacted": dropped-or-None, "checkpointed": bool}``.
        An :class:`~repro.faults.InjectedCrash` from either task
        propagates to the caller, which owns shard recovery; the write
        that preceded this tick is already durable either way.
        """
        out: Dict[str, Any] = {"compacted": None, "checkpointed": False}
        cfg = self.config
        if (
            cfg.compact_at >= 0.0
            and store.log_records >= cfg.compact_min_records
            and store.garbage_ratio >= cfg.compact_at
        ):
            out["compacted"] = self._compactor.compact(
                store, interrupt=self._interrupt, on_commit=self._on_commit
            )
            if cfg.checkpoint_after_compaction and cfg.checkpoint_every > 0:
                self._write_checkpoint(store, shard)
                out["checkpointed"] = True
                return out
        if (
            cfg.checkpoint_every > 0
            and store.appends_since_checkpoint >= cfg.checkpoint_every
        ):
            self._write_checkpoint(store, shard)
            out["checkpointed"] = True
        return out


__all__ = ["MaintenanceConfig", "MaintenanceDaemon"]
