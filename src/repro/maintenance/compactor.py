"""Log compaction: rewrite live records into a fresh segment.

The store's append-only log accumulates one dead record per update or
delete; compaction reclaims that space by copying only the records the
index still points at into a fresh log and swapping it in.  Offsets
change, so each surviving key's index entry is patched afterwards — an
ordinary ``try_update`` that rewrites all copies.

Crash safety comes from ordering, not locking: the copy loop reads the
old log and appends to a private fresh one, touching nothing the store
owns; the commit (swap + offset patch) runs only after every live record
is safely in the new segment.  An :class:`~repro.faults.InjectedCrash` at
any record-copy boundary (the ``crash_during_compaction`` rule, or a
worker kill via the ``interrupt`` hook) therefore leaves the old image
authoritative and recovery sees the exact pre-compaction state.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..apps.kvstore import DurableValueLog, LogStructuredStore, ValueLog
from ..faults import InjectedCrash

#: hook signature: ``interrupt(site, shard)`` — consulted once per copied
#: record; worker processes use it to die mid-compaction under fault plans.
InterruptHook = Callable[[str, int], None]


class Compactor:
    """Rewrites the live records of a :class:`LogStructuredStore`."""

    def compact(
        self,
        store: LogStructuredStore,
        interrupt: Optional[InterruptHook] = None,
        on_commit: Optional[Callable[[LogStructuredStore], None]] = None,
    ) -> int:
        """Compact ``store`` in place; returns the records dropped.

        ``interrupt`` fires before each record copy (after the fault-plan
        consult); ``on_commit`` fires once, right after the new log is
        swapped in — worker processes use it to atomically replace the
        durable shard file with the compacted image.
        """
        old_log = store._log
        old_size = len(old_log)
        shard = store._shard_id
        faults = store._faults
        durable = isinstance(old_log, DurableValueLog)
        # The fresh segment is built with faults detached: the injection
        # point for compaction is the record-copy boundary below, not the
        # appends into a log nobody can observe until commit.
        fresh = DurableValueLog(shard=shard) if durable else ValueLog()

        moves = []
        for key, offset in list(store._index.items()):
            if faults is not None and faults.on_compaction_record(shard):
                raise InjectedCrash(
                    f"crash during compaction after {len(moves)} of "
                    f"{len(store._index)} live records (shard {shard})"
                )
            if interrupt is not None:
                interrupt("compaction", shard)
            record = old_log.read(offset)
            moves.append((key, fresh.append(record.key, record.value)))

        # ---- commit: everything above was side-effect free on the store
        store._log = fresh
        for key, new_offset in moves:
            updated = store._index.try_update(key, new_offset)
            assert updated is not None, "live key vanished during compaction"
        if durable:
            fresh.attach_faults(faults, shard)
        # Any existing checkpoint hashed the old image prefix; its CRC can
        # no longer match, so drop the slot rather than keep a dud.
        store.clear_checkpoint()
        dropped = old_size - len(fresh)
        store.compactions += 1
        store.records_dropped += dropped
        if on_commit is not None:
            on_commit(store)
        return dropped


__all__ = ["Compactor", "InterruptHook"]
