"""Background maintenance for durable log-structured stores.

The serving stack (PRs 3-5) made the value log durable and the index
recoverable, but left two costs growing without bound: dead log space
(every update or delete strands its old record forever) and restart time
(recovery replays the entire byte image).  This package adds the two
classic maintenance loops that bound them, plus the scheduling glue:

* :class:`Compactor` — rewrites only the live records into a fresh CRC'd
  log segment and atomically swaps it in, patching every surviving key's
  offset in the index.  Crash-safe by construction: nothing the old log
  or index owns is mutated until the commit point, so a crash at any
  record-copy boundary leaves the old image authoritative.
* :class:`Checkpointer` — serializes periodic index checkpoints (via
  :mod:`repro.core.snapshot`) so recovery becomes checkpoint-load plus a
  short tail replay instead of a full log rebuild.
* :class:`MaintenanceDaemon` / :class:`MaintenanceConfig` — garbage-ratio
  and append-count policies deciding *when* each runs, consulted from the
  per-shard writer loops (single-process and worker serving) between
  writes.

Every boundary is fault-plan injectable (``crash_during_compaction``,
``torn_checkpoint``, ``kill_worker_during`` — see :mod:`repro.faults`),
which is what lets the chaos suites prove crash-at-every-boundary safety.
"""

from .checkpoint import Checkpointer
from .compactor import Compactor
from .daemon import MaintenanceConfig, MaintenanceDaemon

__all__ = [
    "Checkpointer",
    "Compactor",
    "MaintenanceConfig",
    "MaintenanceDaemon",
]
