"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``
    Regenerate paper exhibits (all, or a comma-separated subset) at a
    chosen scale, printing each as a text table.
``list``
    List the available experiment ids with their titles.
``fill``
    Fill one scheme to a target load and report its access accounting,
    counter histogram, and FPGA-model latency estimates.
``workload``
    Replay a mixed insert/lookup/delete trace against one scheme and
    report the trace statistics (zero false results expected).
``report``
    Run every experiment and write a self-contained markdown report.
``validate``
    Quick PASS/FAIL re-check of the paper's headline claims.
``bench-core``
    Time the scalar vs batched operation kernels (lookup_many/put_many/
    delete_many) and write the ``BENCH_core.json`` perf baseline.
``serve``
    Run the asyncio TCP server fronting the sharded log-structured
    McCuckoo store (one writer task per shard, explicit backpressure).
    ``--workers N`` executes shards in N supervised worker processes.
``loadgen``
    Drive a closed-loop workload (zipf/uniform/mixed/YCSB) through the
    async client and report ops/sec with per-kind p50/p95/p99 latency
    (``--json`` emits the machine-readable summary).
``faultgen``
    Chaos run: drive a seeded workload at an in-process server with an
    injected fault plan (crashes, torn writes, BUSY storms, corrupt/
    dropped frames, slow shards, worker kills) and verify zero lost
    acknowledged writes; exits non-zero on any safety violation or hang.
``bench-serve``
    Sweep worker counts over the TCP serving path and write the
    ``BENCH_serve.json`` perf baseline.
``compact``
    Offline maintenance: rewrite a durable shard log file to live
    records only (tombstones and overwritten versions dropped).
``checkpoint``
    Offline maintenance: write a checkpoint artifact for a shard log
    file, so the next recovery restores the index and replays only the
    post-checkpoint tail.
``bench-recovery``
    Time restart (full log replay vs checkpoint + tail) across growing
    histories and write the ``BENCH_recovery.json`` perf baseline.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .analysis import ALL_EXPERIMENTS, Scale, render, run_core_sweep
from .analysis.sweep import make_schemes
from .core import DeletionMode
from .core.errors import ReproError
from .core.policies import POLICIES as CORE_POLICIES
from .memory.latency import PAPER_FPGA
from .memory.model import OpStats
from .serve.loadgen import WORKLOADS as LOADGEN_WORKLOADS
from .workloads import TraceGenerator, key_stream, replay

SWEEP_BASED = {"fig9", "fig10", "fig12", "fig13", "fig15", "fig16"}
SCHEME_NAMES = ("Cuckoo", "McCuckoo", "BCHT", "B-McCuckoo")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-copy Cuckoo Hashing (ICDE 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="regenerate paper tables/figures"
    )
    experiments.add_argument("--only", default="",
                             help="comma-separated experiment ids")
    experiments.add_argument("--scale", type=int, default=2000,
                             help="buckets per sub-table (single-slot schemes)")
    experiments.add_argument("--repeats", type=int, default=3)

    sub.add_parser("list", help="list experiment ids")

    fill = sub.add_parser("fill", help="fill one scheme and report stats")
    fill.add_argument("scheme", choices=SCHEME_NAMES)
    fill.add_argument("--load", type=float, default=0.85)
    fill.add_argument("--scale", type=int, default=2000)
    fill.add_argument("--seed", type=int, default=7)

    workload = sub.add_parser("workload", help="replay a mixed op trace")
    workload.add_argument("scheme", choices=SCHEME_NAMES)
    workload.add_argument("--ops", type=int, default=5000)
    workload.add_argument("--scale", type=int, default=2000)
    workload.add_argument("--seed", type=int, default=7)
    workload.add_argument("--insert", type=float, default=0.4)
    workload.add_argument("--lookup", type=float, default=0.35)
    workload.add_argument("--missing", type=float, default=0.15)
    workload.add_argument("--delete", type=float, default=0.1)

    report = sub.add_parser("report", help="write a full markdown report")
    report.add_argument("-o", "--output", default="report.md")
    report.add_argument("--scale", type=int, default=1000)
    report.add_argument("--repeats", type=int, default=2)
    report.add_argument("--only", default="",
                        help="comma-separated experiment ids")
    report.add_argument("--no-charts", action="store_true")

    validate = sub.add_parser(
        "validate",
        help="re-check the paper's headline claims (DESIGN.md §6) quickly",
    )
    validate.add_argument("--scale", type=int, default=600)
    validate.add_argument("--repeats", type=int, default=1)

    bench_core = sub.add_parser(
        "bench-core",
        help="time scalar vs batched kernels and write BENCH_core.json",
    )
    bench_core.add_argument("-o", "--output", default="BENCH_core.json",
                            help="output JSON path ('-' for stdout only)")
    bench_core.add_argument("--quick", action="store_true",
                            help="seconds-scale CI smoke configuration")
    bench_core.add_argument("--phases", default="lookup,put,delete",
                            help="comma-separated subset of lookup,put,delete")
    bench_core.add_argument("--buckets", type=int, default=None,
                            help="buckets per sub-table (default 40000)")
    bench_core.add_argument("--lookups", type=int, default=None,
                            help="uniform queries per lookup cell (default 100000)")
    bench_core.add_argument("--repeats", type=int, default=None,
                            help="best-of repeats per cell (default 3)")
    bench_core.add_argument("--seed", type=int, default=None)
    bench_core.add_argument("--backend", default="python",
                            choices=("python", "numpy", "auto", "both"),
                            help="engine backend to measure; 'both' runs "
                                 "python and numpy side by side")
    bench_core.add_argument("--loads", default=None,
                            help="comma-separated high-load fills for the "
                                 "d=4 bubbling section, e.g. '0.95,0.97' "
                                 "(overrides the config default)")
    bench_core.add_argument("--no-highload", action="store_true",
                            help="skip the d=4 bubbling high-load section")
    bench_core.add_argument("--profile", action="store_true",
                            help="one repeat per cell under cProfile; "
                                 "print top-20 cumulative to stderr")

    serve = sub.add_parser("serve", help="run the KV service over TCP")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9090)
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument("--expected-items", type=int, default=100_000)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--max-connections", type=int, default=64)
    serve.add_argument("--queue-depth", type=int, default=512,
                       help="bounded writer queue per shard (backpressure)")
    serve.add_argument("--timeout", type=float, default=5.0,
                       help="per-request timeout in seconds")
    serve.add_argument("--durable", action="store_true",
                       help="keep per-shard log images for crash recovery")
    serve.add_argument("--faults", default="",
                       help="fault-plan spec (docs/faults.md), e.g. "
                            "'busy=0.05;corrupt_frame=0.01'")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the fault plan's RNGs")
    serve.add_argument("--workers", type=int, default=0,
                       help="shard worker processes (0 = single-process)")
    serve.add_argument("--transport", default="auto",
                       choices=("auto", "shm", "socket"),
                       help="frontend ↔ worker transport: shared-memory "
                            "rings, socketpair streams, or auto (shm when "
                            "the platform supports it)")
    serve.add_argument("--engine", default="auto",
                       choices=("python", "numpy", "auto"),
                       help="batch-kernel backend for the shard indexes "
                            "(default: auto = numpy when installed)")
    serve.add_argument("--kick-policy", default=None,
                       choices=sorted(CORE_POLICIES),
                       help="victim-selection policy for the shard indexes "
                            "(default random-walk; 'bubbling' sustains "
                            "higher index load before resizing)")
    serve.add_argument("--read-path", default="auto",
                       choices=("auto", "ring", "shared"),
                       help="GET path with --workers: 'shared' answers "
                            "reads from seqlock'd shared-memory index "
                            "images without waking the worker; 'ring' "
                            "round-trips every op; auto honours "
                            "REPRO_SERVE_READ_PATH (default ring)")
    serve.add_argument("--replicas", type=int, default=0,
                       help="per-shard read replicas (0 or 1; needs "
                            "--workers >= 2): acked writes are mirrored "
                            "to the next worker ring-wise, and reads "
                            "fail over to it while the owner is down")
    serve.add_argument("--compact-at", type=float, default=None,
                       help="garbage-ratio threshold for background "
                            "compaction (enables the maintenance daemon)")
    serve.add_argument("--checkpoint-every", type=int, default=None,
                       help="appends between checkpoints (enables the "
                            "maintenance daemon; 0 disables)")

    loadgen = sub.add_parser("loadgen", help="drive a workload at a server")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=9090)
    loadgen.add_argument("--workload", default="zipf",
                         choices=sorted(LOADGEN_WORKLOADS))
    loadgen.add_argument("--ops", type=int, default=10_000)
    loadgen.add_argument("--keys", type=int, default=1_000)
    loadgen.add_argument("--concurrency", type=int, default=8,
                         help="closed-loop workers (and connection pool size)")
    loadgen.add_argument("--batch", type=int, default=1,
                         help="ops pipelined per BATCH frame")
    loadgen.add_argument("--value-size", type=int, default=64)
    loadgen.add_argument("--zipf-s", type=float, default=0.99)
    loadgen.add_argument("--mix", default=None,
                         help="op-mix override for mixed-style workloads, "
                              "e.g. 'get=0.95,put=0.05' (kinds: get/put/"
                              "delete; weights need not sum to 1)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--standalone", action="store_true",
                         help="start an in-process server first (demo mode)")
    loadgen.add_argument("--retries", type=int, default=0,
                         help="retry attempts per op (0 = no retry policy)")
    loadgen.add_argument("--deadline", type=float, default=None,
                         help="per-request client deadline in seconds")
    loadgen.add_argument("--json", action="store_true",
                         help="print the machine-readable summary JSON "
                              "instead of the table")
    loadgen.add_argument("--workers", type=int, default=0,
                         help="with --standalone: worker processes for the "
                              "in-process server (0 = single-process)")
    loadgen.add_argument("--transport", default="auto",
                         choices=("auto", "shm", "socket"),
                         help="with --standalone: worker transport for the "
                              "in-process server; also labels the report "
                              "so per-transport ops/s rows are attributable")
    loadgen.add_argument("--read-path", default="auto",
                         choices=("auto", "ring", "shared"),
                         help="with --standalone --workers N: GET path for "
                              "the in-process server")

    faultgen = sub.add_parser(
        "faultgen",
        help="chaos run: loadgen + fault injection + zero-loss verification",
    )
    faultgen.add_argument("--ops", type=int, default=2_000)
    faultgen.add_argument("--keys", type=int, default=256)
    faultgen.add_argument("--concurrency", type=int, default=4)
    faultgen.add_argument("--shards", type=int, default=4)
    faultgen.add_argument("--value-size", type=int, default=32)
    faultgen.add_argument("--seed", type=int, default=0)
    faultgen.add_argument("--faults", default=None,
                          help="fault-plan spec (default: the built-in "
                               "crash/torn/busy/corrupt/drop/delay mix)")
    faultgen.add_argument("--deadline", type=float, default=5.0,
                          help="per-request client deadline in seconds")
    faultgen.add_argument("--run-timeout", type=float, default=60.0,
                          help="wall-clock budget; exceeding it reports a hang")
    faultgen.add_argument("--smoke", action="store_true",
                          help="seconds-scale CI configuration")
    faultgen.add_argument("--workers", type=int, default=0,
                          help="shard worker processes (0 = single-process; "
                               "N > 0 makes kill_worker faults meaningful)")
    faultgen.add_argument("--maintenance", action="store_true",
                          help="run the maintenance daemon (aggressive "
                               "thresholds) and strike during compactions "
                               "and checkpoint writes")
    faultgen.add_argument("--transport", default="auto",
                          choices=("auto", "shm", "socket"),
                          help="worker transport for the driven server "
                               "(with --workers N)")
    faultgen.add_argument("--read-path", default="auto",
                          choices=("auto", "ring", "shared"),
                          help="GET path for the driven server (with "
                               "--workers N); the audit must hold on the "
                               "shared-image path too")
    faultgen.add_argument("--migrate", action="store_true",
                          help="run live shard migrations during the drive "
                               "(with --workers >= 2); the audit must hold "
                               "across routing flips")

    reshard = sub.add_parser(
        "reshard",
        help="live-migration demo: load a worker server, move a shard, "
             "verify every key survived",
    )
    reshard.add_argument("--shards", type=int, default=4)
    reshard.add_argument("--workers", type=int, default=2)
    reshard.add_argument("--keys", type=int, default=2_000)
    reshard.add_argument("--value-size", type=int, default=64)
    reshard.add_argument("--seed", type=int, default=0)
    reshard.add_argument("--shard", type=int, default=0,
                         help="shard to migrate")
    reshard.add_argument("--target", type=int, default=None,
                         help="destination worker (default: the next "
                              "worker ring-wise after the current owner)")
    reshard.add_argument("--transport", default="auto",
                         choices=("auto", "shm", "socket"))
    reshard.add_argument("--faults", default="",
                         help="fault-plan spec, e.g. "
                              "'kill_worker_during=migration:3@0'")
    reshard.add_argument("--fault-seed", type=int, default=0)

    bench_serve = sub.add_parser(
        "bench-serve",
        help="sweep worker counts over the TCP path, write BENCH_serve.json",
    )
    bench_serve.add_argument("-o", "--output", default="BENCH_serve.json",
                             help="output JSON path ('-' for stdout only)")
    bench_serve.add_argument("--quick", action="store_true",
                             help="seconds-scale CI smoke configuration")
    bench_serve.add_argument("--workers", default=None,
                             help="comma-separated sweep points, e.g. "
                                  "'0,1,2,4' (0 = single-process baseline)")
    bench_serve.add_argument("--ops", type=int, default=None)
    bench_serve.add_argument("--keys", type=int, default=None)
    bench_serve.add_argument("--concurrency", type=int, default=None)
    bench_serve.add_argument("--batch", type=int, default=None)
    bench_serve.add_argument("--shards", type=int, default=None)
    bench_serve.add_argument("--repeats", type=int, default=None)
    bench_serve.add_argument("--seed", type=int, default=None)
    bench_serve.add_argument("--read-path", default=None,
                             choices=("ring", "shared", "both"),
                             help="read path(s) for the multi-worker "
                                  "sweeps (default: both when the host "
                                  "has >= 2 CPUs)")
    bench_serve.add_argument("--transport", default=None,
                             choices=("auto", "shm", "socket"),
                             help="worker transport for the multi-worker "
                                  "sweep points (default: auto)")

    compact = sub.add_parser(
        "compact",
        help="rewrite a durable shard log file to live records only",
    )
    compact.add_argument("log", help="shard log file to compact")
    compact.add_argument("-o", "--output", default=None,
                         help="write the compacted log here "
                              "(default: rewrite the input in place)")
    compact.add_argument("--expected-items", type=int, default=1024)
    compact.add_argument("--seed", type=int, default=1,
                         help="index seed the log was written under")

    checkpoint = sub.add_parser(
        "checkpoint",
        help="write a checkpoint artifact for a durable shard log file",
    )
    checkpoint.add_argument("log", help="shard log file to checkpoint")
    checkpoint.add_argument("-o", "--output", required=True,
                            help="checkpoint artifact path")
    checkpoint.add_argument("--expected-items", type=int, default=1024)
    checkpoint.add_argument("--seed", type=int, default=1,
                            help="index seed the log was written under")

    bench_recovery = sub.add_parser(
        "bench-recovery",
        help="time restart (full replay vs checkpoint + tail), write "
             "BENCH_recovery.json",
    )
    bench_recovery.add_argument("-o", "--output",
                                default="BENCH_recovery.json",
                                help="output JSON path ('-' for stdout only)")
    bench_recovery.add_argument("--quick", action="store_true",
                                help="seconds-scale CI smoke configuration")
    bench_recovery.add_argument("--ops", default=None,
                                help="comma-separated historical op counts, "
                                     "e.g. '2000,8000,32000'")
    bench_recovery.add_argument("--tail-ops", type=int, default=None,
                                help="appends after the checkpoint "
                                     "(default 64)")
    bench_recovery.add_argument("--repeats", type=int, default=None,
                                help="best-of repeats per cell")
    bench_recovery.add_argument("--seed", type=int, default=None)
    return parser


def _cmd_list() -> int:
    for name, function in ALL_EXPERIMENTS.items():
        doc = (function.__doc__ or "").strip().splitlines()[0]
        print(f"{name:18s} {doc}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    scale = Scale(n_single=args.scale, repeats=args.repeats)
    selected = (
        [name.strip() for name in args.only.split(",") if name.strip()]
        if args.only
        else list(ALL_EXPERIMENTS)
    )
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    sweep = None
    if any(name in SWEEP_BASED for name in selected):
        start = time.time()
        sweep = run_core_sweep(scale)
        print(f"[shared load sweep: {time.time() - start:.1f}s]")
    for name in selected:
        function = ALL_EXPERIMENTS[name]
        result = function(scale, sweep=sweep) if name in SWEEP_BASED else function(scale)
        print(render(result))
        print()
    return 0


def _cmd_fill(args: argparse.Namespace) -> int:
    scale = Scale(n_single=args.scale, repeats=1)
    factory = make_schemes(scale, seed=args.seed,
                           deletion_mode=DeletionMode.DISABLED)[args.scheme]
    table = factory()
    keys = key_stream(seed=args.seed ^ 0xF111)
    stats = OpStats()
    target = int(args.load * table.capacity)
    start = time.time()
    while len(table) < target:
        with table.mem.measure() as measurement:
            outcome = table.put(next(keys))
        stats.add(measurement.delta, kicks=outcome.kicks)
        if outcome.failed:
            break
    elapsed = time.time() - start
    print(f"{args.scheme}: filled to {table.load_ratio:.2%} "
          f"({len(table)} items) in {elapsed:.2f}s")
    for metric, value in stats.as_row().items():
        print(f"  {metric:24s} {value:.4f}")
    print(f"  access totals            {table.mem.summary()}")
    print(f"  modelled insert latency  {PAPER_FPGA.latency_us(stats):.3f} us/op")
    if hasattr(table, "counter_histogram"):
        print("  counter histogram        "
              f"{dict(sorted(table.counter_histogram().items()))}")
    if hasattr(table, "onchip_bytes"):
        print(f"  on-chip footprint        {table.onchip_bytes} bytes")
    stash = getattr(table, "stash", None)
    if stash is not None:
        print(f"  stash population         {len(stash)}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    scale = Scale(n_single=args.scale, repeats=1)
    factory = make_schemes(scale, seed=args.seed,
                           deletion_mode=DeletionMode.RESET)[args.scheme]
    table = factory()
    trace = TraceGenerator(
        args.ops,
        insert_ratio=args.insert,
        lookup_ratio=args.lookup,
        missing_ratio=args.missing,
        delete_ratio=args.delete,
        seed=args.seed,
    )
    start = time.time()
    stats = replay(table, iter(trace))
    elapsed = time.time() - start
    print(f"{args.scheme}: {args.ops} ops in {elapsed:.2f}s "
          f"({args.ops / elapsed:,.0f} ops/s)")
    print(f"  inserts={stats.inserts} (stashed={stats.stashed}, "
          f"failed={stats.failed})")
    print(f"  lookups={stats.lookups} hits={stats.hits} "
          f"stash_checks={stats.stash_checks}")
    print(f"  deletes={stats.deletes} misses={stats.delete_misses}")
    print(f"  false_negatives={stats.false_negatives} "
          f"false_positives={stats.false_positives}")
    print(f"  access totals {table.mem.summary()}")
    return 1 if (stats.false_negatives or stats.false_positives) else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import write_report

    only = [name.strip() for name in args.only.split(",") if name.strip()] or None
    scale = Scale(n_single=args.scale, repeats=args.repeats)
    try:
        write_report(args.output, scale, only=only,
                     include_charts=not args.no_charts)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"report written to {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Quick pass/fail re-check of the acceptance criteria in DESIGN.md §6."""
    from .analysis import (
        fig9_kickouts,
        fig10_memaccess,
        fig12_lookup_existing,
        fig13_lookup_missing,
        run_core_sweep,
        table1_first_collision,
    )

    scale = Scale(n_single=args.scale, repeats=args.repeats, n_queries=400)
    print(f"validating at n_single={args.scale}, repeats={args.repeats} ...")
    sweep = run_core_sweep(scale)
    checks: List[tuple] = []

    fig9 = fig9_kickouts(scale, sweep=sweep)
    mc = fig9.series("load", "kicks_per_insert", scheme="McCuckoo")
    cu = fig9.series("load", "kicks_per_insert", scheme="Cuckoo")
    checks.append(("fig9: McCuckoo kicks < 70% of Cuckoo @85%",
                   mc[0.85] < cu[0.85] * 0.7))
    bmc = fig9.series("load", "kicks_per_insert", scheme="B-McCuckoo")
    bcht = fig9.series("load", "kicks_per_insert", scheme="BCHT")
    checks.append(("fig9: B-McCuckoo kicks < 50% of BCHT @95%",
                   bmc[0.95] < bcht[0.95] * 0.5))

    fig10 = fig10_memaccess(scale, sweep=sweep)
    mc_reads = fig10.series("load", "reads_per_insert", scheme="McCuckoo")
    cu_reads = fig10.series("load", "reads_per_insert", scheme="Cuckoo")
    checks.append(("fig10a: McCuckoo reads ~0 at 10% load", mc_reads[0.1] < 0.2))
    checks.append(("fig10a: McCuckoo reads below Cuckoo at 85%",
                   mc_reads[0.85] < cu_reads[0.85]))
    mc_writes = fig10.series("load", "writes_per_insert", scheme="McCuckoo")
    cu_writes = fig10.series("load", "writes_per_insert", scheme="Cuckoo")
    checks.append(("fig10b: McCuckoo writes higher at 10% (redundancy)",
                   mc_writes[0.1] > cu_writes[0.1]))

    table1 = table1_first_collision(scale)
    loads = {row["scheme"]: row["first_collision_load"] for row in table1.rows}
    checks.append(("table1: Cuckoo < McCuckoo < BCHT < B-McCuckoo",
                   loads["Cuckoo"] < loads["McCuckoo"]
                   < loads["BCHT"] < loads["B-McCuckoo"]))

    fig12 = fig12_lookup_existing(scale, sweep=sweep)
    checks.append((
        "fig12: McCuckoo existing-lookup accesses below Cuckoo @50%",
        fig12.series("load", "offchip_accesses_per_lookup", scheme="McCuckoo")[0.5]
        < fig12.series("load", "offchip_accesses_per_lookup", scheme="Cuckoo")[0.5],
    ))

    fig13 = fig13_lookup_missing(scale, sweep=sweep)
    checks.append((
        "fig13: Cuckoo missing lookups read all 3 buckets",
        abs(fig13.series("load", "offchip_accesses_per_lookup",
                         scheme="Cuckoo")[0.5] - 3.0) < 1e-9,
    ))
    checks.append((
        "fig13: McCuckoo missing lookups < 1.2 accesses @50%",
        fig13.series("load", "offchip_accesses_per_lookup",
                     scheme="McCuckoo")[0.5] < 1.2,
    ))

    failed = 0
    for label, ok in checks:
        print(f"  [{'PASS' if ok else 'FAIL'}] {label}")
        if not ok:
            failed += 1
    print(f"{len(checks) - failed}/{len(checks)} checks passed")
    return 1 if failed else 0


def _cmd_bench_core(args: argparse.Namespace) -> int:
    import dataclasses

    from .analysis.bench_core import (
        BenchCoreConfig,
        render_report,
        run_bench_core,
        write_report,
    )

    config = BenchCoreConfig.quick() if args.quick else BenchCoreConfig()
    overrides = {}
    if args.buckets is not None:
        overrides["n_buckets"] = args.buckets
    if args.lookups is not None:
        overrides["n_lookups"] = args.lookups
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.backend == "both":
        overrides["backends"] = ("python", "numpy")
    else:
        overrides["backends"] = (args.backend,)
    if args.loads is not None:
        try:
            overrides["highload_loads"] = tuple(
                float(load) for load in args.loads.split(",") if load.strip()
            )
        except ValueError:
            print(f"bad --loads value: {args.loads!r}", file=sys.stderr)
            return 2
    if args.no_highload:
        overrides["highload_loads"] = ()
    if overrides:
        config = dataclasses.replace(config, **overrides)
    phases = tuple(
        phase.strip() for phase in args.phases.split(",") if phase.strip()
    )
    unknown = [phase for phase in phases if phase not in ("lookup", "put", "delete")]
    if unknown:
        print(f"unknown phases: {unknown}", file=sys.stderr)
        return 2
    report = run_bench_core(config, phases=phases, verbose=True,
                            profile=args.profile)
    print(render_report(report))
    if args.output != "-":
        write_report(report, args.output)
        print(f"baseline written to {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import McCuckooServer, ServerConfig

    fault_plan = None
    if args.faults:
        from .faults import FaultPlan

        try:
            fault_plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
        except ReproError as error:
            print(f"repro serve: error: {error}", file=sys.stderr)
            return 2
    maintenance = None
    if args.compact_at is not None or args.checkpoint_every is not None:
        from .maintenance import MaintenanceConfig

        maintenance = MaintenanceConfig(
            compact_at=(args.compact_at
                        if args.compact_at is not None else -1.0),
            checkpoint_every=(args.checkpoint_every
                              if args.checkpoint_every is not None else 0),
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        n_shards=args.shards,
        expected_items=args.expected_items,
        seed=args.seed,
        max_connections=args.max_connections,
        writer_queue_depth=args.queue_depth,
        request_timeout=args.timeout,
        durable=args.durable or maintenance is not None,
        fault_plan=fault_plan,
        engine=args.engine,
        kick_policy=args.kick_policy,
        maintenance=maintenance,
        transport=args.transport,
        read_path=args.read_path,
        replicas=args.replicas,
    )

    if args.workers < 0:
        print("repro serve: error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.replicas and args.workers < 2:
        print("repro serve: error: --replicas needs --workers >= 2",
              file=sys.stderr)
        return 2
    try:
        if args.workers > 0:
            from .serve import WorkerServer

            server_obj: McCuckooServer = WorkerServer(config,
                                                      n_workers=args.workers)
        else:
            server_obj = McCuckooServer(config)
    except ReproError as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 2

    async def run() -> None:
        async with server_obj as server:
            host, port = server.address
            workers = getattr(server, "n_workers", 0)
            transport = getattr(server, "transport", None)
            topology = (f"{workers} worker processes over {transport}"
                        if workers else "single process")
            print(f"serving {config.n_shards}-shard McCuckoo store "
                  f"on {host}:{port} ({topology}; Ctrl-C to stop)")
            if fault_plan is not None:
                print(f"fault injection armed: {fault_plan.describe()}")
            if maintenance is not None:
                print(f"maintenance daemon on: {maintenance.describe()}")
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nserver stopped")
    except (ReproError, OSError) as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import LoadgenConfig, run_loadgen
    from .serve.loadgen import parse_mix

    mix = {}
    if args.mix is not None:
        try:
            ratios = parse_mix(args.mix)
        except ValueError as error:
            print(f"repro loadgen: error: {error}", file=sys.stderr)
            return 2
        mix = {
            "get_ratio": ratios["get"],
            "put_ratio": ratios["put"],
            "delete_ratio": ratios["delete"],
        }
    config = LoadgenConfig(
        workload=args.workload,
        n_ops=args.ops,
        n_keys=args.keys,
        concurrency=args.concurrency,
        batch_size=args.batch,
        value_size=args.value_size,
        zipf_s=args.zipf_s,
        seed=args.seed,
        **mix,
    )

    retry = None
    if args.retries > 0:
        from .serve import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retries,
                            deadline=args.deadline, seed=config.seed)

    async def probe_transport(host: str, port: int) -> str:
        """Ask the target server which worker transport it runs (the
        STATS ``transport_shm`` gauge; absent on a single-process
        server) so recorded ops/s rows are attributable."""
        from .serve import McCuckooClient

        try:
            async with McCuckooClient(host, port) as client:
                stats = await client.stats()
        except Exception:
            return "unknown"
        flag = stats.get("transport_shm")
        if flag is None:
            return "none"
        return "shm" if flag else "socket"

    async def run() -> int:
        if args.standalone:
            from .serve import McCuckooServer, ServerConfig

            server_config = ServerConfig(
                host=args.host, port=0,
                expected_items=max(4096, 2 * args.keys),
                transport=args.transport,
                read_path=args.read_path,
            )
            if args.workers > 0:
                from .serve import WorkerServer

                server = WorkerServer(server_config, n_workers=args.workers)
                transport = server.transport
            else:
                server = McCuckooServer(server_config)
                transport = "none"
            async with server:
                host, port = server.address
                if not args.json:
                    print(f"[standalone server on {host}:{port}]")
                report = await run_loadgen(host, port, config, retry=retry,
                                           transport=transport)
        else:
            transport = await probe_transport(args.host, args.port)
            report = await run_loadgen(args.host, args.port, config,
                                       retry=retry, transport=transport)
        if args.json:
            import json

            print(json.dumps(report.summary_json(), indent=2))
        else:
            print(report.render())
        return 1 if report.errors else 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("\nloadgen interrupted")
        return 130
    except (ReproError, OSError) as error:
        print(f"repro loadgen: error: {error}", file=sys.stderr)
        return 2


def _cmd_faultgen(args: argparse.Namespace) -> int:
    import asyncio
    import dataclasses

    from .serve import FaultgenConfig, run_faultgen

    if args.smoke:
        config = FaultgenConfig.smoke(seed=args.seed,
                                      maintenance=args.maintenance)
    else:
        config = FaultgenConfig(
            n_ops=args.ops,
            n_keys=args.keys,
            concurrency=args.concurrency,
            n_shards=args.shards,
            value_size=args.value_size,
            seed=args.seed,
            deadline=args.deadline,
            run_timeout=args.run_timeout,
            maintenance=args.maintenance,
        )
    if args.faults is not None:
        config = dataclasses.replace(config, faults=args.faults)
    if args.workers > 0:
        config = dataclasses.replace(config, n_workers=args.workers)
    if args.transport != "auto":
        config = dataclasses.replace(config, transport=args.transport)
    if args.read_path != "auto":
        config = dataclasses.replace(config, read_path=args.read_path)
    if args.migrate:
        if config.n_workers < 2:
            print("repro faultgen: error: --migrate needs --workers >= 2",
                  file=sys.stderr)
            return 2
        config = dataclasses.replace(config, migrate=True)
    try:
        report = asyncio.run(run_faultgen(config))
    except KeyboardInterrupt:
        print("\nfaultgen interrupted")
        return 130
    except (ReproError, OSError) as error:
        print(f"repro faultgen: error: {error}", file=sys.stderr)
        return 2
    print(report.render())
    if not report.ok:
        workers = f" --workers {config.n_workers}" if config.n_workers else ""
        maintenance = " --maintenance" if config.maintenance else ""
        transport = (f" --transport {config.transport}"
                     if config.transport != "auto" else "")
        read_path = (f" --read-path {config.read_path}"
                     if config.read_path != "auto" else "")
        migrate = " --migrate" if config.migrate else ""
        print(f"reproduce with: repro faultgen --seed {config.seed} "
              f"--ops {config.n_ops} --keys {config.n_keys} "
              f"--concurrency {config.concurrency}"
              f"{workers}{maintenance}{transport}{read_path}{migrate}",
              file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_reshard(args: argparse.Namespace) -> int:
    """Standalone live-migration demo: load, migrate, verify, report."""
    import asyncio

    from .serve import McCuckooClient, ServerConfig, WorkerServer

    if args.workers < 2:
        print("repro reshard: error: --workers must be >= 2", file=sys.stderr)
        return 2
    if not 0 <= args.shard < args.shards:
        print(f"repro reshard: error: --shard must be in [0, {args.shards})",
              file=sys.stderr)
        return 2
    fault_plan = None
    if args.faults:
        from .faults import FaultPlan

        try:
            fault_plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
        except ReproError as error:
            print(f"repro reshard: error: {error}", file=sys.stderr)
            return 2
    config = ServerConfig(
        n_shards=args.shards,
        expected_items=max(4096, 4 * args.keys),
        seed=args.seed,
        durable=True,
        fault_plan=fault_plan,
        transport=args.transport,
    )

    async def run() -> int:
        from .serve.loadgen import value_bytes

        async with WorkerServer(config, n_workers=args.workers) as server:
            host, port = server.address
            target = args.target
            if target is None:
                owner = server.routing.worker_of_shard(args.shard)
                target = (owner + 1) % server.n_workers
            async with McCuckooClient(host, port) as client:
                expected = {}
                for key in range(1, args.keys + 1):
                    value = value_bytes(key, 0, args.value_size)
                    if await client.put(key, value):
                        expected[key] = value
                report = await server.reshard(args.shard, target)
                print(report.render())
                await server.pool.await_restarts()
                await server.drain_writes()
                lost = 0
                for key, value in expected.items():
                    if await client.get(key) != value:
                        lost += 1
                print(f"verify: {len(expected)} acked keys, {lost} lost")
                return 0 if lost == 0 else 1

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("\nreshard interrupted")
        return 130
    except (ReproError, OSError) as error:
        print(f"repro reshard: error: {error}", file=sys.stderr)
        return 2


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from .analysis.bench_serve import (
        BenchServeConfig,
        render_report,
        run_bench_serve,
        write_report,
    )

    config = BenchServeConfig.quick() if args.quick else BenchServeConfig()
    overrides = {}
    if args.workers is not None:
        try:
            sweep = tuple(int(part) for part in args.workers.split(",")
                          if part.strip() != "")
        except ValueError:
            print(f"repro bench-serve: bad --workers {args.workers!r}",
                  file=sys.stderr)
            return 2
        if not sweep or min(sweep) < 0:
            print("repro bench-serve: --workers needs non-negative points",
                  file=sys.stderr)
            return 2
        overrides["workers"] = sweep
    if args.ops is not None:
        overrides["n_ops"] = args.ops
    if args.keys is not None:
        overrides["n_keys"] = args.keys
    if args.concurrency is not None:
        overrides["concurrency"] = args.concurrency
    if args.batch is not None:
        overrides["batch_size"] = args.batch
    if args.shards is not None:
        overrides["n_shards"] = args.shards
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.transport is not None:
        overrides["transport"] = args.transport
    if args.read_path is not None:
        overrides["read_paths"] = (("ring", "shared")
                                   if args.read_path == "both"
                                   else (args.read_path,))
    if overrides:
        config = dataclasses.replace(config, **overrides)
    try:
        report = run_bench_serve(config, verbose=True)
    except ReproError as error:
        print(f"repro bench-serve: error: {error}", file=sys.stderr)
        return 2
    print(render_report(report))
    if args.output != "-":
        write_report(report, args.output)
        print(f"baseline written to {args.output}")
    return 0


def _load_log_file(path: str, expected_items: int, seed: int):
    """Verbatim-image load shared by the offline maintenance verbs."""
    from .apps.kvstore import LogStructuredStore

    with open(path, "rb") as handle:
        data = handle.read()
    store = LogStructuredStore.open_from_bytes(
        data, expected_items=expected_items, seed=seed
    )
    report = store.recovery_report
    assert report is not None
    if report.torn_tail:
        print(f"note: truncated a torn {report.bytes_truncated}-byte tail",
              file=sys.stderr)
    return store


def _cmd_compact(args: argparse.Namespace) -> int:
    try:
        store = _load_log_file(args.log, args.expected_items, args.seed)
    except (OSError, ReproError) as error:
        print(f"repro compact: error: {error}", file=sys.stderr)
        return 2
    before = store.log_size
    dropped = store.compact()
    output = args.output or args.log
    with open(output, "wb") as handle:
        handle.write(store.log_bytes)
    print(f"compacted {args.log}: {before} -> {store.log_size} bytes "
          f"({dropped} dead records dropped, {len(store)} live) -> {output}")
    if dropped:
        print("note: any existing checkpoint for this log is now stale "
              "(it will self-invalidate on recovery); re-run "
              "'repro checkpoint' to refresh it")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    try:
        store = _load_log_file(args.log, args.expected_items, args.seed)
    except (OSError, ReproError) as error:
        print(f"repro checkpoint: error: {error}", file=sys.stderr)
        return 2
    artifact = store.take_checkpoint()
    with open(args.output, "wb") as handle:
        handle.write(artifact)
    print(f"checkpoint for {args.log} ({store.log_records} records, "
          f"{len(store)} live keys) -> {args.output} "
          f"({len(artifact)} bytes)")
    return 0


def _cmd_bench_recovery(args: argparse.Namespace) -> int:
    import dataclasses

    from .analysis.bench_recovery import (
        BenchRecoveryConfig,
        render_report,
        run_bench_recovery,
        write_report,
    )

    config = (BenchRecoveryConfig.quick() if args.quick
              else BenchRecoveryConfig())
    overrides = {}
    if args.ops is not None:
        try:
            counts = tuple(int(part) for part in args.ops.split(",")
                           if part.strip())
        except ValueError:
            print(f"repro bench-recovery: bad --ops {args.ops!r}",
                  file=sys.stderr)
            return 2
        if not counts or min(counts) <= 0:
            print("repro bench-recovery: --ops needs positive counts",
                  file=sys.stderr)
            return 2
        overrides["op_counts"] = counts
    if args.tail_ops is not None:
        overrides["tail_ops"] = args.tail_ops
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        config = dataclasses.replace(config, **overrides)
    report = run_bench_recovery(config, verbose=True)
    print(render_report(report))
    if args.output != "-":
        write_report(report, args.output)
        print(f"baseline written to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "experiments":
        return _cmd_experiments(args)
    if args.command == "fill":
        return _cmd_fill(args)
    if args.command == "workload":
        return _cmd_workload(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "bench-core":
        return _cmd_bench_core(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "faultgen":
        return _cmd_faultgen(args)
    if args.command == "reshard":
        return _cmd_reshard(args)
    if args.command == "bench-serve":
        return _cmd_bench_serve(args)
    if args.command == "compact":
        return _cmd_compact(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    if args.command == "bench-recovery":
        return _cmd_bench_recovery(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
