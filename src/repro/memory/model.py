"""Memory-hierarchy access accounting.

The paper evaluates every scheme by how many times it touches the *off-chip*
main table versus the *on-chip* helper structures (counters, small stashes).
This module provides :class:`MemoryModel`, a shared accountant that each hash
table reports its accesses to.  All figures in the paper's evaluation are
functions of these counts, so every table in this library routes its bucket
and counter traffic through a ``MemoryModel``.

The model deliberately stores *no data* — it only counts.  Data lives in the
table objects themselves; the split keeps accounting orthogonal to storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union


class Tier(Enum):
    """Which level of the memory hierarchy an access touches."""

    ON_CHIP = "on_chip"
    OFF_CHIP = "off_chip"


class Op(Enum):
    """Access direction."""

    READ = "read"
    WRITE = "write"


class CounterCharging(Enum):
    """How bulk counter reads (:meth:`PackedArray.get_block`) are charged.

    ``PER_COUNTER`` — every counter read charges one access, exactly as the
    scalar ``get``/``get_many`` path does.  This is the default and the mode
    every paper-figure experiment runs in, so batching never changes the
    reproduction's access counts.

    ``PER_WORD`` — one access per distinct 64-bit SRAM word touched, the
    cost a real on-chip counter block with a word-wide read port would pay.
    Opt-in, for what-if studies only.
    """

    PER_COUNTER = "per_counter"
    PER_WORD = "per_word"


@dataclass
class AccessCounts:
    """Plain read/write counters for one memory tier."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def copy(self) -> "AccessCounts":
        return AccessCounts(self.reads, self.writes)

    def __sub__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(self.reads - other.reads, self.writes - other.writes)

    def __add__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(self.reads + other.reads, self.writes + other.writes)


@dataclass
class Snapshot:
    """Immutable view of both tiers at one instant."""

    on_chip: AccessCounts
    off_chip: AccessCounts

    def __sub__(self, other: "Snapshot") -> "Snapshot":
        return Snapshot(
            on_chip=self.on_chip - other.on_chip,
            off_chip=self.off_chip - other.off_chip,
        )

    @property
    def off_chip_reads(self) -> int:
        return self.off_chip.reads

    @property
    def off_chip_writes(self) -> int:
        return self.off_chip.writes

    @property
    def off_chip_total(self) -> int:
        return self.off_chip.total


class MemoryModel:
    """Counts on-chip and off-chip reads/writes.

    Tables call :meth:`onchip_read` / :meth:`offchip_write` etc. around their
    structural operations.  Experiments wrap an operation with
    :meth:`measure` to obtain the per-operation delta.

    A small bounded trace of recent accesses can be enabled for debugging
    and for tests that assert *which* accesses happened, not just how many.
    """

    def __init__(
        self,
        trace_capacity: int = 0,
        counter_charging: CounterCharging = CounterCharging.PER_COUNTER,
    ) -> None:
        self.on_chip = AccessCounts()
        self.off_chip = AccessCounts()
        self.counter_charging = counter_charging
        self._trace_capacity = trace_capacity
        self._trace: List[Tuple[Tier, Op, str]] = []

    # -- recording ---------------------------------------------------------

    def record(self, tier: Tier, op: Op, label: str = "", count: int = 1) -> None:
        """Record ``count`` accesses of the given kind."""
        if count < 0:
            raise ValueError("access count must be non-negative")
        bucket = self.on_chip if tier is Tier.ON_CHIP else self.off_chip
        if op is Op.READ:
            bucket.reads += count
        else:
            bucket.writes += count
        if self._trace_capacity:
            for _ in range(count):
                if len(self._trace) >= self._trace_capacity:
                    self._trace.pop(0)
                self._trace.append((tier, op, label))

    def charge_counter_block(
        self,
        tier: Tier,
        op: Op,
        label: str,
        n_counters: int,
        n_words: Union[int, Callable[[], int]],
    ) -> None:
        """Charge one bulk counter access according to the charging mode.

        This is the single place the ``PER_COUNTER`` / ``PER_WORD`` policy
        is applied, so the Python and NumPy execution backends (and any
        future one) cannot drift: the caller reports *both* the number of
        logical counters touched and the number of distinct 64-bit SRAM
        words they live in, and the mode picks which figure is billed.
        ``n_words`` may be a thunk so the (set-building) word dedup is
        only paid when ``PER_WORD`` is actually selected.
        """
        if self.counter_charging is CounterCharging.PER_WORD:
            words = n_words() if callable(n_words) else n_words
            self.record(tier, op, label, words)
        else:
            self.record(tier, op, label, n_counters)

    def onchip_read(self, label: str = "", count: int = 1) -> None:
        self.record(Tier.ON_CHIP, Op.READ, label, count)

    def onchip_write(self, label: str = "", count: int = 1) -> None:
        self.record(Tier.ON_CHIP, Op.WRITE, label, count)

    def offchip_read(self, label: str = "", count: int = 1) -> None:
        self.record(Tier.OFF_CHIP, Op.READ, label, count)

    def offchip_write(self, label: str = "", count: int = 1) -> None:
        self.record(Tier.OFF_CHIP, Op.WRITE, label, count)

    # -- observation -------------------------------------------------------

    def snapshot(self) -> Snapshot:
        return Snapshot(on_chip=self.on_chip.copy(), off_chip=self.off_chip.copy())

    def measure(self) -> "_Measurement":
        """Context manager returning the access delta of the enclosed block.

        >>> mem = MemoryModel()
        >>> with mem.measure() as m:
        ...     mem.offchip_read("bucket")
        >>> m.delta.off_chip.reads
        1
        """
        return _Measurement(self)

    @property
    def trace(self) -> List[Tuple[Tier, Op, str]]:
        return list(self._trace)

    def trace_labels(self, tier: Optional[Tier] = None) -> Iterator[str]:
        for t, _, label in self._trace:
            if tier is None or t is tier:
                yield label

    def reset(self) -> None:
        self.on_chip = AccessCounts()
        self.off_chip = AccessCounts()
        self._trace.clear()

    def summary(self) -> Dict[str, int]:
        """Flat dict view, convenient for experiment result rows."""
        return {
            "on_chip_reads": self.on_chip.reads,
            "on_chip_writes": self.on_chip.writes,
            "off_chip_reads": self.off_chip.reads,
            "off_chip_writes": self.off_chip.writes,
        }


class _Measurement:
    """Context-manager helper produced by :meth:`MemoryModel.measure`."""

    def __init__(self, model: MemoryModel) -> None:
        self._model = model
        self._start: Optional[Snapshot] = None
        self.delta: Optional[Snapshot] = None

    def __enter__(self) -> "_Measurement":
        self._start = self._model.snapshot()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        assert self._start is not None
        self.delta = self._model.snapshot() - self._start


@dataclass
class OpStats:
    """Aggregated per-operation statistics over a batch of operations.

    Accumulates deltas from :meth:`MemoryModel.measure` plus scheme-specific
    counters (kick-outs), and exposes the per-operation averages the paper
    plots.
    """

    operations: int = 0
    kicks: int = 0
    on_chip: AccessCounts = field(default_factory=AccessCounts)
    off_chip: AccessCounts = field(default_factory=AccessCounts)

    def add(self, delta: Snapshot, kicks: int = 0) -> None:
        self.operations += 1
        self.kicks += kicks
        self.on_chip = self.on_chip + delta.on_chip
        self.off_chip = self.off_chip + delta.off_chip

    def merge(self, other: "OpStats") -> None:
        self.operations += other.operations
        self.kicks += other.kicks
        self.on_chip = self.on_chip + other.on_chip
        self.off_chip = self.off_chip + other.off_chip

    def _per_op(self, value: int) -> float:
        return value / self.operations if self.operations else 0.0

    @property
    def kicks_per_op(self) -> float:
        return self._per_op(self.kicks)

    @property
    def offchip_reads_per_op(self) -> float:
        return self._per_op(self.off_chip.reads)

    @property
    def offchip_writes_per_op(self) -> float:
        return self._per_op(self.off_chip.writes)

    @property
    def offchip_accesses_per_op(self) -> float:
        return self._per_op(self.off_chip.total)

    @property
    def onchip_reads_per_op(self) -> float:
        return self._per_op(self.on_chip.reads)

    @property
    def onchip_writes_per_op(self) -> float:
        return self._per_op(self.on_chip.writes)

    def as_row(self) -> Dict[str, float]:
        return {
            "ops": self.operations,
            "kicks_per_op": self.kicks_per_op,
            "offchip_reads_per_op": self.offchip_reads_per_op,
            "offchip_writes_per_op": self.offchip_writes_per_op,
            "onchip_reads_per_op": self.onchip_reads_per_op,
            "onchip_writes_per_op": self.onchip_writes_per_op,
        }
