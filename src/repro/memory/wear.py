"""Per-bucket write-wear accounting for flash/NVM scenarios.

The paper's memory model counts *how many* off-chip accesses a scheme
makes; for flash or NVM the *distribution* of writes matters too, because
a cell wears out after a bounded number of program/erase cycles and the
device dies when its hottest cell does.  Eppstein, Goodrich, Mitzenmacher
and Pszona (*Wear Minimization for Cuckoo Hashing*, arXiv 1404.0286) frame
this as minimizing the **maximum** number of times any bucket is written.

:class:`WearMeter` is the accountant: tables call :meth:`note` with the
global bucket index on every off-chip bucket write, and the meter keeps a
per-bucket write count plus cheap aggregates.  It deliberately mirrors
:class:`~repro.memory.model.MemoryModel`'s "count, store no data" split —
attach one to a table (``McCuckoo(..., wear_meter=meter)``) and read the
wear surface off it afterwards.  The wear-aware kick policy
(:class:`~repro.core.policies.WearAwarePolicy`) shares the same meter to
steer evictions toward the least-worn candidate.
"""

from __future__ import annotations

from typing import Dict, List


class WearMeter:
    """Per-bucket write counts with max/mean/total aggregates."""

    def __init__(self, n_buckets: int = 0) -> None:
        self._counts: List[int] = [0] * n_buckets
        self._total = 0

    def resize(self, n_buckets: int) -> None:
        """Grow the tracked bucket space (counts are preserved)."""
        if n_buckets > len(self._counts):
            self._counts.extend([0] * (n_buckets - len(self._counts)))

    def note(self, bucket: int, count: int = 1) -> None:
        """Record ``count`` writes to ``bucket``."""
        if bucket >= len(self._counts):
            self.resize(bucket + 1)
        self._counts[bucket] += count
        self._total += count

    def wear_of(self, bucket: int) -> int:
        if 0 <= bucket < len(self._counts):
            return self._counts[bucket]
        return 0

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------

    @property
    def n_buckets(self) -> int:
        return len(self._counts)

    @property
    def total_writes(self) -> int:
        return self._total

    @property
    def max_wear(self) -> int:
        return max(self._counts) if self._counts else 0

    @property
    def mean_wear(self) -> float:
        if not self._counts:
            return 0.0
        return self._total / len(self._counts)

    @property
    def wear_imbalance(self) -> float:
        """max/mean — 1.0 is perfectly level, the device-lifetime metric."""
        mean = self.mean_wear
        return self.max_wear / mean if mean else 1.0

    def histogram(self) -> Dict[int, int]:
        """``{write count: number of buckets}`` over the tracked space."""
        out: Dict[int, int] = {}
        for count in self._counts:
            out[count] = out.get(count, 0) + 1
        return out

    def summary(self) -> str:
        return (
            f"wear: total={self.total_writes} max={self.max_wear} "
            f"mean={self.mean_wear:.2f} imbalance={self.wear_imbalance:.2f}"
        )


__all__ = ["WearMeter"]
