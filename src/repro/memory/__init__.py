"""Memory-hierarchy simulation: access accounting and the FPGA latency model."""

from .latency import PAPER_FPGA, LatencyModel
from .model import AccessCounts, CounterCharging, MemoryModel, Op, OpStats, Snapshot, Tier
from .wear import WearMeter

__all__ = [
    "AccessCounts",
    "CounterCharging",
    "LatencyModel",
    "MemoryModel",
    "Op",
    "OpStats",
    "PAPER_FPGA",
    "Snapshot",
    "Tier",
    "WearMeter",
]
