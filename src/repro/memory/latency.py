"""Cycle-level latency and throughput model of the paper's FPGA platform.

The paper's §IV.F evaluation runs on an Altera Stratix V board:

* hash calculation and scheme logic: 1 CLK at 333 MHz;
* on-chip SRAM: read 3 CLK, write 1 CLK (at 333 MHz);
* off-chip DDR3 (controller at 200 MHz): read ≈18 CLK, write 1 CLK — writes
  are fire-and-forget into the controller, reads stall the pipeline.

We do not have the board, so Figures 15 and 16 are reproduced by applying
exactly this arithmetic to the access counts gathered by
:class:`repro.memory.model.MemoryModel`.  Record size enters through a burst
term: DDR3 moves 64-bit words, so a record of ``record_bytes`` needs
``ceil(record_bytes / bus_bytes)`` bus beats beyond the fixed access setup.
This preserves the paper's qualitative findings (skipping bucket reads pays
off more as records grow; counter checking is relatively expensive for tiny
records) without pretending to be cycle-exact for a board we cannot run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .model import OpStats, Snapshot


@dataclass(frozen=True)
class LatencyModel:
    """Latency parameters, defaulting to the paper's published numbers."""

    logic_clk_hz: float = 333e6
    mem_clk_hz: float = 200e6
    logic_cycles_per_op: int = 1
    onchip_read_cycles: int = 3
    onchip_write_cycles: int = 1
    offchip_read_setup_cycles: int = 18
    offchip_write_cycles: int = 1
    bus_bytes: int = 8
    record_bytes: int = 8

    def _burst_beats(self) -> int:
        return max(1, math.ceil(self.record_bytes / self.bus_bytes))

    def offchip_read_cycles(self) -> int:
        """Memory-clock cycles one off-chip bucket/record read costs."""
        return self.offchip_read_setup_cycles + self._burst_beats() - 1

    def logic_seconds(self, cycles: float) -> float:
        return cycles / self.logic_clk_hz

    def mem_seconds(self, cycles: float) -> float:
        return cycles / self.mem_clk_hz

    def seconds_for(self, delta: Snapshot, logic_ops: int = 1) -> float:
        """Wall-clock seconds implied by one operation's access delta.

        The paper's implementation is unpipelined, so the latency of an
        operation is the plain sum of its component latencies.
        """
        logic = self.logic_cycles_per_op * logic_ops
        onchip = (
            delta.on_chip.reads * self.onchip_read_cycles
            + delta.on_chip.writes * self.onchip_write_cycles
        )
        offchip = (
            delta.off_chip.reads * self.offchip_read_cycles()
            + delta.off_chip.writes * self.offchip_write_cycles
        )
        return self.logic_seconds(logic + onchip) + self.mem_seconds(offchip)

    def latency_us(self, stats: OpStats) -> float:
        """Average per-operation latency in microseconds for a batch."""
        if not stats.operations:
            return 0.0
        snapshot = Snapshot(on_chip=stats.on_chip, off_chip=stats.off_chip)
        total = self.seconds_for(snapshot, logic_ops=stats.operations)
        return total / stats.operations * 1e6

    def throughput_mops(self, stats: OpStats) -> float:
        """Sustained throughput in million operations per second."""
        us = self.latency_us(stats)
        if us == 0.0:
            return 0.0
        return 1.0 / us

    def batch_seconds(self, epochs: int, total_reads: int, logic_ops: int = 0) -> float:
        """Wall-clock seconds for an AMAC-style batched run.

        The paper's board is unpipelined, so a *serial* run pays one full
        off-chip read latency per read.  With memory-level parallelism the
        controller overlaps outstanding reads: each scheduler *epoch* (see
        :func:`repro.core.batch.batched_lookup`) costs one read latency
        regardless of how many reads it overlaps, plus one bus burst per
        read actually transferred (bandwidth is still serial).
        """
        if epochs < 0 or total_reads < 0 or logic_ops < 0:
            raise ValueError("epochs, total_reads and logic_ops must be >= 0")
        setup = epochs * self.offchip_read_setup_cycles
        bursts = total_reads * self._burst_beats()
        return self.mem_seconds(setup + bursts) + self.logic_seconds(
            logic_ops * self.logic_cycles_per_op
        )

    def with_record_bytes(self, record_bytes: int) -> "LatencyModel":
        """A copy of this model for a different record size (Fig. 15/16 sweeps)."""
        if record_bytes <= 0:
            raise ValueError("record_bytes must be positive")
        return LatencyModel(
            logic_clk_hz=self.logic_clk_hz,
            mem_clk_hz=self.mem_clk_hz,
            logic_cycles_per_op=self.logic_cycles_per_op,
            onchip_read_cycles=self.onchip_read_cycles,
            onchip_write_cycles=self.onchip_write_cycles,
            offchip_read_setup_cycles=self.offchip_read_setup_cycles,
            offchip_write_cycles=self.offchip_write_cycles,
            bus_bytes=self.bus_bytes,
            record_bytes=record_bytes,
        )


PAPER_FPGA = LatencyModel()
"""The model instantiated with the paper's Stratix V / DDR3 numbers."""
