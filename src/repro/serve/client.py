"""Async client for the McCuckoo KV service.

:class:`McCuckooClient` keeps a pool of plain TCP connections (opened
lazily, up to ``pool_size``) and issues one request per acquired
connection, so up to ``pool_size`` requests are in flight concurrently.
Pipelining is done with BATCH frames: :meth:`McCuckooClient.batch` packs
many operations into a single round trip and returns per-op replies in
order.

Server-signalled errors surface as exceptions (:class:`ServerBusyError`
for backpressure, :class:`RequestTimeoutError`, :class:`ServeError` for
the rest) — except inside a batch, where per-op error replies are returned
in place so one hot shard can't poison its neighbours' results.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar, Union

from ..core.errors import ReproError
from ..hashing import KeyLike, canonical_key
from .protocol import (
    MAX_FRAME_BYTES,
    BatchReply,
    BatchRequest,
    DeleteReply,
    DeleteRequest,
    ErrorCode,
    ErrorReply,
    GetRequest,
    ProtocolError,
    PutReply,
    PutRequest,
    Reply,
    Request,
    SimpleReply,
    SimpleRequest,
    StatsReply,
    StatsRequest,
    ValueReply,
    decode_reply,
    encode_request,
    read_frame,
    write_frame,
)

#: batch ops are given as tuples: ("get", key), ("put", key, value),
#: ("delete", key), or ("stats",)
BatchOp = Union[
    Tuple[str, KeyLike],
    Tuple[str, KeyLike, bytes],
    Tuple[str],
]

_Connection = Tuple[asyncio.StreamReader, asyncio.StreamWriter]


class ServeError(ReproError):
    """The server answered with an error frame."""

    def __init__(self, code: ErrorCode, message: str = "") -> None:
        super().__init__(f"{code.name}: {message}" if message else code.name)
        self.code = code


class ServerBusyError(ServeError):
    """Backpressure: writer queue or connection limit saturated."""


class RequestTimeoutError(ServeError):
    """The server gave up on the request after its configured timeout."""


class ServerUnavailableError(ServeError):
    """The op was in flight to a worker process that died mid-request."""


def _raise_for(reply: ErrorReply) -> None:
    if reply.code is ErrorCode.BUSY:
        raise ServerBusyError(reply.code, reply.message)
    if reply.code is ErrorCode.TIMEOUT:
        raise RequestTimeoutError(reply.code, reply.message)
    if reply.code is ErrorCode.UNAVAILABLE:
        raise ServerUnavailableError(reply.code, reply.message)
    raise ServeError(reply.code, reply.message)


#: failures worth replaying: backpressure, lost/garbled transport, and a
#: worker death with the op in flight.  A lost or corrupted ack after an
#: applied write is indistinguishable from a never-delivered request, so
#: only idempotent requests are safe to replay — every verb here qualifies
#: (PUT with the same bytes, DELETE, GET, STATS); UNAVAILABLE is the same
#: outcome-unknown shape with the loss inside the server's process
#: topology instead of on the wire.  Server-side TIMEOUT/INTERNAL frames
#: are definitive replies and are NOT retried.
_RETRYABLE = (ServerBusyError, ServerUnavailableError, ConnectionError,
              ProtocolError, OSError)

_T = TypeVar("_T")


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff with seeded jitter.

    The schedule — ``base_delay * multiplier**n`` capped at ``max_delay``,
    each step scaled by ``1 ± jitter`` drawn from a ``random.Random(seed)``
    — is a pure function of the policy's fields (see :meth:`delays`), so a
    failing run replays identically from its seed.  ``deadline`` bounds
    one *logical* request end-to-end: attempts plus backoff sleeps; when it
    expires the client raises :class:`RequestTimeoutError` and stops — it
    never leaves a straggler attempt running.
    """

    max_attempts: int = 6
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.2
    deadline: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delays(self) -> Iterator[float]:
        """The backoff schedule, regenerated identically per request."""
        rng = random.Random(self.seed)
        delay = self.base_delay
        while True:
            yield min(delay, self.max_delay) * (
                1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            )
            delay *= self.multiplier


class McCuckooClient:
    """Connection-pooled async client; use as an async context manager."""

    def __init__(
        self,
        host: str,
        port: int,
        pool_size: int = 4,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self.max_frame_bytes = max_frame_bytes
        self.retry = retry
        self.retries = 0
        """Transport/BUSY failures replayed so far (all requests)."""
        self._idle: asyncio.LifoQueue = asyncio.LifoQueue()
        self._slots = asyncio.Semaphore(pool_size)
        self._open: List[_Connection] = []
        self._closed = False

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------

    async def _acquire(self) -> _Connection:
        if self._closed:
            raise RuntimeError("client is closed")
        await self._slots.acquire()
        try:
            while True:
                try:
                    connection = self._idle.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if not connection[1].is_closing():
                    return connection
                self._discard(connection)
            reader, writer = await asyncio.open_connection(self.host, self.port)
            connection = (reader, writer)
            self._open.append(connection)
            return connection
        except BaseException:
            self._slots.release()
            raise

    def _release(self, connection: _Connection) -> None:
        self._idle.put_nowait(connection)
        self._slots.release()

    def _discard(self, connection: _Connection) -> None:
        _, writer = connection
        if connection in self._open:
            self._open.remove(connection)
        writer.close()

    async def close(self) -> None:
        """Close every pooled connection; the client is unusable after."""
        self._closed = True
        for connection in list(self._open):
            self._discard(connection)
        self._open = []

    async def __aenter__(self) -> "McCuckooClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------

    async def request(self, request: Request) -> Reply:
        """One framed round trip; raises on transport or framing failure."""
        connection = await self._acquire()
        reader, writer = connection
        try:
            await write_frame(writer, encode_request(request))
            body = await read_frame(reader, self.max_frame_bytes)
        except BaseException:
            self._discard(connection)
            self._slots.release()
            raise
        if not body:
            self._discard(connection)
            self._slots.release()
            raise ConnectionError("server closed the connection")
        self._release(connection)
        return decode_reply(body)

    async def _with_retry(self, attempt: Callable[[], Awaitable[_T]]) -> _T:
        """Run one logical request under the client's retry policy.

        Retries :data:`_RETRYABLE` failures with the policy's deterministic
        backoff; a configured deadline caps attempts *and* sleeps, raising
        :class:`RequestTimeoutError` once it expires (the in-flight attempt
        is cancelled, so nothing is sent after the deadline).
        """
        policy = self.retry
        if policy is None:
            return await attempt()
        loop = asyncio.get_running_loop()
        start = loop.time()
        delays = policy.delays()
        tries = 0

        def remaining() -> Optional[float]:
            if policy.deadline is None:
                return None
            return policy.deadline - (loop.time() - start)

        def expired() -> RequestTimeoutError:
            return RequestTimeoutError(
                ErrorCode.TIMEOUT,
                f"client deadline of {policy.deadline}s exceeded "
                f"after {tries} attempt(s)",
            )

        while True:
            tries += 1
            budget = remaining()
            if budget is not None and budget <= 0:
                raise expired()
            try:
                if budget is not None:
                    return await asyncio.wait_for(attempt(), budget)
                return await attempt()
            except asyncio.TimeoutError as error:
                raise expired() from error
            except _RETRYABLE:
                self.retries += 1
                if tries >= policy.max_attempts:
                    raise
                pause = next(delays)
                budget = remaining()
                if budget is not None:
                    if budget <= 0:
                        raise expired()
                    pause = min(pause, budget)
                await asyncio.sleep(pause)

    async def _simple(self, request: SimpleRequest) -> SimpleReply:
        async def attempt() -> Reply:
            reply = await self.request(request)
            if isinstance(reply, ErrorReply):
                _raise_for(reply)  # BUSY raises inside the retry scope
            return reply

        reply = await self._with_retry(attempt)
        assert not isinstance(reply, (BatchReply, ErrorReply))
        return reply

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------

    async def get(self, key: KeyLike) -> Optional[bytes]:
        """The stored value, or None when the key is absent."""
        reply = await self._simple(GetRequest(canonical_key(key)))
        assert isinstance(reply, ValueReply)
        return reply.value if reply.found else None

    async def put(self, key: KeyLike, value: bytes) -> bool:
        """Store ``value``; True when the key was new, False on update."""
        reply = await self._simple(PutRequest(canonical_key(key), bytes(value)))
        assert isinstance(reply, PutReply)
        return reply.created

    async def delete(self, key: KeyLike) -> bool:
        """Remove the key; True when it existed."""
        reply = await self._simple(DeleteRequest(canonical_key(key)))
        assert isinstance(reply, DeleteReply)
        return reply.deleted

    async def stats(self) -> Dict[str, float]:
        """The server's counter/gauge snapshot (STATS verb)."""
        reply = await self._simple(StatsRequest())
        assert isinstance(reply, StatsReply)
        return dict(reply.stats)

    async def batch(self, ops: Sequence[BatchOp]) -> List[SimpleReply]:
        """Pipeline many ops in one frame; replies come back in op order.

        Per-op failures are returned as :class:`ErrorReply` entries rather
        than raised, so callers see exactly which ops bounced (e.g. BUSY
        from one saturated shard).
        """
        request = BatchRequest(tuple(map(_to_request, ops)))

        async def attempt() -> Reply:
            reply = await self.request(request)
            if isinstance(reply, ErrorReply):
                _raise_for(reply)  # whole-frame BUSY retries; per-op doesn't
            return reply

        reply = await self._with_retry(attempt)
        assert isinstance(reply, BatchReply)
        return list(reply.replies)


def _to_request(op: BatchOp) -> SimpleRequest:
    verb = op[0]
    if verb == "get":
        return GetRequest(canonical_key(op[1]))
    if verb == "put":
        return PutRequest(canonical_key(op[1]), bytes(op[2]))  # type: ignore[misc]
    if verb == "delete":
        return DeleteRequest(canonical_key(op[1]))
    if verb == "stats":
        return StatsRequest()
    raise ProtocolError(f"unknown batch verb {verb!r}")


__all__ = [
    "BatchOp",
    "McCuckooClient",
    "RequestTimeoutError",
    "RetryPolicy",
    "ServeError",
    "ServerBusyError",
    "ServerUnavailableError",
]
