"""Chaos harness: drive load at a fault-injected server and verify safety.

``repro faultgen`` starts an in-process :class:`McCuckooServer` with a
durable store and a :class:`~repro.faults.FaultPlan`, drives a seeded
random workload through retrying clients, and then audits the surviving
state against a Jepsen-style acceptability model:

* every key is owned by exactly one worker, so per-key operation order is
  the worker's issue order;
* an **acknowledged** write pins the key's acceptable state to exactly the
  written value (or absence, for a delete);
* an **unacknowledged** write (BUSY storm that outlived the retries, a
  client deadline, an injected crash surfacing as INTERNAL, a dropped
  connection on the ack) may or may not have applied, so its value joins
  the acceptable set instead of replacing it;
* a successful read collapses the set back to what was observed (reads are
  linearization points: the worker owns the key, so nothing else can have
  moved it).

After the drive phase the plan is disarmed and every key is read back:

* a key whose acceptable set is a single acknowledged value but reads
  differently is a **lost acknowledged write** — the one thing this
  harness exists to catch;
* a key reading a value outside its acceptable set is a **phantom** (a
  write nobody issued, or an unacknowledged write resurrected wrongly).

The whole run is bounded by a wall-clock budget, so an injected hang shows
up as a reported failure instead of a stuck process.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..faults import FaultPlan
from ..maintenance import MaintenanceConfig
from .client import (
    McCuckooClient,
    RequestTimeoutError,
    RetryPolicy,
    ServeError,
)
from .loadgen import value_bytes
from .protocol import ProtocolError
from .server import McCuckooServer, ServerConfig
from .workers import WorkerServer

#: a deliberately nasty default: one full-record crash, one torn write,
#: BUSY storms, corrupted and dropped reply frames, and one laggy shard
DEFAULT_FAULT_SPEC = (
    "crash_after_appends=150; torn_write=400; busy=0.02; "
    "corrupt_frame=0.01; drop_connection=0.01; delay_shard=0:0.002:7"
)

_ABSENT = b"\x00__absent__"  # sentinel inside acceptable-value sets


@dataclass(frozen=True)
class FaultgenConfig:
    """Shape of one chaos run."""

    n_ops: int = 2_000
    n_keys: int = 256
    concurrency: int = 4
    n_shards: int = 4
    value_size: int = 32
    seed: int = 0
    faults: str = DEFAULT_FAULT_SPEC
    max_attempts: int = 8
    deadline: float = 5.0
    run_timeout: float = 60.0
    """Wall-clock budget for the whole run; exceeding it is a reported
    hang, not a stuck process."""
    n_workers: int = 0
    """0 drives the single-process server; N > 0 drives a
    :class:`~repro.serve.workers.WorkerServer` with N shard worker
    processes, where ``kill_worker`` rules become meaningful and every
    count-triggered rule fires per worker process."""
    maintenance: bool = False
    """Run the maintenance daemon (aggressive thresholds) during the
    drive and extend the fault plan to strike *inside* maintenance:
    crash/kill during an in-flight compaction and a torn/killed
    checkpoint write.  The audit model is unchanged — maintenance must
    never cost an acknowledged write."""
    transport: str = "auto"
    """Worker transport for the driven server ("auto"/"shm"/"socket");
    only meaningful with ``n_workers > 0``.  The audit is
    transport-agnostic — both carry the same CRC'd frames."""
    read_path: str = "auto"
    """GET read path for the driven server ("auto"/"ring"/"shared");
    only meaningful with ``n_workers > 0``.  With ``"shared"`` the
    audit's reads go through the seqlock'd shared images (falling back
    to the ring when a region cannot validate), so a lost or stale
    shared read shows up as a lost acked write / phantom exactly like a
    ring-path violation would."""
    migrate: bool = False
    """Run live shard migrations *during* the drive (worker mode with
    ≥ 2 workers; ignored otherwise): a background task repeatedly moves
    a shard to the next worker ring-wise while the drivers hammer it.
    The audit model is parameterized by the routing epoch — an
    acknowledged write must survive the move, on whichever worker owns
    the shard at read-back time."""

    def __post_init__(self) -> None:
        if self.n_ops <= 0 or self.n_keys <= 0:
            raise ValueError("n_ops and n_keys must be positive")
        if self.concurrency <= 0:
            raise ValueError("concurrency must be positive")

    @classmethod
    def smoke(cls, seed: int = 0, maintenance: bool = False) -> "FaultgenConfig":
        """A seconds-scale configuration for CI."""
        return cls(n_ops=600, n_keys=96, concurrency=4, seed=seed,
                   run_timeout=30.0, maintenance=maintenance)

    def effective_faults(self) -> str:
        """The drive plan: the configured spec, plus — in maintenance
        mode — rules that strike mid-compaction and mid-checkpoint.
        Worker mode kills the whole process at those sites; the
        single-process server takes an in-process crash / torn artifact
        instead (there is no process to kill)."""
        if not self.maintenance:
            return self.faults
        if self.n_workers > 0:
            extra = ("kill_worker_during=compaction:1; "
                     "kill_worker_during=checkpoint:1")
        else:
            extra = "crash_during_compaction=1; torn_checkpoint=1"
        return f"{self.faults}; {extra}" if self.faults else extra


@dataclass
class FaultgenReport:
    """Outcome of one chaos run; ``ok`` is the pass/fail verdict."""

    seed: int
    fault_plan: str
    n_workers: int = 0
    transport: str = "none"
    """Resolved worker transport ("shm"/"socket"; "none" single-process)."""
    read_path: str = "ring"
    """Resolved GET read path of the driven server ("ring"/"shared")."""
    shared_reads: int = 0
    shared_read_fallbacks: int = 0
    ops_issued: int = 0
    ops_acked: int = 0
    ops_unacked: int = 0
    reads_checked: int = 0
    retries: int = 0
    elapsed_s: float = 0.0
    faults_fired: Dict[str, int] = field(default_factory=dict)
    shard_recoveries: int = 0
    worker_restarts: int = 0
    verified_keys: int = 0
    lost_acked_writes: int = 0
    phantom_values: int = 0
    migrations_committed: int = 0
    migrations_aborted: int = 0
    routing_epoch: int = 0
    hung: bool = False
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.hung

    def render(self) -> str:
        mode = (f"{self.n_workers} worker processes, {self.transport}, "
                f"{self.read_path} reads"
                if self.n_workers else "single process")
        lines = [
            f"faultgen seed={self.seed}: "
            f"{self.ops_issued} ops ({self.ops_acked} acked, "
            f"{self.ops_unacked} unacked) in {self.elapsed_s:.2f}s "
            f"[{mode}]",
            f"  plan      {self.fault_plan}",
            "  faults    "
            + (" ".join(f"{name}={count}"
                        for name, count in sorted(self.faults_fired.items()))
               or "(none fired)"),
            f"  recovery  shard_recoveries={self.shard_recoveries}  "
            f"worker_restarts={self.worker_restarts}",
            f"  reshard   committed={self.migrations_committed}  "
            f"aborted={self.migrations_aborted}  "
            f"routing_epoch={self.routing_epoch}",
            f"  client    retries={self.retries}  "
            f"reads_checked={self.reads_checked}",
            f"  shared    reads={self.shared_reads}  "
            f"fallbacks={self.shared_read_fallbacks}",
            f"  verify    keys={self.verified_keys}  "
            f"lost_acked_writes={self.lost_acked_writes}  "
            f"phantom_values={self.phantom_values}",
        ]
        if self.hung:
            lines.append("  HUNG: run exceeded its wall-clock budget")
        for failure in self.failures[:20]:
            lines.append(f"  FAIL  {failure}")
        if len(self.failures) > 20:
            lines.append(f"  ... {len(self.failures) - 20} more failures")
        lines.append(f"  verdict   {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


class _KeyState:
    """Acceptable-state tracker for one key (single-owner ops).

    Soundness notes, which lean on the server's per-shard FIFO writer:

    * An *acknowledged* write collapses the set — its ack proves every
      earlier write on the key (all routed to the same shard queue) has
      already been applied, so nothing older can resurface.
    * A read may only collapse the set when no unacknowledged write is
      unresolved (``acked_only``): reads run inline at the server and do
      NOT flush the writer queue, so a timed-out write can legally apply
      *after* a read observed the older value.
    * The owner map is no longer static: a live migration re-homes the
      key's shard mid-run.  Each transition is stamped with the routing
      epoch it happened under, and a read may only collapse the set when
      its epoch is **at least** the state's — a read that raced an older
      epoch must not overrule a write acknowledged under a newer one.
    """

    __slots__ = ("acceptable", "acked_only", "epoch")

    def __init__(self) -> None:
        self.acceptable: Set[bytes] = {_ABSENT}
        self.acked_only = True  # no unacked write is still unresolved
        self.epoch = 0  # routing epoch of the newest recorded transition

    def acked_write(self, value: bytes, epoch: int = 0) -> None:
        self.acceptable = {value}
        self.acked_only = True
        self.epoch = max(self.epoch, epoch)

    def unacked_write(self, value: bytes, epoch: int = 0) -> None:
        self.acceptable.add(value)
        self.acked_only = False
        self.epoch = max(self.epoch, epoch)

    def observed(self, value: bytes, epoch: int = 0) -> None:
        if self.acked_only and epoch >= self.epoch:
            self.acceptable = {value}


async def run_faultgen(config: FaultgenConfig) -> FaultgenReport:
    """One full chaos run: drive, disarm, verify.  Never raises for an
    injected fault — violations land in the report's ``failures``."""
    plan = FaultPlan.parse(config.effective_faults(), seed=config.seed)
    report = FaultgenReport(seed=config.seed, fault_plan=plan.describe(),
                            n_workers=config.n_workers)
    server_config = ServerConfig(
        host="127.0.0.1",
        port=0,
        n_shards=config.n_shards,
        expected_items=max(4096, 4 * config.n_keys),
        seed=config.seed,
        request_timeout=2.0,
        durable=True,
        fault_plan=plan,
        maintenance=(MaintenanceConfig.aggressive()
                     if config.maintenance else None),
        transport=config.transport,
        read_path=config.read_path,
    )
    if config.n_workers > 0:
        server: McCuckooServer = WorkerServer(server_config,
                                              n_workers=config.n_workers)
        report.transport = server.transport  # type: ignore[attr-defined]
        report.read_path = server.read_path  # type: ignore[attr-defined]
    else:
        server = McCuckooServer(server_config)
    began = time.perf_counter()
    async with server:
        try:
            await asyncio.wait_for(
                _drive_and_verify(server, config, report),
                timeout=config.run_timeout,
            )
        except asyncio.TimeoutError:
            report.hung = True
            report.failures.append(
                f"run exceeded {config.run_timeout}s wall-clock budget "
                "(injected hang not survived)"
            )
        report.shard_recoveries = max(report.shard_recoveries,
                                      server.stats.shard_recoveries)
        report.worker_restarts = max(report.worker_restarts,
                                     server.stats.worker_restarts)
    # frontend-site fired counts; worker-site counts were merged from the
    # post-drive STATS snapshot inside _drive_and_verify
    for name, count in plan.fired_counts().items():
        report.faults_fired[name] = max(
            report.faults_fired.get(name, 0), count
        )
    report.elapsed_s = time.perf_counter() - began
    return report


async def _drive_and_verify(
    server: McCuckooServer,
    config: FaultgenConfig,
    report: FaultgenReport,
) -> None:
    host, port = server.address
    retry = RetryPolicy(
        max_attempts=config.max_attempts,
        base_delay=0.002,
        max_delay=0.05,
        jitter=0.2,
        deadline=config.deadline,
        seed=config.seed,
    )
    states: Dict[int, _KeyState] = {}
    epoch_of = (
        (lambda: server.routing_epoch)
        if isinstance(server, WorkerServer) else (lambda: 0)
    )
    async with McCuckooClient(host, port, pool_size=config.concurrency,
                              retry=retry) as client:
        workers = [
            _worker(client, config, worker_id, states, report, epoch_of)
            for worker_id in range(config.concurrency)
        ]
        migrator: "asyncio.Task | None" = None
        if (config.migrate and isinstance(server, WorkerServer)
                and server.n_workers >= 2):
            migrator = asyncio.create_task(
                _migrator(server, config, report))
        try:
            await asyncio.gather(*workers)
        finally:
            if migrator is not None:
                migrator.cancel()
                try:
                    await migrator
                except asyncio.CancelledError:
                    pass
        report.routing_epoch = epoch_of()

        # --------------------------------------------------------------
        # verification: stop injecting (in every process), reach
        # quiescence (every write that ever made a writer queue — or a
        # worker inbox — has applied), then audit
        # --------------------------------------------------------------
        await server.disarm_faults()
        await server.drain_writes()
        report.retries = client.retries
        try:
            snapshot = await client.stats()
        except (ServeError, ConnectionError, OSError):
            snapshot = {}
        report.shard_recoveries = int(snapshot.get("shard_recoveries", 0))
        report.worker_restarts = int(snapshot.get("worker_restarts", 0))
        report.shared_reads = int(snapshot.get("shared_reads", 0))
        report.shared_read_fallbacks = int(
            snapshot.get("shared_read_fallbacks", 0))
        report.faults_fired = {
            name[len("fault_"):]: int(count)
            for name, count in snapshot.items()
            if name.startswith("fault_")
        }
        for key, state in sorted(states.items()):
            try:
                value = await client.get(key)
            except (ServeError, ConnectionError, OSError) as error:
                report.failures.append(
                    f"key {key:#x}: verification read failed: {error}"
                )
                continue
            report.verified_keys += 1
            observed = _ABSENT if value is None else value
            if observed in state.acceptable:
                continue
            if state.acked_only:
                report.lost_acked_writes += 1
                report.failures.append(
                    f"key {key:#x}: lost acknowledged write — expected "
                    f"{_render_values(state.acceptable)}, read "
                    f"{_render_values({observed})}"
                )
            else:
                report.phantom_values += 1
                report.failures.append(
                    f"key {key:#x}: phantom value — read "
                    f"{_render_values({observed})}, acceptable "
                    f"{_render_values(state.acceptable)}"
                )


async def _migrator(
    server: WorkerServer,
    config: FaultgenConfig,
    report: FaultgenReport,
) -> None:
    """Move shards between workers while the drivers are hammering them.

    Each round migrates shard ``round % n_shards`` from its current
    owner to the next worker ring-wise.  Injected faults may abort a
    round (counted, not failed) — the audit only cares that no
    acknowledged write is lost either way."""
    for round_no in range(3):
        await asyncio.sleep(0.1)
        shard = round_no % config.n_shards
        owner = server.routing.worker_of_shard(shard)
        target = (owner + 1) % server.n_workers
        try:
            outcome = await server.reshard(shard, target)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # a coordinator bug, not an injected fault
            report.failures.append(
                f"migrator: reshard({shard}, {target}) raised "
                f"{type(error).__name__}: {error}"
            )
            return
        if outcome.committed:
            report.migrations_committed += 1
        else:
            report.migrations_aborted += 1


async def _worker(
    client: McCuckooClient,
    config: FaultgenConfig,
    worker_id: int,
    states: Dict[int, _KeyState],
    report: FaultgenReport,
    epoch_of,
) -> None:
    """Drive this worker's share of ops over the keys it owns."""
    rng = random.Random((config.seed * 0x9E3779B1) ^ (worker_id * 0x85EBCA6B))
    owned = [key + 1 for key in range(config.n_keys)
             if key % config.concurrency == worker_id]
    if not owned:
        return
    n_ops = config.n_ops // config.concurrency
    version = 0
    for _ in range(n_ops):
        key = owned[rng.randrange(len(owned))]
        state = states.setdefault(key, _KeyState())
        roll = rng.random()
        report.ops_issued += 1
        if roll < 0.55:  # put
            version += 1
            value = value_bytes(key, (worker_id << 20) | version,
                                config.value_size)
            acked = await _issue(client.put(key, value), report)
            if acked:
                state.acked_write(value, epoch_of())
            else:
                state.unacked_write(value, epoch_of())
        elif roll < 0.75:  # delete
            acked = await _issue(client.delete(key), report)
            if acked:
                state.acked_write(_ABSENT, epoch_of())
            else:
                state.unacked_write(_ABSENT, epoch_of())
        else:  # get: audit mid-run and collapse the acceptable set
            epoch_before = epoch_of()
            try:
                value = await client.get(key)
            except (ServeError, ConnectionError, OSError):
                report.ops_unacked += 1
                continue
            epoch_after = epoch_of()
            report.ops_acked += 1
            report.reads_checked += 1
            observed = _ABSENT if value is None else value
            if epoch_before != epoch_after:
                # the read was in flight across a routing flip: it may
                # legally have been served by either side of the
                # migration, so it neither convicts nor collapses
                continue
            if observed not in state.acceptable:
                if state.acked_only and epoch_after >= state.epoch:
                    report.lost_acked_writes += 1
                    report.failures.append(
                        f"key {key:#x}: mid-run read lost an acknowledged "
                        f"write — expected {_render_values(state.acceptable)},"
                        f" read {_render_values({observed})}"
                    )
                elif not state.acked_only:
                    report.phantom_values += 1
                    report.failures.append(
                        f"key {key:#x}: mid-run phantom — read "
                        f"{_render_values({observed})}, acceptable "
                        f"{_render_values(state.acceptable)}"
                    )
            state.observed(observed, epoch_after)


async def _issue(operation, report: FaultgenReport) -> bool:
    """Await a write; True = acknowledged, False = outcome unknown."""
    try:
        await operation
    except (RequestTimeoutError, ServeError, ProtocolError,
            ConnectionError, OSError):
        report.ops_unacked += 1
        return False
    report.ops_acked += 1
    return True


def _render_values(values: Set[bytes]) -> str:
    parts = []
    for value in sorted(values):
        if value == _ABSENT:
            parts.append("<absent>")
        else:
            parts.append(value[:16].hex() + ("…" if len(value) > 16 else ""))
    return "{" + ", ".join(parts) + "}"


__all__ = [
    "DEFAULT_FAULT_SPEC",
    "FaultgenConfig",
    "FaultgenReport",
    "run_faultgen",
]
