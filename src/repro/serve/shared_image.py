"""Shared-memory seqlock'd index images: the zero-hop read path.

PR 7 made the frontend→worker hop cheap; this module removes it for the
dominant operation.  Each worker publishes, per owned shard, a read-only
*image* of its McCuckoo index — bucket occupancy (keys), packed copy
counters, stash entries and value-log offsets — plus a serialized mirror
of the shard's value log, into one ``multiprocessing.shared_memory``
segment per worker.  The frontend maps the same segment and answers
``GET`` requests (and all-GET batch runs) directly from the bytes,
without waking the worker process at all.

Coherence is a per-shard seqlock (see :mod:`repro.concurrency.seqlock`):
the writer bumps a u64 version to odd before touching a region and back
to even after, and a reader accepts a probe only if it observed an even,
unchanged version around the whole read.  A reader that cannot validate
falls back to the ring transport — the fallback ladder (region missing,
unservable, version churn, value-parse anomaly) is counted in the serve
stats, never silently absorbed.

Safety properties the serve layer builds on:

* **publish-before-ack** — a worker flushes every dirty shard's image
  before acking the mutation, so the image always covers all acked
  writes (read-your-writes holds for clients);
* **commit-point invalidation** — the frontend selects a region through
  its own routing table, which a migration flips atomically at the
  commit point; the source worker additionally marks its region
  unservable at release/abort;
* **torn values are impossible** — value bytes resolve through the
  region's log mirror with the durable record codec's length + CRC
  validation, and the mirror is rebuilt under the seqlock when the log's
  identity changes (compaction swap, crash recovery), so a half-swapped
  log can never be observed;
* **replicas are never published** — replica copies stay behind the ring
  transport, so an image can never serve a replica read staler than the
  owner (the ``replica_lag`` bound is trivially respected).

Regions describe their own geometry (``n_buckets``, ``d``, ``seed``), so
the frontend rebuilds the default hash family's functions and probes
exactly like the owning table would.  Stores built with a custom
:class:`~repro.hashing.HashFamily` are not publishable.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .._numpy import numpy_or_none
from ..apps.kvstore import (
    _KIND_BYTES,
    _REC_CRC,
    _REC_HEAD,
    _REC_LEN,
    encode_record,
)
from ..core.counters import PackedArray
from ..core.errors import ConfigurationError
from ..hashing import DEFAULT_FAMILY
from .shm import shm_available

#: supported ``--read-path`` values (``auto`` resolves via the
#: ``REPRO_SERVE_READ_PATH`` environment variable, defaulting to ring)
READ_PATHS = ("auto", "ring", "shared")

IMAGE_MAGIC = 0x4D435349  # "MCSI"
IMAGE_LAYOUT_VERSION = 1

#: segment header: magic, layout version, n_shards, max_slots,
#: counter_bits, max_stash, log_capacity, region_stride
_SEG_HEAD = struct.Struct("<IIIIIIQQ")
_SEG_HEADER_BYTES = 64

#: region header: seqlock version, generation, servable, n_buckets, d,
#: seed (signed), n_slots, n_stash, log mirror length
_REGION_HEAD = struct.Struct("<QIIIIqIIQ")
_REGION_HEADER_BYTES = 64
_SERVABLE_OFFSET = 16  # byte offset of the servable flag inside a region

_STASH_ENTRY = struct.Struct("<QQ")
_U64 = struct.Struct("<Q")

_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def resolve_read_path(requested: str = "auto") -> str:
    """Resolve a ``--read-path`` value to a concrete ``"ring"``/``"shared"``.

    ``"auto"`` honours the ``REPRO_SERVE_READ_PATH`` environment variable
    (set by the CI read-path leg and the pytest ``--read-path`` option)
    and otherwise stays on the ring transport — the shared path is opt-in
    because its win depends on the read mix (see docs/performance.md).
    Requesting ``"shared"`` without working shared memory is a
    configuration error rather than a silent downgrade.
    """
    if requested not in READ_PATHS:
        raise ConfigurationError(
            f"unknown read path {requested!r}; expected one of {READ_PATHS}"
        )
    if requested == "ring":
        return "ring"
    if requested == "shared":
        if not shm_available():
            raise ConfigurationError(
                "read path 'shared' requested but multiprocessing."
                "shared_memory is unavailable on this platform; use "
                "--read-path ring"
            )
        return "shared"
    env = os.environ.get("REPRO_SERVE_READ_PATH", "").strip().lower()
    if env in ("ring", "shared"):
        return resolve_read_path(env)
    return "ring"


def _ceil64(value: int) -> int:
    return (value + 63) & ~63


class ImageLayout:
    """Geometry of one worker's image segment.

    All ``n_shards`` regions share one stride so a migration target can
    publish *any* shard it adopts into its own segment.  A shard whose
    live geometry outgrows the region (index resize past ``max_slots``,
    stash past ``max_stash``, log mirror past ``log_capacity``) is simply
    marked unservable and its reads fall back to the ring — capacity
    limits degrade throughput, never correctness.
    """

    def __init__(
        self,
        n_shards: int,
        max_slots: int,
        counter_bits: int = 2,
        max_stash: int = 64,
        log_capacity: int = 1 << 18,
    ) -> None:
        if n_shards <= 0 or max_slots <= 0 or log_capacity <= 0:
            raise ConfigurationError("image layout dimensions must be positive")
        if counter_bits not in (1, 2, 4, 8):
            raise ConfigurationError("counter_bits must be 1, 2, 4 or 8")
        self.n_shards = n_shards
        self.max_slots = max_slots
        self.counter_bits = counter_bits
        self.max_stash = max_stash
        self.log_capacity = log_capacity
        per_byte = 8 // counter_bits
        self.ctr_per_byte = per_byte
        self.ctr_shift = per_byte.bit_length() - 1
        self.ctr_mask = (1 << counter_bits) - 1
        self.keys_off = _REGION_HEADER_BYTES
        self.offsets_off = self.keys_off + 8 * max_slots
        self.counters_off = self.offsets_off + 8 * max_slots
        counter_bytes = _ceil64((max_slots * counter_bits + 7) // 8)
        self.stash_off = self.counters_off + counter_bytes
        self.log_off = self.stash_off + _STASH_ENTRY.size * max_stash
        self.region_stride = _ceil64(self.log_off + log_capacity)
        self.segment_bytes = _SEG_HEADER_BYTES + n_shards * self.region_stride

    @classmethod
    def for_store(
        cls,
        n_shards: int,
        expected_items: int,
        growth_headroom: int = 3,
        d: int = 3,
    ) -> "ImageLayout":
        """Size regions for a :class:`~repro.serve.store.ShardedLogStore`.

        Mirrors the store's own sizing rule (``per_shard // 2`` initial
        buckets, d=3) and leaves ``growth_headroom`` online doublings of
        room before a shard goes unservable.
        """
        per_shard = max(64, expected_items // max(1, n_shards))
        n_buckets = max(8, per_shard // 2)
        max_slots = d * (n_buckets << growth_headroom)
        log_capacity = max(1 << 18, 256 * per_shard)
        return cls(n_shards, max_slots, log_capacity=log_capacity)

    def region_offset(self, shard: int) -> int:
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} outside image layout of {self.n_shards} shards"
            )
        return _SEG_HEADER_BYTES + shard * self.region_stride

    def pack_header(self) -> bytes:
        return _SEG_HEAD.pack(
            IMAGE_MAGIC,
            IMAGE_LAYOUT_VERSION,
            self.n_shards,
            self.max_slots,
            self.counter_bits,
            self.max_stash,
            self.log_capacity,
            self.region_stride,
        )

    @classmethod
    def from_header(cls, buf) -> "ImageLayout":
        (magic, version, n_shards, max_slots, counter_bits, max_stash,
         log_capacity, stride) = _SEG_HEAD.unpack_from(buf, 0)
        if magic != IMAGE_MAGIC:
            raise ConfigurationError(f"bad image magic {magic:#x}")
        if version != IMAGE_LAYOUT_VERSION:
            raise ConfigurationError(f"unsupported image layout v{version}")
        layout = cls(
            n_shards,
            max_slots,
            counter_bits=counter_bits,
            max_stash=max_stash,
            log_capacity=log_capacity,
        )
        if layout.region_stride != stride:
            raise ConfigurationError("image layout stride mismatch")
        return layout


class SharedIndexImage:
    """Lifecycle owner of one worker's shared-memory image segment.

    Created by the worker pool *before* the worker process forks (the
    child inherits the mapping, exactly like the shm ring transport), and
    destroyed when the pool stops.  The segment survives worker restarts:
    a recovering worker republished its shards into the same regions.
    """

    def __init__(self, segment: Any, layout: ImageLayout, owner: bool) -> None:
        self._segment = segment
        self.layout = layout
        self._owner = owner

    @classmethod
    def create(cls, layout: ImageLayout) -> "SharedIndexImage":
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(
            create=True, size=layout.segment_bytes
        )
        segment.buf[: _SEG_HEAD.size] = layout.pack_header()
        return cls(segment, layout, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedIndexImage":
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=name)
        return cls(segment, ImageLayout.from_header(segment.buf), owner=False)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def buf(self):
        return self._segment.buf

    def close(self) -> None:
        try:
            self._segment.close()
        except (OSError, ValueError):  # pragma: no cover - platform quirks
            pass

    def destroy(self) -> None:
        self.close()
        if self._owner:
            try:
                self._segment.unlink()
            except (OSError, ValueError):  # pragma: no cover
                pass


class _ShardMirror:
    """Publisher-side bookkeeping for one shard's log mirror."""

    __slots__ = ("log_id", "rec_offsets", "mirror_len", "overflow", "generation")

    def __init__(self, generation: int = 0) -> None:
        self.log_id = 0
        self.rec_offsets: List[int] = []
        self.mirror_len = 0
        self.overflow = False
        self.generation = generation


class ShardImagePublisher:
    """Worker-side writer: exports shard indexes into the image segment.

    ``publish`` is called with the shard's :class:`LogStructuredStore`
    after every mutation batch and *before* the batch is acked.  The
    whole write is bracketed by the seqlock version (odd while in flux).
    ``stall_hook(shard)`` — wired to the fault plan's ``stall_publisher``
    rule — may return a number of seconds to sleep *mid-write*, holding
    the region in its half-applied state so the audits can prove readers
    never accept it.
    """

    def __init__(
        self,
        image: SharedIndexImage,
        stall_hook: Optional[Callable[[int], Optional[float]]] = None,
    ) -> None:
        self._image = image
        self._buf = image.buf
        self._layout = image.layout
        self._stall = stall_hook
        self._mirrors: Dict[int, _ShardMirror] = {}
        self.publishes = 0

    def _mirror_for(self, shard: int, base: int) -> _ShardMirror:
        mirror = self._mirrors.get(shard)
        if mirror is None:
            # A fresh publisher incarnation (worker restart) starts past
            # whatever generation the previous one left in the region.
            old_gen = _REGION_HEAD.unpack_from(self._buf, base)[1]
            mirror = _ShardMirror(generation=old_gen + 1)
            self._mirrors[shard] = mirror
        return mirror

    def publish(self, shard: int, store: Any) -> None:
        """Export ``store``'s current index + log mirror for ``shard``."""
        layout = self._layout
        base = layout.region_offset(shard)
        buf = self._buf
        mirror = self._mirror_for(shard, base)

        index = store.index
        log = store._log
        records = log._records
        if mirror.log_id != id(log) or len(records) < len(mirror.rec_offsets):
            # Log identity changed (compaction swap, crash recovery) or
            # shrank: the mirror is rebuilt from scratch under this
            # publish's seqlock bracket, and the generation bump tells
            # readers every cached assumption about the region is off.
            mirror.log_id = id(log)
            mirror.rec_offsets = []
            mirror.mirror_len = 0
            mirror.overflow = False
            mirror.generation += 1

        # Serialize any records the mirror does not cover yet.  This runs
        # outside the seqlock bracket on purpose: readers never chase an
        # offset >= the published log_len, so bytes past it are writable
        # without a version bump — and (re)encoding is the slow part.
        new_blobs: List[Tuple[int, bytes]] = []
        for position in range(len(mirror.rec_offsets), len(records)):
            record = records[position]
            blob = encode_record(record.key, record.value)
            if mirror.mirror_len + len(blob) > layout.log_capacity:
                mirror.overflow = True
                break
            mirror.rec_offsets.append(mirror.mirror_len)
            new_blobs.append((mirror.mirror_len, blob))
            mirror.mirror_len += len(blob)

        table = index.active_table
        n_slots = table.d * table.n_buckets
        stash = table._stash
        servable = (
            not index.resizing
            and not mirror.overflow
            and n_slots <= layout.max_slots
            and table._counters.bits == layout.counter_bits
            and (stash is None or len(stash) <= layout.max_stash)
            and _I64_MIN <= table._seed <= _I64_MAX
        )

        version = _U64.unpack_from(buf, base)[0]
        odd = version | 1  # re-enter an interrupted publish's odd version
        _U64.pack_into(buf, base, odd)
        # Log-mirror bytes are appended (or rewritten after a rebuild)
        # first: offsets published below must always point at valid bytes.
        log_base = base + layout.log_off
        for position, blob in new_blobs:
            buf[log_base + position: log_base + position + len(blob)] = blob
        if servable:
            self._write_index(base, table, mirror)
        n_stash = len(stash) if (servable and stash is not None) else 0
        _REGION_HEAD.pack_into(
            buf,
            base,
            odd,
            mirror.generation,
            1 if servable else 0,
            table.n_buckets,
            table.d,
            table._seed if servable else 0,
            n_slots,
            n_stash,
            mirror.mirror_len,
        )
        _U64.pack_into(buf, base, odd + 1)
        self.publishes += 1

    def _write_index(self, base: int, table: Any, mirror: _ShardMirror) -> None:
        buf = self._buf
        layout = self._layout
        n_slots = table.d * table.n_buckets
        rec_offsets = mirror.rec_offsets
        n_records = len(rec_offsets)

        keys = [
            k if type(k) is int else 0  # noqa: E721 - exact-int hot path
            for k in table._keys
        ]
        packed = struct.pack(f"<{n_slots}Q", *keys)
        buf[base + layout.keys_off: base + layout.keys_off + len(packed)] = packed

        # The stall fault holds the region here — keys updated, offsets/
        # counters not — the exact half-applied state the seqlock must
        # keep readers from ever accepting.
        if self._stall is not None:
            seconds = self._stall_seconds(base)
            if seconds:
                time.sleep(seconds)

        offsets = [0] * n_slots
        values = table._values
        for slot in range(n_slots):
            value = values[slot]
            if type(value) is int and 0 <= value < n_records:  # noqa: E721
                offsets[slot] = rec_offsets[value] + 1
        packed = struct.pack(f"<{n_slots}Q", *offsets)
        off = base + layout.offsets_off
        buf[off: off + len(packed)] = packed

        counters = bytes(table._counters._data)
        off = base + layout.counters_off
        buf[off: off + len(counters)] = counters

        if table._stash is not None:
            off = base + layout.stash_off
            for key, value in table._stash.items():
                pointer = 0
                if type(value) is int and 0 <= value < n_records:  # noqa: E721
                    pointer = rec_offsets[value] + 1
                _STASH_ENTRY.pack_into(buf, off, key, pointer)
                off += _STASH_ENTRY.size

    def _stall_seconds(self, base: int) -> Optional[float]:
        # Resolved lazily so _write_index stays testable without a plan.
        shard = (base - _SEG_HEADER_BYTES) // self._layout.region_stride
        return self._stall(shard) if self._stall is not None else None

    def unpublish(self, shard: int) -> None:
        """Mark a region unservable (migration release/abort, shutdown)."""
        base = self._layout.region_offset(shard)
        buf = self._buf
        version = _U64.unpack_from(buf, base)[0]
        odd = version | 1
        _U64.pack_into(buf, base, odd)
        struct.pack_into("<I", buf, base + _SERVABLE_OFFSET, 0)
        _U64.pack_into(buf, base, odd + 1)

    def forget(self, shard: int) -> None:
        """Unpublish and drop mirror state (the shard left this worker)."""
        self.unpublish(shard)
        self._mirrors.pop(shard, None)


class SharedImageReader:
    """Frontend-side optimistic reader over one worker's image segment.

    Every public method returns ``None`` when the caller must fall back
    to the ring transport — a region that is missing, unservable, under
    too much version churn, or whose value bytes fail validation.  The
    cumulative ``retries`` counter feeds the ``shared_read_retries``
    stat.
    """

    #: batch size below which the vectorized counter screen is not worth
    #: its array-construction overhead
    _VECTOR_MIN = 16

    def __init__(self, image: SharedIndexImage, max_retries: int = 8) -> None:
        self._image = image
        self._buf = image.buf
        self._layout = image.layout
        self._max_retries = max_retries
        self._functions: Dict[Tuple[int, int], Any] = {}
        self.retries = 0

    @property
    def layout(self) -> ImageLayout:
        return self._layout

    def close(self) -> None:
        """Release this reader's view (the pool owns the segment)."""
        self._functions.clear()

    # -- seqlock read loop -------------------------------------------------

    def get(self, shard: int, key: int) -> Optional[Tuple[bool, bytes]]:
        """One GET.  ``(found, value)`` on success, ``None`` to fall back."""
        layout = self._layout
        if not 0 <= shard < layout.n_shards:
            return None
        base = layout.region_offset(shard)
        buf = self._buf
        spent = 0
        for _ in range(self._max_retries):
            before = _U64.unpack_from(buf, base)[0]
            if before & 1:
                spent += 1
                continue
            head = _REGION_HEAD.unpack_from(buf, base)
            if not head[2]:  # unservable: a stable fallback, not a retry
                if _U64.unpack_from(buf, base)[0] == before:
                    self.retries += spent
                    return None
                spent += 1
                continue
            status, payload = self._probe_key(base, head, key)
            if _U64.unpack_from(buf, base)[0] == before:
                self.retries += spent
                if status == "bad":
                    return None
                return (status == "hit", payload if payload is not None else b"")
            spent += 1
        self.retries += spent
        return None

    def get_run(
        self, shard: int, keys: Sequence[int]
    ) -> Optional[List[Tuple[bool, bytes]]]:
        """A whole all-GET run under one seqlock bracket (or ``None``)."""
        layout = self._layout
        if not 0 <= shard < layout.n_shards:
            return None
        base = layout.region_offset(shard)
        buf = self._buf
        spent = 0
        for _ in range(self._max_retries):
            before = _U64.unpack_from(buf, base)[0]
            if before & 1:
                spent += 1
                continue
            head = _REGION_HEAD.unpack_from(buf, base)
            if not head[2]:
                if _U64.unpack_from(buf, base)[0] == before:
                    self.retries += spent
                    return None
                spent += 1
                continue
            results = self._probe_run(base, head, keys)
            if _U64.unpack_from(buf, base)[0] == before:
                self.retries += spent
                return results
            spent += 1
        self.retries += spent
        return None

    # -- probing (only ever called under an even version snapshot) ---------

    def _functions_for(self, d: int, seed: int):
        cached = self._functions.get((d, seed))
        if cached is None:
            cached = DEFAULT_FAMILY.functions(d, seed)
            self._functions[(d, seed)] = cached
        return cached

    def _probe_key(
        self, base: int, head: Tuple[int, ...], key: int
    ) -> Tuple[str, Optional[bytes]]:
        _, _, _, n_buckets, d, seed, n_slots, n_stash, log_len = head
        layout = self._layout
        buf = self._buf
        if n_slots > layout.max_slots or n_buckets <= 0:
            return ("bad", None)
        functions = self._functions_for(d, seed)
        raw = DEFAULT_FAMILY.candidates(functions, key, n_buckets)
        counters_base = base + layout.counters_off
        bits = layout.counter_bits
        slot_mask = layout.ctr_per_byte - 1
        for table_index in range(d):
            slot = table_index * n_buckets + raw[table_index]
            if slot >= n_slots:
                return ("bad", None)
            counter = (
                buf[counters_base + (slot >> layout.ctr_shift)]
                >> ((slot & slot_mask) * bits)
            ) & layout.ctr_mask
            if not counter:
                continue
            stored = _U64.unpack_from(buf, base + layout.keys_off + 8 * slot)[0]
            if stored != key:
                continue
            pointer = _U64.unpack_from(
                buf, base + layout.offsets_off + 8 * slot
            )[0]
            if not pointer:
                return ("bad", None)
            return self._read_value(base, key, pointer - 1, log_len)
        stash_base = base + layout.stash_off
        for position in range(min(n_stash, layout.max_stash)):
            stored, pointer = _STASH_ENTRY.unpack_from(
                buf, stash_base + _STASH_ENTRY.size * position
            )
            if stored == key:
                if not pointer:
                    return ("bad", None)
                return self._read_value(base, key, pointer - 1, log_len)
        return ("miss", None)

    def _probe_run(
        self, base: int, head: Tuple[int, ...], keys: Sequence[int]
    ) -> Optional[List[Tuple[bool, bytes]]]:
        """Probe a run; ``None`` means fall back (parse anomaly)."""
        screen = self._counter_screen(base, head, keys)
        results: List[Tuple[bool, bytes]] = []
        for position, key in enumerate(keys):
            if screen is not None and not screen[position]:
                results.append((False, b""))
                continue
            status, payload = self._probe_key(base, head, key)
            if status == "bad":
                return None
            results.append(
                (status == "hit", payload if payload is not None else b"")
            )
        return results

    def _counter_screen(
        self, base: int, head: Tuple[int, ...], keys: Sequence[int]
    ) -> Optional[Any]:
        """Vectorized zero-counter screen over the shared counter bytes.

        Runs the existing :meth:`PackedArray.get_block_array` kernel over
        a view of the region's counter area: keys whose candidates are
        all zero-counter are proven absent from the main table (Theorem
        3's zero-counter rule) and skip per-key probing entirely.  Only
        used when the stash is empty — a stashed item is invisible to the
        counter screen.
        """
        np = numpy_or_none()
        _, _, _, n_buckets, d, seed, n_slots, n_stash, _ = head
        if np is None or n_stash or len(keys) < self._VECTOR_MIN:
            return None
        layout = self._layout
        functions = self._functions_for(d, seed)
        key_array = np.asarray(keys, dtype=np.uint64)
        matrix = DEFAULT_FAMILY.candidates_matrix(functions, key_array, n_buckets)
        matrix = matrix + np.arange(d, dtype=np.int64)[np.newaxis, :] * n_buckets
        counters = PackedArray(n_slots, bits=layout.counter_bits, mem=None)
        counter_bytes = (n_slots * layout.counter_bits + 7) // 8
        counters._data = self._buf[
            base + layout.counters_off: base + layout.counters_off + counter_bytes
        ]
        values = counters.get_block_array(matrix.reshape(-1))
        return values.reshape(matrix.shape).max(axis=1) > 0

    def _read_value(
        self, base: int, key: int, offset: int, log_len: int
    ) -> Tuple[str, Optional[bytes]]:
        """Parse one record from the log mirror with full validation."""
        layout = self._layout
        buf = self._buf
        log_base = base + layout.log_off
        if offset + _REC_LEN.size > log_len or log_len > layout.log_capacity:
            return ("bad", None)
        (length,) = _REC_LEN.unpack_from(buf, log_base + offset)
        if (
            offset + _REC_LEN.size + length > log_len
            or length < _REC_HEAD.size + _REC_CRC.size
        ):
            return ("bad", None)
        start = log_base + offset + _REC_LEN.size
        body = bytes(buf[start: start + length])
        (crc,) = _REC_CRC.unpack(body[-_REC_CRC.size:])
        if crc != (zlib.crc32(body[: -_REC_CRC.size]) & 0xFFFFFFFF):
            return ("bad", None)
        stored, kind, value_length = _REC_HEAD.unpack_from(body)
        if (
            stored != key
            or kind != _KIND_BYTES
            or _REC_HEAD.size + value_length + _REC_CRC.size != length
        ):
            # A non-bytes kind (or a tombstone the index should never
            # point at) is not an error the reader can interpret — the
            # ring path handles it with full store semantics.
            return ("bad", None)
        return ("hit", body[_REC_HEAD.size: _REC_HEAD.size + value_length])


__all__ = [
    "IMAGE_LAYOUT_VERSION",
    "IMAGE_MAGIC",
    "ImageLayout",
    "READ_PATHS",
    "ShardImagePublisher",
    "SharedImageReader",
    "SharedIndexImage",
    "resolve_read_path",
]
