"""Closed-loop load generator for the McCuckoo KV service.

Builds an operation list from the existing workload generators
(:mod:`repro.workloads`: Zipf, YCSB mixes, mixed traces with deletes) and
drives it through :class:`~repro.serve.client.McCuckooClient` with N
closed-loop workers — each worker issues its next operation only after the
previous one completed, so offered load tracks service capacity and the
measured latencies are honest (no coordinated-omission inflation from an
open-loop backlog).

The op list construction is a pure function (:func:`build_workload`) so
correctness tests can replay the identical operations against a dict model.
"""

from __future__ import annotations

import asyncio
import bisect
import math
import random
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..workloads import (
    DiurnalLoadGenerator,
    HotKeyChurnGenerator,
    OpKind,
    TraceGenerator,
    YCSBConfig,
    YCSBWorkload,
    ZipfSampler,
)
from ..workloads.keys import distinct_keys
from .client import (
    McCuckooClient,
    RequestTimeoutError,
    RetryPolicy,
    ServeError,
    ServerBusyError,
)
from .protocol import ErrorCode, ErrorReply

#: ops are client batch tuples: ("get", key) / ("put", key, value) / ("delete", key)
Op = Tuple

WORKLOADS = ("zipf", "uniform", "mixed", "churn", "diurnal", "ycsb-A",
             "ycsb-B", "ycsb-C", "ycsb-D", "ycsb-F")


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one load-generation run."""

    workload: str = "zipf"
    n_ops: int = 10_000
    n_keys: int = 1_000
    concurrency: int = 8
    batch_size: int = 1
    value_size: int = 64
    zipf_s: float = 0.99
    get_ratio: float = 0.70
    put_ratio: float = 0.25
    delete_ratio: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"unknown workload {self.workload!r}; options: {WORKLOADS}"
            )
        if self.n_ops <= 0 or self.n_keys <= 0:
            raise ValueError("n_ops and n_keys must be positive")
        if self.concurrency <= 0 or self.batch_size <= 0:
            raise ValueError("concurrency and batch_size must be positive")
        if min(self.get_ratio, self.put_ratio, self.delete_ratio) < 0:
            raise ValueError("mix ratios must be non-negative")
        if (self.get_ratio + self.put_ratio + self.delete_ratio) <= 0:
            raise ValueError("mix ratios must have a positive sum")


def parse_mix(spec: str) -> Dict[str, float]:
    """Parse a ``--mix`` value like ``"get=0.95,put=0.05"`` into ratios.

    Returns a complete ``{"get", "put", "delete"}`` dict (kinds absent
    from the spec are 0.0), ready to splat into
    :class:`LoadgenConfig`'s ``*_ratio`` fields.  Ratios need not sum to
    one — they are weights — but must be non-negative with a positive
    sum, and every kind may appear at most once.
    """
    ratios = {"get": 0.0, "put": 0.0, "delete": 0.0}
    seen = set()
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, raw = chunk.partition("=")
        kind = kind.strip().lower()
        if kind not in ratios:
            raise ValueError(
                f"unknown op kind {kind!r} in mix {spec!r}; "
                f"expected get/put/delete"
            )
        if kind in seen:
            raise ValueError(f"op kind {kind!r} appears twice in mix {spec!r}")
        seen.add(kind)
        try:
            ratio = float(raw)
        except ValueError:
            raise ValueError(
                f"mix entry {chunk!r} is not KIND=RATIO"
            ) from None
        if ratio < 0 or not math.isfinite(ratio):
            raise ValueError(f"mix ratio for {kind!r} must be >= 0 and finite")
        ratios[kind] = ratio
    if sum(ratios.values()) <= 0:
        raise ValueError(f"mix {spec!r} must have a positive ratio sum")
    return ratios


def value_bytes(key: int, version: int, size: int) -> bytes:
    """Deterministic payload: (key, version) header padded to ``size``."""
    header = struct.pack(">QQ", key & (2**64 - 1), version & (2**64 - 1))
    if size <= len(header):
        return header[:max(size, 1)]
    return header + b"\x5a" * (size - len(header))


def build_workload(config: LoadgenConfig) -> Tuple[List[Op], List[Op]]:
    """(preload ops, timed ops) for one run — pure and reproducible.

    Preload ops are all puts and establish the working set; the timed ops
    are the measured phase.
    """
    if config.workload.startswith("ycsb-"):
        return _build_ycsb(config)
    if config.workload == "mixed":
        return [], _build_mixed(config)
    if config.workload == "churn":
        return _build_churn(config)
    if config.workload == "diurnal":
        return [], _build_diurnal(config)
    return _build_skewed(config)


def _build_skewed(config: LoadgenConfig) -> Tuple[List[Op], List[Op]]:
    keys = distinct_keys(config.n_keys, seed=config.seed)
    preload: List[Op] = [
        ("put", key, value_bytes(key, 0, config.value_size)) for key in keys
    ]
    rng = random.Random(config.seed ^ 0x10AD)
    zipf = ZipfSampler(len(keys), s=config.zipf_s, seed=config.seed + 1)
    kinds = ("get", "put", "delete")
    weights = (config.get_ratio, config.put_ratio, config.delete_ratio)
    ops: List[Op] = []
    version = 1
    for _ in range(config.n_ops):
        if config.workload == "zipf":
            key = keys[zipf.sample()]
        else:  # uniform
            key = keys[rng.randrange(len(keys))]
        kind = rng.choices(kinds, weights=weights)[0]
        if kind == "put":
            ops.append(("put", key, value_bytes(key, version, config.value_size)))
            version += 1
        elif kind == "delete":
            ops.append(("delete", key))
        else:
            ops.append(("get", key))
    return preload, ops


def _build_ycsb(config: LoadgenConfig) -> Tuple[List[Op], List[Op]]:
    workload = YCSBWorkload(
        YCSBConfig(
            workload=config.workload.split("-", 1)[1],
            n_records=config.n_keys,
            n_ops=config.n_ops,
            zipf_s=config.zipf_s,
            seed=config.seed,
        )
    )
    preload = [
        ("put", op.key, value_bytes(op.key, op.value or 0, config.value_size))
        for op in workload.load_phase()
    ]
    return preload, list(_map_trace(workload.run_phase(), config))


def _build_mixed(config: LoadgenConfig) -> List[Op]:
    total = config.get_ratio + config.put_ratio + config.delete_ratio
    trace = TraceGenerator(
        config.n_ops,
        insert_ratio=config.put_ratio / total,
        lookup_ratio=config.get_ratio / total * 0.75,
        missing_ratio=config.get_ratio / total * 0.25,
        delete_ratio=config.delete_ratio / total,
        seed=config.seed,
    )
    return list(_map_trace(iter(trace), config))


def _build_churn(config: LoadgenConfig) -> Tuple[List[Op], List[Op]]:
    """Rotating-hot-set churn; the generator's preload INSERTs become the
    warm-up phase and its get/update/replace mix becomes the timed ops."""
    generator = HotKeyChurnGenerator(
        config.n_ops,
        n_keys=config.n_keys,
        hot_size=max(1, config.n_keys // 16),
        rotate_every=max(1, config.n_ops // 8),
        zipf_s=config.zipf_s,
        get_ratio=config.get_ratio,
        update_ratio=config.put_ratio,
        churn_ratio=config.delete_ratio,
        seed=config.seed,
        preload=True,
    )
    ops = list(_map_trace(iter(generator), config))
    return ops[:config.n_keys], ops[config.n_keys:]


def _build_diurnal(config: LoadgenConfig) -> List[Op]:
    """Day-cycle occupancy ramp: two periods between n_keys/4 and n_keys,
    starting from an empty store (there is nothing to preload)."""
    generator = DiurnalLoadGenerator(
        config.n_ops,
        base_keys=max(1, config.n_keys // 4),
        peak_keys=config.n_keys,
        period=max(2, config.n_ops // 2),
        get_ratio=config.get_ratio,
        zipf_s=config.zipf_s,
        seed=config.seed,
    )
    return list(_map_trace(iter(generator), config))


def _map_trace(trace: Iterator, config: LoadgenConfig) -> Iterator[Op]:
    for op in trace:
        if op.kind in (OpKind.INSERT, OpKind.UPDATE):
            yield ("put", op.key, value_bytes(op.key, op.value or 0,
                                              config.value_size))
        elif op.kind is OpKind.DELETE:
            yield ("delete", op.key)
        else:  # LOOKUP / LOOKUP_MISSING
            yield ("get", op.key)


# ----------------------------------------------------------------------
# measurement
# ----------------------------------------------------------------------


def percentile(sorted_latencies: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample (q in [0,100])."""
    if not sorted_latencies:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_latencies)))
    return sorted_latencies[min(rank, len(sorted_latencies)) - 1]


#: log2-spaced histogram bucket upper bounds, in milliseconds
#: (50µs .. ~3.3s; one overflow bucket catches the rest).
HIST_BOUNDS_MS: Tuple[float, ...] = tuple(0.05 * (2 ** i) for i in range(17))


def latency_histogram(
    sorted_ms: Sequence[float],
    bounds: Sequence[float] = HIST_BOUNDS_MS,
) -> List[Tuple[float, int]]:
    """Bucket a sorted latency sample (ms) into ``(upper_bound_ms, count)``
    pairs; the final bucket has an infinite bound and absorbs the tail."""
    out: List[Tuple[float, int]] = []
    prev = 0
    for bound in bounds:
        pos = bisect.bisect_right(sorted_ms, bound)
        out.append((bound, pos - prev))
        prev = pos
    out.append((math.inf, len(sorted_ms) - prev))
    return out


def summarize_latencies(sorted_s: Sequence[float]) -> Dict[str, float]:
    """count/p50/p95/p99/mean (ms) of an already-sorted sample (seconds)."""
    mean = sum(sorted_s) / len(sorted_s) if sorted_s else 0.0
    return {
        "count": len(sorted_s),
        "p50_ms": percentile(sorted_s, 50) * 1e3,
        "p95_ms": percentile(sorted_s, 95) * 1e3,
        "p99_ms": percentile(sorted_s, 99) * 1e3,
        "mean_ms": mean * 1e3,
    }


@dataclass
class LoadReport:
    """Throughput and latency summary of one run."""

    workload: str
    n_ops: int
    completed: int
    elapsed_s: float
    ops_per_sec: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    busy: int
    timeouts: int
    errors: int
    transport: str = "socket"
    """Frontend ↔ worker transport the target server ran ("shm" or
    "socket"; "none" for the single-process server) — makes recorded
    ops/s rows attributable to a transport."""
    per_kind: Dict[str, int] = field(default_factory=dict)
    kind_latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    """Per-op-kind latency summary: kind → count/p50_ms/p95_ms/p99_ms/mean_ms."""
    histogram: List[Tuple[float, int]] = field(default_factory=list)
    """Global latency histogram: (upper_bound_ms, count); last bound is inf."""

    def render(self) -> str:
        lines = [
            f"workload {self.workload}: {self.completed}/{self.n_ops} ops "
            f"in {self.elapsed_s:.2f}s ({self.ops_per_sec:,.0f} ops/s) "
            f"[transport={self.transport}]",
            f"  latency   p50={self.p50_ms:.3f}ms  p95={self.p95_ms:.3f}ms  "
            f"p99={self.p99_ms:.3f}ms  mean={self.mean_ms:.3f}ms",
            f"  rejected  busy={self.busy}  timeouts={self.timeouts}  "
            f"errors={self.errors}",
            "  mix       "
            + "  ".join(f"{kind}={count}"
                        for kind, count in sorted(self.per_kind.items())),
        ]
        for kind, summary in sorted(self.kind_latency.items()):
            lines.append(
                f"  {kind:<9} n={int(summary['count'])}  "
                f"p50={summary['p50_ms']:.3f}ms  "
                f"p95={summary['p95_ms']:.3f}ms  "
                f"p99={summary['p99_ms']:.3f}ms  "
                f"mean={summary['mean_ms']:.3f}ms"
            )
        populated = [(bound, count) for bound, count in self.histogram
                     if count > 0]
        if populated:
            lines.append(
                "  hist      "
                + "  ".join(
                    (f">{HIST_BOUNDS_MS[-1]:g}ms:{count}"
                     if math.isinf(bound) else f"<={bound:g}ms:{count}")
                    for bound, count in populated
                )
            )
        return "\n".join(lines)

    def summary_json(self) -> Dict[str, object]:
        """The whole report as one JSON-safe dict (``repro loadgen --json``)."""
        return {
            "workload": self.workload,
            "transport": self.transport,
            "n_ops": self.n_ops,
            "completed": self.completed,
            "elapsed_s": self.elapsed_s,
            "ops_per_sec": self.ops_per_sec,
            "latency_ms": {
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
                "mean": self.mean_ms,
            },
            "rejected": {
                "busy": self.busy,
                "timeouts": self.timeouts,
                "errors": self.errors,
            },
            "per_kind": dict(sorted(self.per_kind.items())),
            "per_kind_ops_per_sec": {
                # completed ops only (kind_latency samples), so per-kind
                # throughput decomposes the headline ops_per_sec exactly
                kind: (summary["count"] / self.elapsed_s
                       if self.elapsed_s > 0 else 0.0)
                for kind, summary in sorted(self.kind_latency.items())
            },
            "kind_latency": {
                kind: dict(summary)
                for kind, summary in sorted(self.kind_latency.items())
            },
            "histogram": [
                {"le_ms": None if math.isinf(bound) else bound,
                 "count": count}
                for bound, count in self.histogram
            ],
        }


async def run_loadgen(
    host: str,
    port: int,
    config: LoadgenConfig,
    preload: bool = True,
    retry: Optional[RetryPolicy] = None,
    transport: str = "socket",
) -> LoadReport:
    """Preload the working set, then drive the timed phase closed-loop.

    A ``retry`` policy makes the workers resilient to BUSY storms and
    connection loss (useful against a fault-injected server); without one,
    failures count into the report as before.  ``transport`` labels the
    report with the target server's worker transport; it does not change
    the run.
    """
    preload_ops, ops = build_workload(config)
    async with McCuckooClient(host, port, pool_size=config.concurrency,
                              retry=retry) as client:
        if preload and preload_ops:
            await _preload(client, preload_ops)

        latencies: List[float] = []
        per_kind: Dict[str, int] = {}
        kind_lats: Dict[str, List[float]] = {}
        busy = timeouts = errors = completed = 0
        queue: Iterator[Op] = iter(ops)

        async def worker() -> None:
            nonlocal busy, timeouts, errors, completed
            requeued: List[Op] = []
            while True:
                # ops the server bounced with a per-op BUSY retry first —
                # closed-loop semantics: an op is not done until accepted
                chunk: List[Op] = requeued[:config.batch_size]
                del requeued[:len(chunk)]
                # single-threaded event loop: pulling from the shared
                # iterator between awaits is race-free
                for op in queue:
                    chunk.append(op)
                    if len(chunk) >= config.batch_size:
                        break
                if not chunk:
                    return
                begin = time.perf_counter()
                replies: Optional[Sequence] = None
                try:
                    if config.batch_size == 1:
                        await _issue_one(client, chunk[0])
                    else:
                        replies = await client.batch(chunk)
                except ServerBusyError:
                    busy += len(chunk)
                except RequestTimeoutError:
                    timeouts += len(chunk)
                except ServeError:
                    errors += len(chunk)
                except (ConnectionError, OSError):
                    errors += len(chunk)
                else:
                    # a batch frame succeeds as a whole, but each op inside
                    # answers for itself: count per-op BUSY (backpressure)
                    # and error sub-replies instead of taking the frame's
                    # success at face value
                    done = list(chunk)
                    if replies is not None:
                        done = []
                        for op, reply in zip(chunk, replies):
                            if isinstance(reply, ErrorReply):
                                if reply.code is ErrorCode.BUSY:
                                    busy += 1
                                    requeued.append(op)
                                else:
                                    errors += 1
                                    per_kind[op[0]] = (
                                        per_kind.get(op[0], 0) + 1
                                    )
                                continue
                            done.append(op)
                    completed += len(done)
                    if done:
                        cost = (time.perf_counter() - begin) / len(done)
                        for op in done:
                            latencies.append(cost)
                            kind_lats.setdefault(op[0], []).append(cost)
                            per_kind[op[0]] = per_kind.get(op[0], 0) + 1
                    continue
                for op in chunk:
                    per_kind[op[0]] = per_kind.get(op[0], 0) + 1

        wall_start = time.perf_counter()
        await asyncio.gather(*(worker() for _ in range(config.concurrency)))
        elapsed = time.perf_counter() - wall_start

    latencies.sort()
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    kind_latency: Dict[str, Dict[str, float]] = {}
    for kind, sample in kind_lats.items():
        sample.sort()
        kind_latency[kind] = summarize_latencies(sample)
    return LoadReport(
        workload=config.workload,
        n_ops=len(ops),
        completed=completed,
        elapsed_s=elapsed,
        ops_per_sec=completed / elapsed if elapsed > 0 else 0.0,
        p50_ms=percentile(latencies, 50) * 1e3,
        p95_ms=percentile(latencies, 95) * 1e3,
        p99_ms=percentile(latencies, 99) * 1e3,
        mean_ms=mean * 1e3,
        busy=busy,
        timeouts=timeouts,
        errors=errors,
        transport=transport,
        per_kind=per_kind,
        kind_latency=kind_latency,
        histogram=latency_histogram([v * 1e3 for v in latencies]),
    )


async def _preload(
    client: McCuckooClient, ops: List[Op], rounds: int = 10
) -> None:
    """Load the working set, retrying ops the server bounced with BUSY."""
    pending = ops
    for _ in range(rounds):
        bounced: List[Op] = []
        for start in range(0, len(pending), 128):
            chunk = pending[start:start + 128]
            replies = await client.batch(chunk)
            bounced.extend(
                op
                for op, reply in zip(chunk, replies)
                if isinstance(reply, ErrorReply)
                and reply.code is ErrorCode.BUSY
            )
        if not bounced:
            return
        pending = bounced
        await asyncio.sleep(0.01)
    raise ServeError(ErrorCode.BUSY,
                     f"{len(pending)} preload ops still bounced after "
                     f"{rounds} rounds")


async def _issue_one(client: McCuckooClient, op: Op) -> None:
    verb = op[0]
    if verb == "get":
        await client.get(op[1])
    elif verb == "put":
        await client.put(op[1], op[2])
    elif verb == "delete":
        await client.delete(op[1])
    else:
        raise ValueError(f"unknown op verb {verb!r}")
