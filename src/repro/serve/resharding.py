"""Live shard migration between worker processes.

:class:`ReshardCoordinator` moves one shard from its owning worker to a
target worker while the server keeps serving, in phases framed over the
ordinary worker IPC links (``KIND_MIGRATE``):

1. **snapshot** — the source freezes maintenance for the shard (its log
   must stay append-only so delta marks remain valid byte offsets) and
   ships the full durable log image plus a mark (the image length).
2. **install** — the target adopts the shard from the snapshot, takes a
   checkpoint against its own recovered image, and primes a delta buffer.
3. **delta / apply** — rounds of "records appended since mark" from the
   source, replayed on the target via the checkpoint (tail-only replay).
4. **fence** — the frontend holds new writes to the shard, flushes the
   coalesced runs, and submits a FENCE frame, all in one synchronous
   block; the source's FIFO inbox makes the fence ack a drain barrier
   (every write admitted before the fence has been applied when the ack
   is read).  One final delta/apply round then makes the target exact.
5. **flip** — :meth:`RoutingTable.reassign` bumps the routing epoch.
   This is the commit point: a failure before it aborts (routing
   unchanged, the source still owns the shard and its durable file);
   after it, activate/release are best-effort cleanup — a crashed
   target restarts and recovers the shard from the shared on-disk log
   file, which holds the complete pre-fence image.
6. **activate / release** — the target rewrites the shard's log file
   (temp file + atomic rename) and takes over its sink; the source
   drops its copy.

The coordinator captures both worker handles once, up front: if the
supervisor restarts either worker mid-migration the stale handle raises
:class:`WorkerDiedError` and the migration aborts cleanly — it can never
mis-apply a delta against a restarted incarnation.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass, field
from typing import List, Optional

from ..core.errors import ConfigurationError
from .protocol import (
    FenceFrame,
    MigrateFrame,
    ProtocolError,
    decode_migration_frame,
    encode_fence,
    encode_migrate,
)
from .shm import RingFrameTooLarge, RingFullError
from .workers import (
    KIND_MIGRATE,
    MigrationError,
    WorkerDiedError,
    WorkerUnavailableError,
)

_MARK = struct.Struct(">Q")

#: everything a phase step can raise that means "this migration failed",
#: as opposed to a bug in the coordinator itself
MIGRATION_ERRORS = (
    MigrationError,
    WorkerDiedError,
    WorkerUnavailableError,
    ProtocolError,
    RingFullError,
    RingFrameTooLarge,
    ConnectionError,
    OSError,
    asyncio.TimeoutError,
)


@dataclass
class MigrationReport:
    """Outcome of one :meth:`ReshardCoordinator.migrate_shard` call."""

    shard: int
    source: int
    target: int
    committed: bool = False
    epoch_before: int = 0
    epoch_after: int = 0
    bytes_copied: int = 0
    """Snapshot image size shipped in the initial copy."""
    delta_bytes: int = 0
    """Total bytes shipped across all delta rounds (including the
    post-fence final round)."""
    phases: List[str] = field(default_factory=list)
    error: Optional[str] = None

    def render(self) -> str:
        verdict = "committed" if self.committed else "aborted"
        lines = [
            f"migration of shard {self.shard}: "
            f"worker {self.source} -> worker {self.target} [{verdict}]",
            f"  routing epoch   {self.epoch_before} -> {self.epoch_after}",
            f"  snapshot bytes  {self.bytes_copied}",
            f"  delta bytes     {self.delta_bytes}",
            f"  phases          {' '.join(self.phases) or '-'}",
        ]
        if self.error:
            lines.append(f"  error           {self.error}")
        return "\n".join(lines)


class ReshardCoordinator:
    """Drives live shard migrations over a :class:`WorkerServer`."""

    def __init__(self, server, phase_timeout: float = 10.0,
                 delta_rounds: int = 2) -> None:
        self.server = server
        self.phase_timeout = phase_timeout
        #: pre-fence catch-up rounds; more rounds shrink the write delta
        #: the fenced final round has to drain
        self.delta_rounds = max(1, delta_rounds)

    # ------------------------------------------------------------------

    async def migrate_shard(self, shard: int, target_worker: int
                            ) -> MigrationReport:
        server = self.server
        routing = server.routing
        if not 0 <= shard < server.config.n_shards:
            raise ConfigurationError(f"shard index {shard} out of range")
        if not 0 <= target_worker < server.n_workers:
            raise ConfigurationError(
                f"target worker {target_worker} out of range")
        source_worker = routing.worker_of_shard(shard)
        report = MigrationReport(
            shard=shard, source=source_worker, target=target_worker,
            epoch_before=routing.epoch, epoch_after=routing.epoch,
        )
        if source_worker == target_worker:
            report.error = "shard already lives on the target worker"
            return report
        # Capture both handles ONCE: a supervised restart swaps in a new
        # handle object, so any later call on these raises WorkerDiedError
        # instead of silently talking to a fresh incarnation.
        try:
            source = server.pool.handle_for_worker(source_worker)
            target = server.pool.handle_for_worker(target_worker)
        except WorkerUnavailableError as error:
            report.error = str(error)
            return report
        server.note_migration_start()
        fenced = False
        installed = False
        committed = False
        try:
            epoch = routing.epoch
            # 1) full image to the target
            answer = await self._phase(
                source, MigrateFrame("snapshot", shard, epoch))
            report.phases.append("snapshot")
            (mark,) = _MARK.unpack(answer.payload[:_MARK.size])
            report.bytes_copied = mark
            await self._phase(
                target, MigrateFrame("install", shard, epoch, answer.payload))
            installed = True
            report.phases.append("install")
            # 2) catch-up rounds while writes still flow to the source
            for _ in range(self.delta_rounds - 1):
                mark = await self._delta_round(
                    source, target, shard, epoch, mark, report)
            # 3) fence + flush in ONE synchronous block: no write can sit
            #    enqueued-but-unflushed when the FENCE frame enters the
            #    source's FIFO inbox behind every admitted write
            server.fence_shard(shard)
            fenced = True
            server._flush_runs()
            fence_future = source._submit(
                KIND_MIGRATE,
                encode_fence(FenceFrame("fence", shard, epoch)), ops=0)
            await asyncio.wait_for(self._fence_ack(source, fence_future),
                                   self.phase_timeout)
            report.phases.append("fence")
            # 4) the post-fence delta is exact: the source applied every
            #    write it will ever ack for this shard
            mark = await self._delta_round(
                source, target, shard, epoch, mark, report)
            # 5) COMMIT: flip routing; everything after is best-effort.
            #    The flip also retargets the shared read path atomically:
            #    the frontend picks a shard's image region through this
            #    routing table, so no reader consults the source's region
            #    past this line (the source additionally unpublishes it
            #    at release/abort)
            report.epoch_after = routing.reassign(shard, target_worker)
            committed = True
            report.committed = True
        except MIGRATION_ERRORS as error:
            report.error = f"{type(error).__name__}: {error}" \
                if str(error) else type(error).__name__
            await self._abort(source, target, shard, routing.epoch,
                              installed)
            return report
        finally:
            if fenced:
                # lift even on an abort: parked writes re-route via the
                # (possibly unchanged) routing table
                server.lift_fence(shard)
            server.note_migration_end(committed)
        # post-commit cleanup: failures here cost only tidiness — the
        # target owns the shard and its restart path recovers from the
        # shared on-disk log file
        for handle, phase in ((target, "activate"), (source, "release")):
            try:
                await self._phase(
                    handle, MigrateFrame(phase, shard, report.epoch_after))
                report.phases.append(phase)
            except MIGRATION_ERRORS as error:
                report.phases.append(f"{phase}!")
                if report.error is None:
                    report.error = (
                        f"post-commit {phase} skipped: "
                        f"{type(error).__name__}: {error}")
        return report

    # ------------------------------------------------------------------

    async def _phase(self, handle, frame: MigrateFrame):
        answer = await asyncio.wait_for(
            handle.migrate(encode_migrate(frame)), self.phase_timeout)
        if not isinstance(answer, MigrateFrame) or answer.phase != frame.phase:
            raise MigrationError(
                f"worker {handle.worker_id} answered {frame.phase!r} "
                f"with {answer!r}")
        return answer

    async def _delta_round(self, source, target, shard: int, epoch: int,
                           mark: int, report: MigrationReport) -> int:
        answer = await self._phase(
            source,
            MigrateFrame("delta", shard, epoch, _MARK.pack(mark)))
        report.phases.append("delta")
        (new_mark,) = _MARK.unpack(answer.payload[:_MARK.size])
        report.delta_bytes += len(answer.payload) - _MARK.size
        await self._phase(
            target, MigrateFrame("apply", shard, epoch, answer.payload))
        report.phases.append("apply")
        return new_mark

    @staticmethod
    async def _fence_ack(source, future) -> None:
        kind, payload = await future
        if kind != KIND_MIGRATE:
            raise MigrationError(
                f"worker {source.worker_id} fence answered with kind {kind}")
        answer = decode_migration_frame(payload)
        if not isinstance(answer, FenceFrame) or answer.action != "ack":
            raise MigrationError(
                f"worker {source.worker_id} fence answered {answer!r}")

    async def _abort(self, source, target, shard: int, epoch: int,
                     installed: bool) -> None:
        """Best-effort rollback on both sides; idempotent and non-raising."""
        sides = [source] if not installed else [source, target]
        for handle in sides:
            try:
                await asyncio.wait_for(
                    handle.migrate(encode_migrate(
                        MigrateFrame("abort", shard, epoch))),
                    self.phase_timeout)
            except MIGRATION_ERRORS:
                pass


__all__ = [
    "MIGRATION_ERRORS",
    "MigrationReport",
    "ReshardCoordinator",
]
