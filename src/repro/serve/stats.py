"""Per-operation serving counters, exposed through the STATS verb.

The server owns one :class:`ServeStats` and bumps it on every request;
:meth:`ServeStats.snapshot` flattens the counters into the ``str → number``
dict that travels inside a ``STATS_OK`` frame.  Index-level gauges (items,
load, stash population, writer-queue depths) and durable-log maintenance
gauges (``store_log_bytes``, ``store_dead_bytes``, ``store_compactions``,
``store_checkpoints``, ``store_last_checkpoint_age_s``) are merged in by
the server at snapshot time, so a client sees one coherent view of the
serving path *and* the McCuckoo machinery under it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ServeStats:
    """Monotonic counters for one server's lifetime."""

    connections_opened: int = 0
    connections_rejected: int = 0
    requests: int = 0

    gets: int = 0
    get_hits: int = 0
    get_misses: int = 0

    puts: int = 0
    put_creates: int = 0
    put_updates: int = 0
    put_kicks: int = 0
    put_stashed: int = 0

    deletes: int = 0
    delete_hits: int = 0
    delete_misses: int = 0

    batches: int = 0
    batch_ops: int = 0
    stats_calls: int = 0

    busy_rejections: int = 0
    timeouts: int = 0
    bad_frames: int = 0
    internal_errors: int = 0

    injected_busy: int = 0
    injected_crashes: int = 0
    shard_recoveries: int = 0

    worker_restarts: int = 0
    """Worker processes the supervisor has restarted (multi-process mode);
    per-worker restart/queue/routing breakdowns ride in ``gauges`` as
    ``worker<N>_*`` entries."""

    shared_reads: int = 0
    """GETs the frontend answered straight from a worker's shared-memory
    index image, without waking the worker (``read_path="shared"``)."""
    shared_read_retries: int = 0
    """Seqlock validation retries burned by shared-image reads (an odd or
    moved version forced the reader to re-snapshot the region)."""
    shared_read_fallbacks: int = 0
    """Shared-path GETs that fell back to the ring transport (region
    missing/unservable, retry budget exhausted, or value-parse anomaly)."""

    replica_applies: int = 0
    """Writes a worker applied to a shard it hosts as a read replica
    (forwarded asynchronously after the owner's ack)."""
    replica_reads: int = 0
    """Reads the frontend served from a replica because the shard's
    owner was down (read-only degradation)."""

    gauges: Dict[str, float] = field(default_factory=dict)
    """Point-in-time values merged into the snapshot (queue depth, load...)."""

    # ------------------------------------------------------------------

    def note_get(self, hit: bool) -> None:
        self.gets += 1
        if hit:
            self.get_hits += 1
        else:
            self.get_misses += 1

    def note_put(self, created: bool, kicks: int = 0, stashed: bool = False) -> None:
        self.puts += 1
        if created:
            self.put_creates += 1
        else:
            self.put_updates += 1
        self.put_kicks += kicks
        if stashed:
            self.put_stashed += 1

    def note_delete(self, deleted: bool) -> None:
        self.deletes += 1
        if deleted:
            self.delete_hits += 1
        else:
            self.delete_misses += 1

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flatten counters plus gauges into one wire-ready dict."""
        flat: Dict[str, float] = {
            name: value
            for name, value in vars(self).items()
            if isinstance(value, (int, float))
        }
        flat.update(self.gauges)
        return flat
