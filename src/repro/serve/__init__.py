"""Network serving layer: binary protocol, asyncio server/client, loadgen.

Turns the in-process sharded McCuckoo KV store into a service: a
length-prefixed binary wire protocol (:mod:`~repro.serve.protocol`), an
asyncio TCP server with one writer task per shard and explicit
backpressure (:mod:`~repro.serve.server`), a pooled async client with
pipelined batches (:mod:`~repro.serve.client`), per-op serving counters
behind the STATS verb (:mod:`~repro.serve.stats`), and a closed-loop load
generator reporting ops/sec with p50/p95/p99 latency
(:mod:`~repro.serve.loadgen`).  :mod:`~repro.serve.workers` lifts the
same frontend onto N supervised shard worker processes for true
multi-core parallelism, carried over shared-memory SPSC rings
(:mod:`~repro.serve.shm`) where the platform supports them, socketpair
streams otherwise.  :mod:`~repro.serve.resharding` migrates shards
between live workers (snapshot → delta → fence → flip) and the worker
server can host per-shard read replicas for owner-down degradation.
"""

from .client import (
    McCuckooClient,
    RequestTimeoutError,
    RetryPolicy,
    ServeError,
    ServerBusyError,
    ServerUnavailableError,
)
from .faultgen import (
    DEFAULT_FAULT_SPEC,
    FaultgenConfig,
    FaultgenReport,
    run_faultgen,
)
from .loadgen import LoadgenConfig, LoadReport, build_workload, run_loadgen
from .protocol import (
    BatchReply,
    BatchRequest,
    DeleteReply,
    DeleteRequest,
    ErrorCode,
    ErrorReply,
    FenceFrame,
    GetRequest,
    MigrateFrame,
    Opcode,
    ProtocolError,
    PutReply,
    PutRequest,
    ReplicaFrame,
    StatsReply,
    StatsRequest,
    ValueReply,
    decode_migration_frame,
    decode_reply,
    decode_request,
    encode_fence,
    encode_migrate,
    encode_replica,
    encode_reply,
    encode_request,
    read_frame,
    write_frame,
)
from .resharding import MigrationReport, ReshardCoordinator
from .server import McCuckooServer, ServerConfig
from .shm import (
    RingFrameTooLarge,
    RingFullError,
    ShmRing,
    ShmTransport,
    resolve_transport,
    shm_available,
)
from .stats import ServeStats
from .store import ShardedLogStore
from .workers import (
    MigrationError,
    WorkerDiedError,
    WorkerPool,
    WorkerServer,
    WorkerSpec,
    WorkerUnavailableError,
)

__all__ = [
    "BatchReply",
    "BatchRequest",
    "DEFAULT_FAULT_SPEC",
    "DeleteReply",
    "DeleteRequest",
    "ErrorCode",
    "ErrorReply",
    "FaultgenConfig",
    "FaultgenReport",
    "FenceFrame",
    "GetRequest",
    "MigrateFrame",
    "MigrationError",
    "MigrationReport",
    "ReplicaFrame",
    "ReshardCoordinator",
    "LoadReport",
    "LoadgenConfig",
    "McCuckooClient",
    "McCuckooServer",
    "Opcode",
    "ProtocolError",
    "PutReply",
    "PutRequest",
    "RequestTimeoutError",
    "RetryPolicy",
    "RingFrameTooLarge",
    "RingFullError",
    "ServeError",
    "ServeStats",
    "ServerBusyError",
    "ServerUnavailableError",
    "ServerConfig",
    "ShardedLogStore",
    "ShmRing",
    "ShmTransport",
    "StatsReply",
    "StatsRequest",
    "ValueReply",
    "WorkerDiedError",
    "WorkerPool",
    "WorkerServer",
    "WorkerSpec",
    "WorkerUnavailableError",
    "build_workload",
    "decode_migration_frame",
    "decode_reply",
    "decode_request",
    "encode_fence",
    "encode_migrate",
    "encode_replica",
    "encode_reply",
    "encode_request",
    "read_frame",
    "resolve_transport",
    "run_faultgen",
    "run_loadgen",
    "shm_available",
    "write_frame",
]
