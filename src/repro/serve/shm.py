"""Shared-memory SPSC ring transport between the frontend and workers.

The socketpair transport (PR 4) pays a kernel round trip plus a copy in
each direction for every IPC frame.  This module replaces that hop with a
pair of single-producer/single-consumer ring buffers per worker, backed
by :mod:`multiprocessing.shared_memory`, so a frame travels frontend →
worker as one ``memcpy`` into mapped memory — and batched GET key arrays
never get copied at all: the worker hands the ring slot's bytes straight
to ``numpy.frombuffer`` as a ``uint64`` view feeding the vectorized
lookup kernel (see :meth:`repro.serve.store.ShardedLogStore.get_many_u64`).

Layout of one ring (all integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------
    0       u32   magic ("MCR1")
    4       u32   capacity — data area size in bytes
    8       u64   head — consumer cursor (free-running byte count)
    16      u64   tail — producer cursor (free-running byte count)
    24      u16   epoch — current worker generation (see below)
    28      u32   stale_discarded — slots dropped by epoch filtering
    32..63        reserved
    64      ...   data area (capacity bytes)

Cursors free-run and are reduced ``% capacity`` on access, so
``tail - head`` is always the exact number of used bytes and the
full/empty ambiguity of wrapped indices never arises.  Each record
(slot) in the data area is::

    u32 len | u32 crc32(body) | u16 epoch | body          (10-byte header)

Records never straddle the end of the data area: when the contiguous
space to the end cannot hold the next record the producer writes a
``0xFFFFFFFF`` skip marker (when at least 4 bytes remain) and advances to
the start.  The consumer mirrors the rule, so a popped body is always one
contiguous ``memoryview`` — the property the zero-copy key path relies
on.  Publication order is: body and slot header first, the ``tail`` store
last; a consumer only reads below ``tail``, and the per-slot CRC turns
any torn or corrupted slot into a :class:`ProtocolError` instead of a
silently wrong frame (same contract as the wire framing).

The u16 **epoch** implements the supervisor's no-replay guarantee: every
slot is stamped with the producer's generation, the pool bumps the
generation on each worker restart and drains both rings first, and both
sides discard any slot whose epoch does not match the current one — a
restarted worker can never re-apply a request enqueued for its dead
predecessor.

Doorbells are plain pipes: the producer writes one byte (non-blocking —
a full pipe already guarantees a pending wakeup) and the consumer
``select``\\ s on the read end.  Pipe EOF doubles as the peer-death
signal, mirroring the socket transport's EOF semantics.
"""

from __future__ import annotations

import errno
import os
import select
import struct
import zlib
from typing import Optional, Tuple, Union

from repro.core.errors import ConfigurationError, ReproError
from repro.serve.protocol import ProtocolError

__all__ = [
    "DEFAULT_RING_BYTES",
    "Doorbell",
    "RingFrameTooLarge",
    "RingFullError",
    "ShmRing",
    "ShmTransport",
    "TRANSPORTS",
    "resolve_transport",
    "ring_doorbell",
    "shm_available",
    "wait_doorbell",
]

#: Per-direction default ring capacity.  Comfortably above
#: ``MAX_FRAME_BYTES`` (1 MiB) so any single client frame fits.
DEFAULT_RING_BYTES = 1 << 22

#: Valid values for the ``--transport`` knob.
TRANSPORTS = ("auto", "shm", "socket")

_HEADER_BYTES = 64
_MAGIC = 0x3152434D  # "MCR1" little-endian
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_U16 = struct.Struct("<H")
_SLOT = struct.Struct("<IIH")  # len, crc32(body), epoch
SLOT_OVERHEAD = _SLOT.size
_SKIP = 0xFFFFFFFF
_MIN_CAPACITY = 4096

_OFF_MAGIC = 0
_OFF_CAPACITY = 4
_OFF_HEAD = 8
_OFF_TAIL = 16
_OFF_EPOCH = 24
_OFF_STALE = 28


class RingFullError(ReproError):
    """The ring has no room for this record right now (backpressure)."""


class RingFrameTooLarge(ReproError):
    """The record can never fit this ring, even when empty."""


# ----------------------------------------------------------------------
# transport selection


_SHM_PROBE: Optional[bool] = None


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works here (cached probe)."""
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=64)
            try:
                segment.buf[0] = 0x5A
                ok = segment.buf[0] == 0x5A
            finally:
                segment.close()
                segment.unlink()
            _SHM_PROBE = bool(ok)
        except Exception:
            _SHM_PROBE = False
    return _SHM_PROBE


def resolve_transport(requested: str = "auto") -> str:
    """Resolve a ``--transport`` value to a concrete ``"shm"``/``"socket"``.

    ``"auto"`` honours the ``REPRO_SERVE_TRANSPORT`` environment variable
    (used by the CI transport matrix) and otherwise picks shared memory
    whenever the platform supports it.  Requesting ``"shm"`` on a platform
    without working shared memory is a configuration error rather than a
    silent fallback.
    """
    if requested not in TRANSPORTS:
        raise ConfigurationError(
            f"unknown transport {requested!r}; expected one of {TRANSPORTS}"
        )
    if requested == "socket":
        return "socket"
    if requested == "shm":
        if not shm_available():
            raise ConfigurationError(
                "transport 'shm' requested but multiprocessing.shared_memory "
                "is unavailable on this platform; use --transport socket"
            )
        return "shm"
    env = os.environ.get("REPRO_SERVE_TRANSPORT", "").strip().lower()
    if env in ("shm", "socket"):
        return resolve_transport(env)
    return "shm" if shm_available() else "socket"


# ----------------------------------------------------------------------
# doorbell


def ring_doorbell(wfd: int) -> None:
    """Wake the fd's reader (non-blocking; a full pipe means a wakeup is
    already pending, and a vanished reader is reported by the data path)."""
    if wfd < 0:
        return
    try:
        os.write(wfd, b"\x01")
    except BlockingIOError:
        pass
    except OSError as exc:
        if exc.errno not in (errno.EPIPE, errno.EBADF):
            raise


def wait_doorbell(rfd: int, timeout: float) -> str:
    """Block on the fd until rung: ``"data"``, ``"eof"`` (writer died,
    mirroring socket EOF semantics) or ``"timeout"``."""
    ready, _, _ = select.select([rfd], [], [], timeout)
    if not ready:
        return "timeout"
    try:
        data = os.read(rfd, 4096)
    except OSError:
        return "eof"
    return "data" if data else "eof"


class Doorbell:
    """One-direction pipe wakeup: non-blocking writes, selectable reads.

    After ``fork`` both processes hold both ends; each side closes the end
    it does not use (:meth:`close_read` / :meth:`close_write`) so that the
    reader sees EOF when the writing process dies — the transport's
    peer-death signal.
    """

    def __init__(self) -> None:
        self.rfd, self.wfd = os.pipe()
        os.set_blocking(self.wfd, False)

    def ring(self) -> None:
        """Wake the reader.  A full pipe means a wakeup is already pending."""
        ring_doorbell(self.wfd)

    def wait(self, timeout: float) -> str:
        """Block until rung: ``"data"``, ``"eof"`` (writer died) or ``"timeout"``."""
        return wait_doorbell(self.rfd, timeout)

    def close_read(self) -> None:
        if self.rfd >= 0:
            os.close(self.rfd)
            self.rfd = -1

    def close_write(self) -> None:
        if self.wfd >= 0:
            os.close(self.wfd)
            self.wfd = -1

    def close(self) -> None:
        self.close_read()
        self.close_write()


# ----------------------------------------------------------------------
# ring


class ShmRing:
    """A single-producer/single-consumer byte ring over shared memory.

    One process pushes, the other pops; either side may additionally run
    the epoch-drain maintenance (:meth:`drain_all`) while the opposite
    side is known-dead.  All multi-byte header fields are read/written as
    single aligned 8-byte-or-smaller stores, which are atomic on every
    platform CPython's ``mmap`` supports.
    """

    def __init__(self, segment, capacity: int) -> None:
        self._segment = segment
        self._buf = segment.buf
        self.capacity = capacity
        self._pending_head: Optional[int] = None

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, capacity: int) -> "ShmRing":
        from multiprocessing import shared_memory

        capacity = max(int(capacity), _MIN_CAPACITY)
        segment = shared_memory.SharedMemory(
            create=True, size=_HEADER_BYTES + capacity
        )
        ring = cls(segment, capacity)
        buf = ring._buf
        _U32.pack_into(buf, _OFF_MAGIC, _MAGIC)
        _U32.pack_into(buf, _OFF_CAPACITY, capacity)
        _U64.pack_into(buf, _OFF_HEAD, 0)
        _U64.pack_into(buf, _OFF_TAIL, 0)
        _U16.pack_into(buf, _OFF_EPOCH, 0)
        _U32.pack_into(buf, _OFF_STALE, 0)
        return ring

    def close(self) -> None:
        self._buf = None
        self._segment.close()

    def unlink(self) -> None:
        self._segment.unlink()

    # -- header accessors ----------------------------------------------

    @property
    def head(self) -> int:
        return _U64.unpack_from(self._buf, _OFF_HEAD)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._buf, _OFF_TAIL)[0]

    @property
    def epoch(self) -> int:
        return _U16.unpack_from(self._buf, _OFF_EPOCH)[0]

    def set_epoch(self, epoch: int) -> None:
        _U16.pack_into(self._buf, _OFF_EPOCH, epoch & 0xFFFF)

    @property
    def stale_discarded(self) -> int:
        return _U32.unpack_from(self._buf, _OFF_STALE)[0]

    def note_stale(self, count: int = 1) -> None:
        _U32.pack_into(
            self._buf, _OFF_STALE, (self.stale_discarded + count) & 0xFFFFFFFF
        )

    def used(self) -> int:
        return self.tail - self.head

    # -- producer -------------------------------------------------------

    def try_push(self, body: Union[bytes, memoryview], epoch: int) -> bool:
        """Append one record; ``False`` when the ring is currently full.

        Raises :class:`RingFrameTooLarge` when the record cannot fit even
        an empty ring (a permanent condition, unlike fullness).
        """
        body_len = len(body)
        need = SLOT_OVERHEAD + body_len
        # records at most half the capacity always fit an empty ring no
        # matter where the cursors sit (skip run + record <= capacity);
        # anything larger could stall forever at an awkward wrap offset
        if need > self.capacity // 2:
            raise RingFrameTooLarge(
                f"record of {body_len} bytes cannot fit a "
                f"{self.capacity}-byte ring"
            )
        buf = self._buf
        head = self.head
        tail = self.tail
        free = self.capacity - (tail - head)
        pos = tail % self.capacity
        contiguous = self.capacity - pos
        if contiguous < need:
            # skip to the start of the data area
            if contiguous + need > free:
                return False
            if contiguous >= 4:
                _U32.pack_into(buf, _HEADER_BYTES + pos, _SKIP)
            tail += contiguous
            pos = 0
        elif need > free:
            return False
        base = _HEADER_BYTES + pos
        buf[base + SLOT_OVERHEAD:base + SLOT_OVERHEAD + body_len] = body
        crc = zlib.crc32(body) & 0xFFFFFFFF
        _SLOT.pack_into(buf, base, body_len, crc, epoch & 0xFFFF)
        # the tail store publishes the record (consumer never reads past it)
        _U64.pack_into(buf, _OFF_TAIL, tail + need)
        return True

    # -- consumer -------------------------------------------------------

    def pop(self) -> Optional[Tuple[int, memoryview]]:
        """Peek the oldest record as ``(epoch, body-view)``, or ``None``.

        The returned view aliases ring memory and stays valid only until
        :meth:`advance` releases the slot back to the producer.  A CRC
        mismatch (torn or corrupted producer write) raises
        :class:`ProtocolError`.
        """
        if self._pending_head is not None:
            raise RuntimeError("pop() before advance() of the previous record")
        buf = self._buf
        while True:
            head = self.head
            if head == self.tail:
                return None
            pos = head % self.capacity
            contiguous = self.capacity - pos
            if contiguous >= 4:
                (length,) = _U32.unpack_from(buf, _HEADER_BYTES + pos)
                if length != _SKIP:
                    break
            # skip marker (explicit or the implicit <4-byte remnant)
            _U64.pack_into(buf, _OFF_HEAD, head + contiguous)
        if length > self.capacity or contiguous < SLOT_OVERHEAD + length:
            raise ProtocolError(
                f"corrupt ring slot: length {length} at offset {pos}"
            )
        base = _HEADER_BYTES + pos
        _, crc, epoch = _SLOT.unpack_from(buf, base)
        body = buf[base + SLOT_OVERHEAD:base + SLOT_OVERHEAD + length]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise ProtocolError("ring slot CRC mismatch (torn producer write)")
        self._pending_head = head + SLOT_OVERHEAD + length
        return epoch, body

    def advance(self) -> None:
        """Release the record returned by the last :meth:`pop`."""
        if self._pending_head is None:
            return
        _U64.pack_into(self._buf, _OFF_HEAD, self._pending_head)
        self._pending_head = None

    def drain_all(self) -> int:
        """Discard every pending record; the count feeds the stale gauge.

        Used by the supervisor between worker generations, when the dead
        peer is known to be gone.  A torn slot (the peer died mid-write)
        just ends the walk — everything up to the tail is dropped either
        way.
        """
        self._pending_head = None
        count = 0
        while True:
            try:
                record = self.pop()
            except ProtocolError:
                count += 1
                break
            if record is None:
                _U64.pack_into(self._buf, _OFF_HEAD, self.head)
                return count
            count += 1
            self.advance()
        # CRC walk broke: reset the consumer cursor to the tail wholesale
        self._pending_head = None
        _U64.pack_into(self._buf, _OFF_HEAD, self.tail)
        return count


class ShmTransport:
    """The per-worker pair of rings: frontend→worker and worker→frontend."""

    def __init__(self, request: ShmRing, response: ShmRing) -> None:
        self.request = request
        self.response = response

    @classmethod
    def create(cls, ring_bytes: int = DEFAULT_RING_BYTES) -> "ShmTransport":
        request = ShmRing.create(ring_bytes)
        try:
            response = ShmRing.create(ring_bytes)
        except Exception:
            request.close()
            request.unlink()
            raise
        return cls(request, response)

    def set_epoch(self, epoch: int) -> None:
        self.request.set_epoch(epoch)
        self.response.set_epoch(epoch)

    def begin_generation(self, epoch: int) -> int:
        """Drain both rings and stamp the new epoch; returns slots dropped.

        Called by the supervisor after a worker death, before the
        replacement spawns: any request the dead worker never consumed
        (and any response the frontend never drained) is discarded here,
        and the epoch stamp guarantees anything that somehow survives is
        filtered on pop.
        """
        stale = self.request.drain_all() + self.response.drain_all()
        if stale:
            self.request.note_stale(stale)
        self.set_epoch(epoch)
        return stale

    def stale_discarded(self) -> int:
        return self.request.stale_discarded + self.response.stale_discarded

    def destroy(self) -> None:
        for ring in (self.request, self.response):
            try:
                ring.close()
            except Exception:
                pass
            try:
                ring.unlink()
            except Exception:
                pass
