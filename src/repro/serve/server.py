"""Asyncio TCP server fronting the sharded log-structured McCuckoo store.

Concurrency model — the paper's one-writer-many-readers discipline
(§III.H), lifted to the request path:

* **Reads** (GET, STATS) execute inline in the connection handler, so any
  number of connections read concurrently.
* **Writes** (PUT, DELETE) are routed to the owning shard's single writer
  task through its queue.  One writer per shard means mutations on a shard
  are totally ordered; writers on different shards never touch shared
  state.  A queue item is a *run* of ops: scalar requests enqueue runs of
  one, while the BATCH path submits each shard's consecutive writes as a
  single run, so a 32-op batch costs one queue round-trip per shard
  instead of 32.
* **Backpressure** is explicit: each shard accepts at most
  ``writer_queue_depth`` queued *ops* (tracked by a per-shard counter, not
  the queue length, since runs vary in size) and answers overflow with a
  per-op BUSY error frame immediately instead of buffering without bound.
  Likewise a connection over the limit is greeted with BUSY and closed,
  and a request that exceeds the per-request timeout gets a TIMEOUT frame.

Every reply is a frame; the server never drops a request silently.  The
only event that closes a connection from the server side is a framing
violation (bad length prefix or an oversized frame), after which byte
boundaries are unrecoverable.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..faults import FaultPlan, InjectedCrash
from ..maintenance import MaintenanceConfig, MaintenanceDaemon
from .protocol import (
    MAX_FRAME_BYTES,
    BatchReply,
    BatchRequest,
    DeleteReply,
    DeleteRequest,
    ErrorCode,
    ErrorReply,
    GetRequest,
    ProtocolError,
    PutReply,
    PutRequest,
    Reply,
    Request,
    SimpleReply,
    SimpleRequest,
    StatsReply,
    StatsRequest,
    ValueReply,
    decode_request,
    encode_reply,
    read_frame,
    write_frame,
)
from .stats import ServeStats
from .store import ShardedLogStore


@dataclass
class ServerConfig:
    """Tunables for one :class:`McCuckooServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → OS-assigned; read back from ``server.address``
    n_shards: int = 4
    expected_items: int = 4096
    seed: int = 0
    max_connections: int = 64
    max_frame_bytes: int = MAX_FRAME_BYTES
    writer_queue_depth: int = 512
    """Per-shard (and, in the worker server, per-worker) in-flight op
    bound past which new ops draw BUSY.  Deep enough that a default
    closed-loop client (8 connections x 32-op batches = 256 in flight)
    never self-rejects when every op lands on one shard group; shallow
    enough to bound a flooded queue's memory."""
    request_timeout: float = 5.0
    max_batch_ops: int = 1024
    write_stall: float = 0.0
    """Artificial per-write delay in seconds — a fault-injection hook used
    by backpressure/timeout tests and chaos experiments; keep 0 in prod."""
    durable: bool = False
    """Keep per-shard serialized log images so crashed shards can be
    rebuilt in place (forced on when a fault plan is set)."""
    engine: str = "auto"
    """Batch-kernel backend for the shard indexes ("python", "numpy",
    "auto"); "auto" uses the NumPy engine when the extra is installed."""
    kick_policy: Optional[str] = None
    """Victim-selection policy for the shard indexes, by registry name
    (see :data:`repro.core.policies.POLICIES`).  ``"bubbling"`` sustains
    higher index loads before resizing; ``None`` keeps the library default
    (random-walk)."""
    fault_plan: Optional[FaultPlan] = None
    """Deterministic fault injection (:mod:`repro.faults`): consulted by
    the store at append boundaries, by each writer loop per iteration, by
    the dispatch path per write, and by the wire layer per outgoing frame.
    ``None`` (the default) injects nothing."""
    maintenance: Optional[MaintenanceConfig] = None
    """Background compaction/checkpoint policy, ticked per shard by its
    writer loop between write runs (:mod:`repro.maintenance`).  ``None``
    disables maintenance entirely."""
    transport: str = "auto"
    """Frontend ↔ worker transport for :class:`WorkerServer`: ``"shm"``
    (shared-memory SPSC rings + doorbell pipes), ``"socket"`` (socketpair
    streams), or ``"auto"`` — shm when :func:`repro.serve.shm.shm_available`
    says the platform supports it, socketpair otherwise.  Ignored by the
    single-process server."""
    shm_ring_bytes: int = 1 << 22
    """Capacity of each shm ring's data region (one request + one
    response ring per worker).  Must comfortably exceed the largest IPC
    record (``max_frame_bytes``); records above half the capacity are
    rejected with TOO_LARGE."""
    read_path: str = "auto"
    """How the :class:`WorkerServer` frontend answers GETs: ``"shared"``
    serves them straight from each worker's seqlock'd shared-memory index
    image (:mod:`repro.serve.shared_image`), falling back to the ring
    transport whenever a region cannot be validated; ``"ring"`` always
    forwards to the worker; ``"auto"`` honours the
    ``REPRO_SERVE_READ_PATH`` environment variable and otherwise stays on
    the ring.  Ignored by the single-process server (its store is already
    in-process)."""
    replicas: int = 0
    """Per-shard read replicas (:class:`WorkerServer` only; 0 disables).
    With ``replicas=1`` every shard is shadowed on the next worker
    (``(owner + 1) % n_workers``): acknowledged writes are forwarded to
    the replica off the ack path (best-effort, lag surfaced as the
    ``replica_lag`` gauge), and a GET whose owner is down is served
    read-only from the replica instead of erroring UNAVAILABLE.  Writes
    to a dead owner still draw BUSY — the shard degrades to read-only,
    it does not fork a second writer.  Requires ``n_workers >= 2``."""


class McCuckooServer:
    """TCP front end over a :class:`ShardedLogStore`."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        store: Optional[ShardedLogStore] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self._faults = self.config.fault_plan
        self._maintenance: Optional[MaintenanceDaemon] = None
        if self.config.maintenance is not None and self.config.maintenance.enabled:
            self._maintenance = MaintenanceDaemon(self.config.maintenance)
        self.store = store if store is not None else self._make_store()
        self.stats = ServeStats()
        self._server: Optional[asyncio.AbstractServer] = None
        self._write_queues: List[asyncio.Queue] = []
        self._queued_ops: List[int] = []
        self._writer_tasks: List[asyncio.Task] = []
        self._connections = 0

    def _make_store(self) -> Optional[ShardedLogStore]:
        """Build the backing store; subclasses that host their shards out
        of process return ``None`` instead."""
        return ShardedLogStore(
            n_shards=self.config.n_shards,
            expected_items=self.config.expected_items,
            seed=self.config.seed,
            durable=self.config.durable or self._faults is not None,
            faults=self._faults,
            engine=self.config.engine,
            kick_policy=self.config.kick_policy,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("server is not running")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> Tuple[str, int]:
        """Bind, spawn the write backend, and begin accepting connections."""
        if self._server is not None:
            raise RuntimeError("server already started")
        await self._start_backend()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._stop_backend()

    async def _start_backend(self) -> None:
        """Spawn whatever executes writes — here, per-shard writer tasks.
        Subclasses swap in a different topology (worker processes)."""
        # Queues are unbounded; the writer_queue_depth bound is enforced in
        # ops via _queued_ops so a grouped run of N writes occupies N slots
        # while filling a single queue entry.
        self._write_queues = [asyncio.Queue() for _ in range(self.store.n_shards)]
        self._queued_ops = [0] * self.store.n_shards
        self._writer_tasks = [
            asyncio.create_task(self._writer_loop(shard))
            for shard in range(self.store.n_shards)
        ]

    async def _stop_backend(self) -> None:
        for task in self._writer_tasks:
            task.cancel()
        for task in self._writer_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._writer_tasks = []
        self._write_queues = []
        self._queued_ops = []

    async def drain_writes(self) -> None:
        """Wait until every queued write run has been fully applied.

        Used by chaos/verification harnesses to reach a quiescent point:
        after this returns (and with no new requests arriving), reads see
        the final effect of every write that ever reached a writer queue.
        """
        for queue in self._write_queues:
            await queue.join()

    async def disarm_faults(self) -> None:
        """Stop fault injection everywhere this server executes ops.

        Async because subclasses with out-of-process backends must
        broadcast the disarm to their worker plan instances too.
        """
        if self._faults is not None:
            self._faults.disarm()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "McCuckooServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # write path: one writer task per shard
    # ------------------------------------------------------------------

    async def _writer_loop(self, shard: int) -> None:
        queue = self._write_queues[shard]
        while True:
            run = await queue.get()
            # Slots free as soon as the run is picked up, matching the old
            # bounded-queue behaviour where qsize dropped at get().
            self._queued_ops[shard] -= len(run)
            if self._faults is not None:
                delay = self._faults.writer_delay(shard)
                if delay:
                    await asyncio.sleep(delay)
            try:
                for position, (request, future) in enumerate(run):
                    try:
                        if self.config.write_stall:
                            await asyncio.sleep(self.config.write_stall)
                        reply = self._apply_write(request)
                        if not future.done():
                            future.set_result(reply)
                    except asyncio.CancelledError:
                        for _, later in run[position:]:
                            if not later.done():
                                later.set_exception(asyncio.CancelledError())
                        raise
                    except InjectedCrash as error:
                        # The shard "process" died mid-write: the write is
                        # NOT acknowledged, and the shard is rebuilt from
                        # its durable log image before the next op runs —
                        # synchronously, so no reader can observe the
                        # poisoned in-memory index in between.
                        if not future.done():
                            future.set_exception(error)
                        self.stats.injected_crashes += 1
                        if self.store.durable:
                            self.store.crash_and_recover(shard)
                            self.stats.shard_recoveries += 1
                    except Exception as error:  # surface as INTERNAL
                        if not future.done():
                            future.set_exception(error)
                self._run_maintenance(shard)
            finally:
                queue.task_done()

    def _run_maintenance(self, shard: int) -> None:
        """One maintenance tick after a write run.

        Runs *after* every write in the run was answered: the writes are
        already durable, so a maintenance crash can never un-acknowledge
        one.  An injected crash (``crash_during_compaction`` /
        ``torn_checkpoint``) poisons the shard exactly like a mid-write
        crash and is healed the same way — synchronous in-place recovery
        from the durable image (now via its checkpoint slot when valid).
        """
        if self._maintenance is None or self.store is None:
            return
        try:
            self._maintenance.maybe_run(self.store.shard(shard), shard)
        except InjectedCrash:
            self.stats.injected_crashes += 1
            if self.store.durable:
                self.store.crash_and_recover(shard)
                self.stats.shard_recoveries += 1
        except Exception:
            self.stats.internal_errors += 1

    def _apply_write(self, request: SimpleRequest) -> SimpleReply:
        if isinstance(request, PutRequest):
            result = self.store.put(request.key, request.value)
            self.stats.note_put(
                result.created, kicks=result.kicks, stashed=result.stashed
            )
            return PutReply(created=result.created)
        assert isinstance(request, DeleteRequest)
        deleted = self.store.delete(request.key)
        self.stats.note_delete(deleted)
        return DeleteReply(deleted=deleted)

    def _busy_reply(self, shard: int) -> ErrorReply:
        self.stats.busy_rejections += 1
        return ErrorReply(
            ErrorCode.BUSY,
            f"shard {shard} writer queue full "
            f"({self.config.writer_queue_depth} pending)",
        )

    def _injected_busy(self) -> Optional[ErrorReply]:
        """Per-dispatch BUSY injection (the ``busy=P`` fault rule)."""
        if self._faults is not None and self._faults.should_reject_busy():
            self.stats.busy_rejections += 1
            self.stats.injected_busy += 1
            return ErrorReply(ErrorCode.BUSY, "injected busy")
        return None

    async def _submit_write(self, request: SimpleRequest) -> SimpleReply:
        injected = self._injected_busy()
        if injected is not None:
            return injected
        shard = self.store.shard_index(request.key)
        if self._queued_ops[shard] >= self.config.writer_queue_depth:
            return self._busy_reply(shard)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queued_ops[shard] += 1
        self._write_queues[shard].put_nowait([(request, future)])
        return await future

    def _enqueue_write_run(
        self,
        run: List[Tuple[int, SimpleRequest]],
        replies: List[Optional[SimpleReply]],
        pending: List[Tuple[int, "asyncio.Future"]],
    ) -> None:
        """Submit a batch's consecutive writes: group by shard, enqueue each
        shard's portion as ONE queue item, BUSY the ops past the shard's
        free capacity (per-op, like the scalar path)."""
        by_shard: dict = {}
        for index, op in run:
            injected = self._injected_busy()
            if injected is not None:
                replies[index] = injected
                continue
            by_shard.setdefault(self.store.shard_index(op.key), []).append(
                (index, op)
            )
        loop = asyncio.get_running_loop()
        depth = self.config.writer_queue_depth
        for shard, ops in by_shard.items():
            free = max(0, depth - self._queued_ops[shard])
            item: List[Tuple[SimpleRequest, asyncio.Future]] = []
            for index, op in ops[:free]:
                future: asyncio.Future = loop.create_future()
                item.append((op, future))
                pending.append((index, future))
            for index, _ in ops[free:]:
                replies[index] = self._busy_reply(shard)
            if item:
                self._queued_ops[shard] += len(item)
                self._write_queues[shard].put_nowait(item)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    async def _handle_request(self, request: Request) -> Reply:
        if isinstance(request, GetRequest):
            value = self.store.get(request.key)
            self.stats.note_get(hit=value is not None)
            if value is None:
                return ValueReply(found=False)
            return ValueReply(found=True, value=bytes(value))
        if isinstance(request, (PutRequest, DeleteRequest)):
            return await self._submit_write(request)
        if isinstance(request, StatsRequest):
            self.stats.stats_calls += 1
            return StatsReply(self._stats_snapshot())
        assert isinstance(request, BatchRequest)
        if len(request.ops) > self.config.max_batch_ops:
            return ErrorReply(
                ErrorCode.TOO_LARGE,
                f"batch of {len(request.ops)} ops exceeds "
                f"{self.config.max_batch_ops}",
            )
        self.stats.batches += 1
        self.stats.batch_ops += len(request.ops)
        return await self._handle_batch(request)

    async def _handle_batch(self, request: BatchRequest) -> BatchReply:
        """Ordered batch, served as runs rather than op-by-op: consecutive
        writes are grouped per shard and enqueued as single writer items
        (overflow still draws per-op BUSY), and consecutive GETs are served
        together through the store's bulk lookup kernel.  A read first
        flushes and drains every earlier write in the batch — so
        read-your-writes holds within a batch and per-shard write order is
        preserved — and a write run is only enqueued after earlier reads
        have executed."""
        replies: List[Optional[SimpleReply]] = [None] * len(request.ops)
        pending: List[Tuple[int, asyncio.Future]] = []
        writes: List[Tuple[int, SimpleRequest]] = []
        reads: List[Tuple[int, GetRequest]] = []

        async def drain() -> None:
            for index, future in pending:
                try:
                    replies[index] = await future
                except Exception as error:
                    self.stats.internal_errors += 1
                    replies[index] = ErrorReply(ErrorCode.INTERNAL, str(error))
            pending.clear()

        async def flush_reads() -> None:
            if not reads:
                return
            try:
                values = self.store.get_many([op.key for _, op in reads])
            except Exception:
                # per-op fallback keeps error granularity identical to the
                # scalar path (each failing GET answers INTERNAL itself)
                for index, op in reads:
                    replies[index] = await self._handle_simple(op)
            else:
                for (index, _), value in zip(reads, values):
                    self.stats.note_get(hit=value is not None)
                    if value is None:
                        replies[index] = ValueReply(found=False)
                    else:
                        replies[index] = ValueReply(found=True, value=bytes(value))
            reads.clear()

        def flush_writes() -> None:
            if writes:
                self._enqueue_write_run(writes, replies, pending)
                writes.clear()

        for index, op in enumerate(request.ops):
            if isinstance(op, (PutRequest, DeleteRequest)):
                await flush_reads()
                writes.append((index, op))
            elif isinstance(op, GetRequest):
                flush_writes()
                await drain()
                reads.append((index, op))
            else:  # STATS: a barrier — everything before it must be visible
                await flush_reads()
                flush_writes()
                await drain()
                replies[index] = await self._handle_simple(op)
        await flush_reads()
        flush_writes()
        await drain()
        assert all(reply is not None for reply in replies)
        return BatchReply(tuple(replies))  # type: ignore[arg-type]

    async def _handle_simple(self, request: SimpleRequest) -> SimpleReply:
        try:
            reply = await self._handle_request(request)
        except Exception as error:
            self.stats.internal_errors += 1
            return ErrorReply(ErrorCode.INTERNAL, str(error))
        assert not isinstance(reply, BatchReply)
        return reply

    def _stats_snapshot(self) -> dict:
        self.stats.gauges = {
            "connections_active": self._connections,
            "writer_queue_depth": sum(self._queued_ops),
            **self.store.stats_snapshot(),
        }
        if self._faults is not None:
            self.stats.gauges.update({
                f"fault_{name}": count
                for name, count in self._faults.fired_counts().items()
            })
        return self.stats.snapshot()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._connections >= self.config.max_connections:
            self.stats.connections_rejected += 1
            try:
                await write_frame(
                    writer,
                    encode_reply(
                        ErrorReply(
                            ErrorCode.BUSY,
                            f"connection limit {self.config.max_connections} "
                            "reached",
                        )
                    ),
                )
            except (ConnectionError, OSError):
                pass
            writer.close()
            return
        self._connections += 1
        self.stats.connections_opened += 1
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, OSError):
            pass  # peer went away; nothing to answer
        finally:
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # swallowing cancellation here is deliberate: the handler is
                # already tearing down, and letting it escape makes the
                # stream-protocol callback log a spurious traceback
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                body = await read_frame(reader, self.config.max_frame_bytes)
            except ProtocolError as error:
                # framing is lost; answer once and hang up
                self.stats.bad_frames += 1
                await write_frame(
                    writer,
                    encode_reply(ErrorReply(ErrorCode.TOO_LARGE, str(error))),
                )
                return
            if not body:
                return  # clean EOF
            reply = await self._answer(body)
            # injected frame faults (drop/corrupt) apply to replies only:
            # a dropped reply models an ack lost in flight, which is what
            # client retry/idempotency must survive
            await write_frame(writer, encode_reply(reply), faults=self._faults)

    async def _answer(self, body: bytes) -> Reply:
        try:
            request = decode_request(body)
        except ProtocolError as error:
            self.stats.bad_frames += 1
            return ErrorReply(ErrorCode.BAD_REQUEST, str(error))
        self.stats.requests += 1
        try:
            return await asyncio.wait_for(
                self._handle_request(request), self.config.request_timeout
            )
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return ErrorReply(
                ErrorCode.TIMEOUT,
                f"request exceeded {self.config.request_timeout}s",
            )
        except Exception as error:
            self.stats.internal_errors += 1
            return ErrorReply(ErrorCode.INTERNAL, str(error))
