"""Sharded log-structured store: the backend behind the TCP server.

Each shard is an independent :class:`~repro.apps.kvstore.LogStructuredStore`
(its own value log and resizable McCuckoo index), and keys are routed with
the same salt-keyed :class:`~repro.core.sharded.ShardRouter` the in-process
:class:`~repro.core.sharded.ShardedMcCuckoo` uses.  The server gives every
shard exactly one writer task, which is what makes this composition honor
the paper's one-writer-many-readers model (§III.H): mutations on a shard
are serialized through its queue while lookups on any shard run freely.

The store itself is synchronous and single-threaded; all concurrency
control lives in the server's queueing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..apps.kvstore import LogStructuredStore, RecoveryReport
from ..core.engine import EngineConfig, EngineLike
from ..core.errors import ConfigurationError
from ..core.results import InsertStatus
from ..core.sharded import ShardRouter
from ..faults import FaultPlan
from ..hashing import KeyLike, canonical_key

_MISSING = object()


class ShardedLogStore:
    """N independent log-structured stores behind one key-routed facade.

    With ``durable=True`` each shard keeps a serialized log image (the
    crash-recovery source of truth) and, when a ``faults`` plan is given,
    consults it at every append/fsync boundary.  A shard that crashes can
    be rebuilt in place from its image via :meth:`crash_and_recover`.

    ``owned`` restricts the facade to a disjoint *slice* of the shard
    space: only the listed shard indices are instantiated, and routing a
    key owned by another slice raises.  Worker processes use this to host
    their shard group under the same ``(n_shards, seed)`` routing — and
    therefore the same per-shard seeds and capacities — as the
    whole-keyspace store they collectively replace.
    """

    def __init__(
        self,
        n_shards: int = 4,
        expected_items: int = 4096,
        seed: int = 0,
        durable: bool = False,
        faults: Optional[FaultPlan] = None,
        owned: Optional[List[int]] = None,
        engine: EngineLike = "auto",
        kick_policy: Optional[str] = None,
    ) -> None:
        if expected_items <= 0:
            raise ConfigurationError("expected_items must be positive")
        self._router = ShardRouter(n_shards, seed=seed)
        self._seed = seed
        self.kick_policy = kick_policy
        # The serving layer defaults to "auto": NumPy kernels when the
        # extra is installed, the pure-Python engine otherwise.  Library
        # tables keep "python" as their default; a server opts the whole
        # store in at one place.
        self.engine = EngineConfig.coerce(engine)
        self._engine_numpy = self.engine.resolve() == "numpy"
        self._engine_min_batch = self.engine.min_batch
        self._durable = durable or faults is not None
        self._faults = faults
        self._per_shard = max(64, expected_items // n_shards)
        self.recovery_reports: List[RecoveryReport] = []
        """One entry per completed :meth:`crash_and_recover`, oldest first."""
        if owned is None:
            self.owned = tuple(range(n_shards))
        else:
            self.owned = tuple(sorted(set(owned)))
            if self.owned and not (
                0 <= self.owned[0] and self.owned[-1] < n_shards
            ):
                raise ConfigurationError(
                    f"owned shards {owned} out of range for {n_shards} shards"
                )
        owned_set = set(self.owned)
        self._shards: List[Optional[LogStructuredStore]] = [
            self._make_shard(index) if index in owned_set else None
            for index in range(n_shards)
        ]

    def _make_shard(self, index: int) -> LogStructuredStore:
        return LogStructuredStore(
            expected_items=self._per_shard,
            seed=self._seed + 101 * index + 1,
            durable=self._durable,
            faults=self._faults,
            shard_id=index,
            engine=self.engine,
            kick_policy=self.kick_policy,
        )

    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._router.n_shards

    @property
    def shards(self) -> List[LogStructuredStore]:
        """The owned shard stores (the full list when nothing is sliced)."""
        return [shard for shard in self._shards if shard is not None]

    def shard_index(self, key: KeyLike) -> int:
        return self._router.shard_of(canonical_key(key))

    def shard(self, index: int) -> LogStructuredStore:
        """The owned shard store at ``index``; raises for foreign shards."""
        store = self._shards[index]
        if store is None:
            raise ConfigurationError(
                f"shard {index} is not owned by this store slice"
            )
        return store

    def shard_for(self, key: KeyLike) -> LogStructuredStore:
        return self.shard(self.shard_index(key))

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # ------------------------------------------------------------------
    # operations (synchronous; the server serializes writes per shard)
    # ------------------------------------------------------------------

    def get(self, key: KeyLike) -> Optional[Any]:
        """The stored value, or None if absent (empty values are `b""`)."""
        value = self.shard_for(key).get(key, _MISSING)
        return None if value is _MISSING else value

    def get_many(self, keys: List[KeyLike]) -> List[Optional[Any]]:
        """Batched :meth:`get`: group keys by shard, run each shard's run
        through its store's bulk kernel, and reassemble in input order."""
        positions: List[List[int]] = [[] for _ in self._shards]
        grouped: List[List[KeyLike]] = [[] for _ in self._shards]
        if self._engine_numpy and len(keys) >= self._engine_min_batch:
            ks = [canonical_key(key) for key in keys]
            shards = self._router.shard_of_many(ks, use_numpy=True)
            for pos, (k, shard) in enumerate(zip(ks, shards)):
                positions[shard].append(pos)
                grouped[shard].append(k)
        else:
            for pos, key in enumerate(keys):
                shard = self._router.shard_of(canonical_key(key))
                positions[shard].append(pos)
                grouped[shard].append(key)
        out: List[Optional[Any]] = [None] * len(keys)
        for shard, shard_keys in enumerate(grouped):
            if not shard_keys:
                continue
            values = self.shard(shard).get_many(shard_keys, default=_MISSING)
            for pos, value in zip(positions[shard], values):
                out[pos] = None if value is _MISSING else value
        return out

    def get_many_u64(self, keys_u64: Any) -> List[Optional[Any]]:
        """Batched get over an already-canonical ``uint64`` key array.

        The zero-copy transport path: a worker hands the BATCH key run
        here as a NumPy view straight over its shared-memory ring slot,
        the array is shard-routed with one vectorized pass
        (:meth:`~repro.core.sharded.ShardRouter.shard_of_array`), and the
        per-shard subarrays feed the index kernels without a list
        round-trip.  Callers must hold the NumPy engine (the worker gates
        on ``engine.use_numpy``).
        """
        from .._numpy import numpy_or_none

        np = numpy_or_none()
        shards = self._router.shard_of_array(keys_u64)
        out: List[Optional[Any]] = [None] * len(keys_u64)
        matched = 0
        for shard in self.owned:
            mask = shards == shard
            if not mask.any():
                continue
            idx = np.nonzero(mask)[0]
            matched += len(idx)
            values = self.shard(shard).get_many_u64(keys_u64[idx], default=_MISSING)
            for pos, value in zip(idx.tolist(), values):
                out[pos] = None if value is _MISSING else value
        if matched != len(out):
            raise ConfigurationError(
                "key run contains keys routed to shards outside this slice"
            )
        return out

    def put(self, key: KeyLike, value: Any) -> "PutResult":
        outcome = self.shard_for(key).put(key, value)
        return PutResult(
            created=outcome.status is not InsertStatus.UPDATED,
            kicks=outcome.kicks,
            stashed=outcome.stashed,
        )

    def delete(self, key: KeyLike) -> bool:
        return self.shard_for(key).delete(key)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------

    @property
    def durable(self) -> bool:
        return self._durable

    def crash_and_recover(self, shard: int) -> RecoveryReport:
        """Rebuild one crashed shard from its durable log image, in place.

        The crashed store's in-memory index may be ahead of its log (the
        very thing an injected crash models), so it is discarded wholesale:
        a fresh store is recovered from the bytes that reached the image —
        truncating any torn tail — and swapped into the shard slot.  The
        dead incarnation's checkpoint slot rides along: when it validates
        against the image, recovery restores the checkpointed index and
        replays only the tail.  Only meaningful for durable stores.
        """
        crashed = self.shard(shard)
        return self.load_shard_from_bytes(
            shard, crashed.log_bytes, checkpoint=crashed.checkpoint_bytes
        )

    # ------------------------------------------------------------------
    # dynamic ownership (live resharding)
    # ------------------------------------------------------------------

    def adopt_shard(
        self, shard: int, data: bytes = b"", checkpoint: Optional[bytes] = None
    ) -> Optional[RecoveryReport]:
        """Take ownership of a previously-foreign shard slot.

        The migration target (and a lazily-promoted read replica) calls
        this to start hosting a shard mid-flight: with ``data`` the shard
        is recovered from the streamed log image exactly as a crashed
        shard would be; without it a fresh empty shard is instantiated.
        Adopting an already-owned shard is a :class:`ConfigurationError`
        — ownership is exclusive, and a double-adopt means two writers.
        """
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard {shard} out of range for {self.n_shards} shards"
            )
        if self._shards[shard] is not None:
            raise ConfigurationError(f"shard {shard} is already owned")
        self._shards[shard] = self._make_shard(shard)
        self.owned = tuple(sorted(set(self.owned) | {shard}))
        if data:
            return self.load_shard_from_bytes(shard, data, checkpoint=checkpoint)
        return None

    def release_shard(self, shard: int) -> None:
        """Drop ownership of a shard (the migration source, post-flip).

        The shard store is discarded wholesale; routing a key here
        afterwards raises, exactly as for any foreign shard.  Callers
        must have stopped directing traffic at this slice first (the
        coordinator flips routing before releasing).
        """
        self.shard(shard)  # ownership check
        self._shards[shard] = None
        self.owned = tuple(s for s in self.owned if s != shard)

    def load_shard_from_bytes(
        self, shard: int, data: bytes, checkpoint: Optional[bytes] = None
    ) -> RecoveryReport:
        """Replace an owned shard with one recovered from serialized log
        bytes.  Worker processes use this after a *process* death, where
        the surviving bytes come from the shard's on-disk log file rather
        than the dead incarnation's in-memory image.  ``checkpoint`` is an
        optional checkpoint artifact; an invalid/torn/stale one is ignored
        (full replay) and flagged in the returned report."""
        self.shard(shard)  # ownership check
        recovered = LogStructuredStore.recover_with_checkpoint(
            data,
            checkpoint,
            expected_items=self._per_shard,
            seed=self._seed + 101 * shard + 1,
            durable=True,
            faults=self._faults,
            shard_id=shard,
            engine=self.engine,
            kick_policy=self.kick_policy,
        )
        self._shards[shard] = recovered
        report = recovered.recovery_report
        assert report is not None
        self.recovery_reports.append(report)
        return report

    # ------------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, float]:
        """Index- and log-level gauges for the STATS verb."""
        items = len(self)
        shards = self.shards
        log_records = sum(shard.log_records for shard in shards)
        stash = 0
        capacity = 0
        for shard in shards:
            index = shard.index
            capacity += index.capacity
            for table in (index.active_table, index.retiring_table):
                if table is not None and table.stash is not None:
                    stash += len(table.stash)
        loads = [shard.index.load_ratio for shard in shards]
        mean_load = sum(loads) / len(loads) if loads else 0.0
        log_bytes = sum(shard.log_size for shard in shards)
        ages = [shard.last_checkpoint_age_s for shard in shards]
        return {
            "store_items": items,
            "store_log_records": log_records,
            "store_garbage_ratio": round(
                1.0 - items / log_records if log_records else 0.0, 6
            ),
            "store_log_bytes": log_bytes,
            "store_dead_bytes": sum(shard.dead_bytes for shard in shards),
            "store_compactions": sum(shard.compactions for shard in shards),
            "store_checkpoints": sum(shard.checkpoints for shard in shards),
            "store_last_checkpoint_age_s": round(max(ages) if ages else -1.0, 6),
            "index_capacity": capacity,
            "index_load_ratio": round(mean_load, 6),
            "index_imbalance": round(
                max(loads) / mean_load if mean_load else 1.0, 6
            ),
            "index_stash_population": stash,
        }


class PutResult:
    """What the serving layer needs to know about one accepted write."""

    __slots__ = ("created", "kicks", "stashed")

    def __init__(self, created: bool, kicks: int, stashed: bool) -> None:
        self.created = created
        self.kicks = kicks
        self.stashed = stashed
