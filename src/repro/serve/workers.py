"""Multi-process shard-parallel serving: frontend, workers, supervisor.

:class:`WorkerServer` keeps the asyncio frontend of
:class:`~repro.serve.server.McCuckooServer` — connection accept, framing,
timeouts, backpressure — but executes every GET/PUT/DELETE in one of N
**shard worker processes**, each owning a disjoint shard group of the
keyspace (``shard % n_workers == worker``, see
:func:`repro.core.sharded.shards_of_worker`).  Each worker hosts its
group's :class:`~repro.serve.store.ShardedLogStore` slice — tables,
durable logs, apply loop — so shards on different workers execute truly
in parallel across cores instead of time-slicing one GIL.

Topology and transport::

    client ──TCP──▶ frontend (asyncio, routing, supervision)
                       │ per worker: SPSC shm ring pair + pipe doorbell
                       │ (or socketpair fallback), CRC'd frames, pipelined
                       ├──▶ worker 0: shards {0, N, 2N, ...}
                       ├──▶ worker 1: shards {1, N+1, ...}
                       └──▶ ...

* **IPC framing** reuses the wire codec's CRC'd envelope; the body is
  ``u32 req_id + u8 kind + payload``.  ``REQUEST`` payloads are ordinary
  protocol request/reply bodies (magic included), ``CONTROL`` payloads
  are JSON (handshake, stats, disarm, ping, stop), and ``BATCH_KEYS``
  payloads are raw little-endian u64 key runs (all-GET batch runs) that
  the worker reads as a **zero-copy NumPy view** straight off the
  transport buffer.
* **Transports**: ``ServerConfig.transport`` picks ``"shm"`` (a
  :class:`~repro.serve.shm.ShmTransport` ring pair per worker — one
  memcpy per frame, no kernel round trip) or ``"socket"`` (the original
  socketpair framing, the fallback on platforms without
  ``multiprocessing.shared_memory``); ``"auto"`` resolves per platform.
  Both transports carry the identical CRC'd bodies, so the protocol
  codecs, fault consult sites, and the faultgen audit are
  transport-agnostic.
* **Pipelining**: the frontend tags every in-flight op with a request id,
  so one worker connection carries many outstanding ops; replies resolve
  futures by id.  A BATCH is forwarded as *one* IPC frame per worker run
  (the ops a worker owns, in batch order), mirroring the single-process
  server's one-queue-item-per-shard-run discipline.
* **Ordering**: a worker applies frames strictly FIFO, so per-worker —
  and therefore per-shard and per-key — operations retain the frontend's
  send order.  That is exactly the one-writer-per-shard total order the
  single-process server provides, which keeps the faultgen audit model
  sound in worker mode.
* **Supervision**: a worker that dies (e.g. the ``kill_worker`` fault
  rule's ``os._exit`` before an ack) fails its in-flight ops with
  ``UNAVAILABLE`` (outcome unknown; idempotent clients retry), and the
  supervisor forks a replacement that replays the worker's durable log
  files through :meth:`LogStructuredStore.recover_from_bytes` before
  re-registering — other workers' traffic never stops.  While the
  replacement boots, its shards answer BUSY.
* **Stats**: STATS merges the frontend's counters with every worker's
  (collected over CONTROL), plus per-worker gauges — ``worker<i>_up``,
  ``worker<i>_pending_ops``, ``worker<i>_ops_routed``,
  ``worker<i>_restarts`` — and the ``worker_restarts`` total.

Fault injection in worker mode re-parses the plan spec per process (the
frontend consults dispatch/frame sites; each worker consults its stores'
append sites, write delays, and the ``kill_worker`` site), so a count
rule like ``crash_after_appends=N`` triggers per worker process.  A
worker about to die from ``kill_worker`` emits a last-gasp CONTROL event
carrying its counters so fired-fault accounting survives the kill; the
doomed op's ack is still never sent.  Last-gasp delivery is best-effort:
if the frontend writes to the socketpair after the child has exited, the
transport error can surface on the shared stream before the buffered
gasp is drained, so ``worker_restarts`` — not absorbed fired counts — is
the authoritative death count.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import socket
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .._numpy import numpy_or_none
from ..core.errors import ConfigurationError, ReproError
from ..core.sharded import (
    RoutingTable, ShardRouter, shards_of_worker, worker_of_shard,
)
from ..faults import FaultPlan, InjectedCrash
from ..maintenance import MaintenanceConfig, MaintenanceDaemon
from .protocol import (
    FRAME_OVERHEAD,
    KEY_RUN_COUNT,
    BatchReply,
    BatchRequest,
    DeleteReply,
    DeleteRequest,
    ErrorCode,
    ErrorReply,
    FenceFrame,
    GetRequest,
    MigrateFrame,
    ProtocolError,
    PutReply,
    PutRequest,
    Reply,
    ReplicaFrame,
    Request,
    SimpleReply,
    StatsReply,
    StatsRequest,
    ValueReply,
    decode_key_run,
    decode_key_run_header,
    decode_migration_frame,
    decode_reply,
    decode_request,
    encode_fence,
    encode_key_run,
    encode_migrate,
    encode_replica,
    encode_reply,
    encode_request,
    read_frame,
)
from .server import McCuckooServer, ServerConfig
from .shared_image import (
    ImageLayout,
    ShardImagePublisher,
    SharedImageReader,
    SharedIndexImage,
    resolve_read_path,
)
from .shm import (
    DEFAULT_RING_BYTES,
    RingFrameTooLarge,
    RingFullError,
    ShmTransport,
    resolve_transport,
    ring_doorbell,
    wait_doorbell,
)
from .stats import ServeStats
from .store import ShardedLogStore

_IPC_HEAD = struct.Struct(">IB")
_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")

KIND_REQUEST = 0
KIND_CONTROL = 1
#: an all-GET batch run as a raw little-endian u64 key array — the
#: zero-copy fast path (see :func:`repro.serve.protocol.encode_key_run`)
KIND_BATCH_KEYS = 2
#: a MIGRATE/FENCE/REPLICA body (:func:`repro.serve.protocol.
#: decode_migration_frame`) — live-resharding and replica traffic rides
#: the same CRC'd IPC envelope on both transports
KIND_MIGRATE = 3

#: u64 log-byte marks inside migration payloads (source-log coordinates)
_MARK = struct.Struct(">Q")

#: req_id 0 is reserved for unsolicited worker → frontend CONTROL events
#: (the hello handshake and the dying last-gasp).
EVENT_ID = 0

#: worker counters the frontend folds into a merged STATS snapshot
_MERGED_COUNTERS = (
    "gets", "get_hits", "get_misses",
    "puts", "put_creates", "put_updates", "put_kicks", "put_stashed",
    "deletes", "delete_hits", "delete_misses",
    "injected_crashes", "shard_recoveries", "replica_applies",
)


class WorkerDiedError(ReproError):
    """The worker process died with this op in flight; outcome unknown."""


class WorkerUnavailableError(ReproError):
    """The op's worker is down and its replacement is still booting."""


class MigrationError(ReproError):
    """A migration phase step failed on the worker side (the coordinator
    aborts or — post-commit — skips the best-effort cleanup step)."""


# ----------------------------------------------------------------------
# IPC envelope (shared by both sides)
# ----------------------------------------------------------------------


def pack_ipc(req_id: int, kind: int, payload: bytes) -> bytes:
    """One CRC'd IPC frame: len + crc + (req_id + kind + payload)."""
    body = _IPC_HEAD.pack(req_id, kind) + payload
    return _LEN.pack(len(body)) + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF) + body


def unpack_ipc(body: bytes) -> Tuple[int, int, bytes]:
    if len(body) < _IPC_HEAD.size:
        raise ProtocolError(f"IPC body of {len(body)} bytes is too short")
    req_id, kind = _IPC_HEAD.unpack_from(body, 0)
    return req_id, kind, body[_IPC_HEAD.size:]


def _read_frame_sync(stream, max_bytes: int) -> bytes:
    """Blocking counterpart of :func:`repro.serve.protocol.read_frame`;
    returns ``b""`` on clean EOF."""
    prefix = stream.read(FRAME_OVERHEAD)
    if not prefix:
        return b""
    if len(prefix) < FRAME_OVERHEAD:
        raise ProtocolError("truncated IPC frame prefix")
    (length,) = _LEN.unpack_from(prefix, 0)
    (expected_crc,) = _CRC.unpack_from(prefix, _LEN.size)
    if length > max_bytes:
        raise ProtocolError(f"IPC frame of {length} bytes exceeds {max_bytes}")
    body = stream.read(length)
    if len(body) < length:
        raise ProtocolError("truncated IPC frame body")
    if (zlib.crc32(body) & 0xFFFFFFFF) != expected_crc:
        raise ProtocolError("IPC frame CRC mismatch")
    return body


# ----------------------------------------------------------------------
# worker child process
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its shard slice.

    Derived from the frontend's :class:`ServerConfig` so a restarted
    worker rebuilds *identical* per-shard seeds and capacities — routing
    stability across restarts falls out of this, not of any state
    carried over the IPC link.
    """

    worker_id: int
    n_workers: int
    n_shards: int
    expected_items: int
    seed: int
    durable: bool
    write_stall: float
    max_ipc_bytes: int
    fault_spec: Optional[str] = None
    fault_seed: int = 0
    armed: bool = True
    log_dir: Optional[str] = None
    compact_at: float = -1.0
    compact_min_records: int = 128
    checkpoint_every: int = 0
    transport: str = "socket"
    epoch: int = 1
    """This incarnation's generation: every shm ring slot is stamped with
    it, and slots from other generations are discarded on pop — a
    restarted worker can never replay a dead predecessor's request.
    Distinct from the *routing* epoch stamped into migration frames."""
    owned_shards: Optional[Tuple[int, ...]] = None
    """The shard group this worker owns, per the frontend's routing table
    at spawn time.  ``None`` means the static round-robin assignment
    (routing epoch 0); after a live migration the pool passes the
    reassigned group explicitly, so a restarted worker re-hosts the
    shards it actually owns — including migrated-in ones."""
    replica_shards: Tuple[int, ...] = ()
    """Shards this worker hosts as read-only replicas (shadow copies fed
    by forwarded writes; never log-sinked — the owner's durable file
    stays the single on-disk authority)."""
    kick_policy: Optional[str] = None
    """Victim-selection policy (registry name) for the shard indexes;
    travels as a string so the spec stays picklable and every restarted
    worker builds a fresh policy instance per shard."""

    @property
    def shards(self) -> Tuple[int, ...]:
        if self.owned_shards is not None:
            return self.owned_shards
        return shards_of_worker(self.worker_id, self.n_shards, self.n_workers)

    @property
    def maintenance_enabled(self) -> bool:
        return self.compact_at >= 0.0 or self.checkpoint_every > 0

    def log_path(self, shard: int) -> str:
        assert self.log_dir is not None
        return os.path.join(self.log_dir, f"shard-{shard}.log")

    def ckpt_path(self, shard: int) -> str:
        assert self.log_dir is not None
        return os.path.join(self.log_dir, f"shard-{shard}.ckpt")


def _child_entry(spec: WorkerSpec, child_sock, parent_sock,
                 image: Optional[SharedIndexImage] = None) -> None:
    parent_sock.close()
    code = 1
    try:
        channel = _SocketWorkerChannel(child_sock, spec.max_ipc_bytes)
        code = _ShardWorker(spec, channel, image=image).run()
    except BaseException:
        code = 1
    finally:
        # _exit: never run the frontend's inherited atexit/loop teardown
        os._exit(code)


def _child_entry_shm(
    spec: WorkerSpec, shm: ShmTransport, door_rfd: int, door_wfd: int,
    close_fds: Tuple[int, ...],
    image: Optional[SharedIndexImage] = None,
) -> None:
    # the fork duplicated the frontend's doorbell ends too; close them so
    # this process's death is observable as pipe EOF on both sides
    for fd in close_fds:
        try:
            os.close(fd)
        except OSError:
            pass
    code = 1
    try:
        channel = _ShmChildChannel(shm, spec.epoch, door_rfd, door_wfd)
        code = _ShardWorker(spec, channel, image=image).run()
    except BaseException:
        code = 1
    finally:
        os._exit(code)


class _SocketWorkerChannel:
    """Child side of the socketpair fallback: blocking CRC'd framing."""

    def __init__(self, sock: socket.socket, max_bytes: int) -> None:
        self._in = sock.makefile("rb")
        self._out = sock.makefile("wb")
        self._max_bytes = max_bytes

    def recv(self) -> Optional[Tuple[int, int, bytes]]:
        """The next ``(req_id, kind, payload)``, or ``None`` on EOF."""
        body = _read_frame_sync(self._in, self._max_bytes)
        if not body:
            return None
        return unpack_ipc(body)

    def send(self, req_id: int, kind: int, payload: bytes,
             block: bool = True) -> None:
        self._out.write(pack_ipc(req_id, kind, payload))
        self._out.flush()

    def done(self) -> None:
        """Release the last received frame (no-op: recv already copied)."""


class _ShmChildChannel:
    """Child side of the shm transport: pop requests, push responses.

    ``recv`` hands ``BATCH_KEYS`` payloads out as a **memoryview aliasing
    ring memory** — the caller must finish consuming it (the NumPy view
    feeds the lookup kernel synchronously) before ``done()`` releases the
    slot back to the producer.  ``REQUEST``/``CONTROL`` payloads are
    copied to ``bytes`` at recv time instead, because decoded values
    (e.g. ``PutRequest.value``) outlive the slot.
    """

    #: bound on a blocking response push; exceeding it means the frontend
    #: stopped draining (it is gone, or wedged beyond saving)
    SEND_DEADLINE_S = 10.0

    def __init__(self, shm: ShmTransport, epoch: int,
                 door_rfd: int, door_wfd: int) -> None:
        self._requests = shm.request
        self._responses = shm.response
        self._epoch = epoch
        self._door_rfd = door_rfd
        self._door_wfd = door_wfd
        self._ppid = os.getppid()
        self._hold = False

    def recv(self) -> Optional[Tuple[int, int, Any]]:
        assert not self._hold, "previous BATCH_KEYS slot was never released"
        while True:
            record = self._requests.pop()  # ProtocolError on a torn write
            if record is not None:
                epoch, view = record
                if epoch != self._epoch:
                    # another generation's slot: count it and never apply
                    self._requests.note_stale()
                    self._requests.advance()
                    continue
                req_id, kind = _IPC_HEAD.unpack_from(view, 0)
                payload: Any = view[_IPC_HEAD.size:]
                if kind == KIND_BATCH_KEYS:
                    self._hold = True  # zero-copy: released by done()
                else:
                    payload = bytes(payload)
                    self._requests.advance()
                return req_id, kind, payload
            state = wait_doorbell(self._door_rfd, 1.0)
            if state == "eof":
                return None  # frontend closed its doorbell end
            if state == "timeout" and os.getppid() != self._ppid:
                return None  # frontend died without closing the pipe

    def done(self) -> None:
        if self._hold:
            self._requests.advance()
            self._hold = False

    def send(self, req_id: int, kind: int, payload: bytes,
             block: bool = True) -> None:
        body = _IPC_HEAD.pack(req_id, kind) + payload
        deadline = time.monotonic() + self.SEND_DEADLINE_S
        while not self._responses.try_push(body, self._epoch):
            if not block:
                return  # best-effort (the dying last-gasp)
            if os.getppid() != self._ppid or time.monotonic() > deadline:
                raise BrokenPipeError(
                    "frontend is gone; response ring is not draining"
                )
            time.sleep(0.0005)
        ring_doorbell(self._door_wfd)


class _ShardWorker:
    """Synchronous FIFO apply loop owning one shard group (child side)."""

    def __init__(self, spec: WorkerSpec, channel,
                 image: Optional[SharedIndexImage] = None) -> None:
        self.spec = spec
        self._channel = channel
        self.stats = ServeStats()
        self.faults = (
            FaultPlan.parse(spec.fault_spec, seed=spec.fault_seed)
            if spec.fault_spec else None
        )
        if self.faults is not None and not spec.armed:
            self.faults.disarm()
        self._sinks: Dict[int, Any] = {}
        self.recovered_shards: List[int] = []
        self.recovered_records = 0
        #: shards mid-migration away from this worker — maintenance is
        #: suspended for them so ``log_bytes`` stays append-only and the
        #: coordinator's delta marks remain valid byte offsets
        self._migrating_out: set = set()
        #: shard → {"buffer": bytearray, "checkpoint": bytes} for shards
        #: mid-migration *into* this worker (see ``_migrate_apply``)
        self._inbound: Dict[int, Dict[str, Any]] = {}
        owned = sorted(set(spec.shards) | set(spec.replica_shards))
        self.store = ShardedLogStore(
            n_shards=spec.n_shards,
            expected_items=spec.expected_items,
            seed=spec.seed,
            durable=spec.durable,
            faults=self.faults,
            owned=owned,
            kick_policy=spec.kick_policy,
        )
        self.daemon: Optional[MaintenanceDaemon] = None
        if spec.maintenance_enabled:
            self.daemon = MaintenanceDaemon(
                MaintenanceConfig(
                    compact_at=spec.compact_at,
                    compact_min_records=spec.compact_min_records,
                    checkpoint_every=spec.checkpoint_every,
                ),
                interrupt=self._maintenance_interrupt,
                checkpoint_writer=(
                    self._write_checkpoint_file
                    if spec.durable and spec.log_dir is not None
                    else None
                ),
            )
            if spec.durable and spec.log_dir is not None:
                self.daemon.set_commit_hook(self._on_compaction_commit)
        if spec.durable and spec.log_dir is not None:
            for shard in spec.shards:
                self._open_shard_log(shard)
        #: shards whose index image this worker exports (owned, non-replica;
        #: migrations add/remove membership at their commit points)
        self._publishable = set(spec.shards)
        self.publisher: Optional[ShardImagePublisher] = None
        if image is not None:
            stall = (self.faults.publish_stall
                     if self.faults is not None else None)
            self.publisher = ShardImagePublisher(image, stall_hook=stall)
            # Publish before the hello handshake: by the time the frontend
            # routes any request here, every recovered shard is exported.
            for shard in spec.shards:
                self._publish_shard(shard)

    def _publish_shard(self, shard: int) -> None:
        """Export one owned shard's image; never raises into the op path.

        A publish that dies mid-bracket leaves the region's seqlock
        version odd, which readers treat as permanent churn and fall back
        — degraded throughput, never a torn read.
        """
        if self.publisher is None or shard not in self._publishable:
            return
        try:
            self.publisher.publish(shard, self.store.shard(shard))
        except Exception:
            self.stats.internal_errors += 1

    # ------------------------------------------------------------------
    # durable log files
    # ------------------------------------------------------------------

    def _open_shard_log(self, shard: int) -> None:
        """(Re)build one shard from its on-disk log, then mirror into it.

        A non-empty log file means a previous incarnation of this worker
        died; replay it through the recovery path — restoring the shard's
        checkpoint file first when one validates, so only the tail is
        replayed.  Either way the file is rewritten with the surviving
        image and attached as the shard's live sink.
        """
        path = self.spec.log_path(shard)
        ckpt_path = self.spec.ckpt_path(shard)
        data = b""
        checkpoint: Optional[bytes] = None
        if os.path.exists(path):
            with open(path, "rb") as handle:
                data = handle.read()
        if os.path.exists(ckpt_path):
            with open(ckpt_path, "rb") as handle:
                checkpoint = handle.read()
        if data:
            report = self.store.load_shard_from_bytes(
                shard, data, checkpoint=checkpoint
            )
            self.recovered_shards.append(shard)
            self.recovered_records += report.records_replayed
            self.stats.shard_recoveries += 1
            if report.checkpoint_invalid and checkpoint is not None:
                # Torn/stale artifact: the full replay just rewrote the
                # image, so the file can never validate again — drop it.
                try:
                    os.unlink(ckpt_path)
                except OSError:
                    pass
        elif checkpoint is not None:
            # A checkpoint without log bytes cannot validate; drop it.
            try:
                os.unlink(ckpt_path)
            except OSError:
                pass
        self._attach_sink(shard)

    def _attach_sink(self, shard: int) -> None:
        old = self._sinks.pop(shard, None)
        if old is not None:
            old.close()
        sink = open(self.spec.log_path(shard), "wb")
        self._sinks[shard] = sink
        self.store.shard(shard).attach_log_sink(sink)

    # ------------------------------------------------------------------
    # maintenance (compaction + checkpoints), ticked after each write
    # ------------------------------------------------------------------

    def _last_gasp_exit(self, code: int) -> None:
        """Emit the dying event (best-effort) and hard-exit the process."""
        try:
            self._send_event({
                "event": "dying",
                "worker": self.spec.worker_id,
                "counters": self.stats.snapshot(),
                "faults": (self.faults.fired_counts()
                           if self.faults is not None else {}),
            }, block=False)
        except Exception:
            pass
        os._exit(code)

    def _maintenance_interrupt(self, site: str, shard: int) -> None:
        """Per-record compaction hook: honour ``kill_worker_during``.

        Dying here leaves the on-disk shard file untouched (compaction
        commits via atomic rename only after every record is copied), so
        the restarted worker recovers the exact pre-compaction state.
        """
        if self.faults is not None and self.faults.should_kill_maintenance(
                site, self.spec.worker_id):
            self._last_gasp_exit(24)

    def _write_checkpoint_file(self, shard: int, artifact: bytes) -> None:
        """Persist a checkpoint by overwriting the shard's single slot.

        Deliberately NOT write-temp-then-rename: the checkpoint file
        models an overwrite-in-place slot so that dying mid-write (the
        ``kill_worker_during=checkpoint`` rule) leaves a torn artifact on
        disk — which recovery must then reject by CRC and fall back to a
        full log replay.
        """
        half = len(artifact) // 2
        with open(self.spec.ckpt_path(shard), "wb") as handle:
            handle.write(artifact[:half])
            handle.flush()
            if self.faults is not None and self.faults.should_kill_maintenance(
                    "checkpoint", self.spec.worker_id):
                self._last_gasp_exit(24)
            handle.write(artifact[half:])
            handle.flush()

    def _on_compaction_commit(self, store) -> None:
        """Swap the on-disk shard log for the compacted image, atomically.

        The compacted image goes to a temp file first and ``os.replace``
        publishes it, so a kill at any point leaves either the complete
        old log or the complete new one — never a mix.  The old checkpoint
        file can no longer validate (its prefix CRC hashed the old image),
        so it is dropped; the daemon takes a fresh checkpoint right after.
        """
        shard = store.shard_id
        path = self.spec.log_path(shard)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(store.log_bytes)
            handle.flush()
        os.replace(tmp, path)
        try:
            os.unlink(self.spec.ckpt_path(shard))
        except OSError:
            pass
        old = self._sinks.pop(shard, None)
        if old is not None:
            old.close()
        sink = open(path, "ab")
        self._sinks[shard] = sink
        store.attach_log_sink(sink, already_synced=True)

    def _run_maintenance(self, shard: int) -> None:
        """One daemon tick after an applied write.

        The write that triggered this tick is already durable in the
        shard's log file, so an injected maintenance crash never costs an
        acknowledged write: the shard is recovered in place (checkpoint +
        tail when the slot validates) and the ack still goes out.
        """
        if self.daemon is None:
            return
        if shard in self._migrating_out or shard in self._inbound:
            # Mid-migration the log must stay append-only: compaction
            # would rewrite it and invalidate the coordinator's delta
            # marks.  Maintenance resumes once the shard is released
            # (source), activated (target), or the migration aborts.
            return
        try:
            self.daemon.maybe_run(self.store.shard(shard), shard)
        except InjectedCrash:
            self.stats.injected_crashes += 1
            if self.store.durable:
                self.store.crash_and_recover(shard)
                self.stats.shard_recoveries += 1
                if self.spec.log_dir is not None:
                    self._attach_sink(shard)
        except Exception:
            self.stats.internal_errors += 1

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> int:
        self._send_event({
            "event": "hello",
            "worker": self.spec.worker_id,
            "pid": os.getpid(),
            "shards": list(self.spec.shards),
            "replica_shards": list(self.spec.replica_shards),
            "recovered_shards": self.recovered_shards,
            "recovered_records": self.recovered_records,
        })
        while True:
            item = self._channel.recv()
            if item is None:
                return 0  # frontend went away
            req_id, kind, payload = item
            try:
                if kind == KIND_CONTROL:
                    if not self._handle_control(req_id, payload):
                        return 0
                elif kind == KIND_BATCH_KEYS:
                    reply: Reply = self._apply_key_run(payload)
                    self._send(req_id, KIND_REQUEST,
                               encode_reply(reply)[FRAME_OVERHEAD:])
                elif kind == KIND_MIGRATE:
                    try:
                        out = self._handle_migration(
                            decode_migration_frame(bytes(payload)))
                    except Exception as error:
                        # A failed phase step must never wedge the link:
                        # answer with an ErrorReply (KIND_REQUEST) that
                        # WorkerHandle.migrate surfaces as MigrationError.
                        self.stats.internal_errors += 1
                        body = encode_reply(
                            ErrorReply(ErrorCode.INTERNAL, str(error))
                        )[FRAME_OVERHEAD:]
                        self._send(req_id, KIND_REQUEST, body)
                    else:
                        self._send(req_id, KIND_MIGRATE, out)
                else:
                    reply = self._apply(decode_request(payload))
                    self._send(req_id, KIND_REQUEST,
                               encode_reply(reply)[FRAME_OVERHEAD:])
            finally:
                # releases a zero-copy BATCH_KEYS slot; no-op otherwise
                self._channel.done()

    def _send(self, req_id: int, kind: int, payload: bytes) -> None:
        self._channel.send(req_id, kind, payload)

    def _send_event(self, payload: dict, block: bool = True) -> None:
        self._channel.send(EVENT_ID, KIND_CONTROL,
                           json.dumps(payload).encode(), block=block)

    def _handle_control(self, req_id: int, payload: bytes) -> bool:
        """Returns False when the worker should exit (stop command)."""
        command = json.loads(payload.decode())
        cmd = command.get("cmd")
        if cmd == "stats":
            answer = {
                "counters": self.stats.snapshot(),
                "store": self.store.stats_snapshot(),
                "faults": (self.faults.fired_counts()
                           if self.faults is not None else {}),
            }
        elif cmd == "disarm":
            if self.faults is not None:
                self.faults.disarm()
            answer = {"ok": True}
        elif cmd == "ping":
            # FIFO makes this a write barrier: by the time the pong is
            # read, every earlier frame on this link has been applied.
            answer = {"ok": True}
        elif cmd == "stop":
            self._send(req_id, KIND_CONTROL, b'{"ok": true}')
            return False
        else:
            answer = {"error": f"unknown control command {cmd!r}"}
        self._send(req_id, KIND_CONTROL, json.dumps(answer).encode())
        return True

    # ------------------------------------------------------------------
    # live shard migration (worker side)
    # ------------------------------------------------------------------

    def _migration_interrupt(self) -> None:
        """Honour ``kill_worker_during=migration`` at a phase boundary.

        Consulted once per migration frame (abort excluded), in the fixed
        coordinator phase order, so rule count N selects an exact crash
        point: source consults at snapshot=1, delta=2, fence=3, final
        delta=4, release=5; target at install=1, apply=2, final apply=3,
        activate=4.
        """
        if self.faults is not None and self.faults.should_kill_maintenance(
                "migration", self.spec.worker_id):
            self._last_gasp_exit(25)

    def _handle_migration(self, frame) -> bytes:
        if isinstance(frame, FenceFrame):
            if frame.action != "fence":
                raise MigrationError(f"unexpected fence action {frame.action!r}")
            self._migration_interrupt()
            # FIFO drain barrier: by the time this ack is read, every
            # write enqueued before the fence has been applied above.
            return encode_fence(FenceFrame("ack", frame.shard, frame.epoch))
        if isinstance(frame, ReplicaFrame):
            return self._handle_replica(frame)
        assert isinstance(frame, MigrateFrame)
        if frame.phase != "abort":
            self._migration_interrupt()
        handler = {
            "snapshot": self._migrate_snapshot,
            "install": self._migrate_install,
            "delta": self._migrate_delta,
            "apply": self._migrate_apply,
            "activate": self._migrate_activate,
            "release": self._migrate_release,
            "abort": self._migrate_abort,
        }[frame.phase]
        payload = handler(frame.shard, frame.payload)
        return encode_migrate(
            MigrateFrame(frame.phase, frame.shard, frame.epoch, payload))

    # -- source-side phases --------------------------------------------

    def _migrate_snapshot(self, shard: int, payload: bytes) -> bytes:
        """Freeze maintenance for the shard and ship its full log image.

        The returned mark is the image length in bytes; later ``delta``
        requests pass a mark back and receive only the records appended
        since (valid because maintenance — which would rewrite the log —
        is suspended until release/abort).
        """
        self._migrating_out.add(shard)
        data = self.store.shard(shard).log_bytes
        return _MARK.pack(len(data)) + data

    def _migrate_delta(self, shard: int, payload: bytes) -> bytes:
        (mark,) = _MARK.unpack(payload[:_MARK.size])
        data = self.store.shard(shard).log_bytes
        if mark > len(data):
            raise MigrationError(
                f"delta mark {mark} beyond log end {len(data)} "
                f"(shard {shard} log was rewritten mid-migration)"
            )
        return _MARK.pack(len(data)) + data[mark:]

    def _migrate_release(self, shard: int, payload: bytes) -> bytes:
        """Post-commit: drop the shard (the target owns it now).

        The shared image is invalidated *before* the store slot is
        dropped: the frontend already routes the shard to the target (the
        commit-point flip), and marking the source region unservable
        guarantees even a racing reader that snapshotted stale routing
        cannot be served from it past this point.
        """
        self._migrating_out.discard(shard)
        self._publishable.discard(shard)
        if self.publisher is not None:
            self.publisher.forget(shard)
        sink = self._sinks.pop(shard, None)
        if sink is not None:
            sink.close()
        self.store.release_shard(shard)
        return b""

    # -- target-side phases --------------------------------------------

    def _migrate_install(self, shard: int, payload: bytes) -> bytes:
        """Adopt the shard from the snapshot image and prime delta replay.

        The checkpoint is taken against the *target's own* post-recovery
        image (recovery may reduce the source log), and the delta buffer
        starts from that image's bytes: each subsequent ``apply`` appends
        the source tail (records are self-delimiting, so concatenation is
        a valid log) and replays only the tail via the checkpoint.
        """
        data = payload[_MARK.size:]
        self.store.adopt_shard(shard, data)
        target = self.store.shard(shard)
        artifact = target.take_checkpoint()
        self._inbound[shard] = {
            "buffer": bytearray(target.log_bytes),
            "checkpoint": artifact,
        }
        return b""

    def _migrate_apply(self, shard: int, payload: bytes) -> bytes:
        entry = self._inbound.get(shard)
        if entry is None:
            raise MigrationError(f"apply for shard {shard} without install")
        tail = payload[_MARK.size:]
        if tail:
            entry["buffer"].extend(tail)
            self.store.load_shard_from_bytes(
                shard, bytes(entry["buffer"]),
                checkpoint=entry["checkpoint"],
            )
            target = self.store.shard(shard)
            entry["checkpoint"] = target.take_checkpoint()
            entry["buffer"] = bytearray(target.log_bytes)
        return b""

    def _migrate_activate(self, shard: int, payload: bytes) -> bytes:
        """Post-commit: take over the shard's durable file and sink.

        The file swap goes through a temp file + ``os.replace`` (same
        torn-write model as compaction commit) so a kill mid-activate
        leaves either the source's complete image or the target's —
        never a mix.  The source's stale checkpoint file can no longer
        validate against the rewritten image, so it is dropped.
        """
        self._inbound.pop(shard, None)
        # The shard is this worker's now (routing flipped at commit):
        # publish its image so shared reads resume without a ring hop.
        # Until this lands, the target's region reads unservable (all
        # zeros / stale generation) and the frontend falls back — reads
        # degrade through the migration window, they never go stale.
        self._publishable.add(shard)
        self._publish_shard(shard)
        if not (self.spec.durable and self.spec.log_dir is not None):
            return b""
        target = self.store.shard(shard)
        path = self.spec.log_path(shard)
        tmp = path + ".mig"
        with open(tmp, "wb") as handle:
            handle.write(target.log_bytes)
            handle.flush()
        os.replace(tmp, path)
        try:
            os.unlink(self.spec.ckpt_path(shard))
        except OSError:
            pass
        old = self._sinks.pop(shard, None)
        if old is not None:
            old.close()
        sink = open(path, "ab")
        self._sinks[shard] = sink
        target.attach_log_sink(sink, already_synced=True)
        return b""

    def _migrate_abort(self, shard: int, payload: bytes) -> bytes:
        """Roll back either role's in-progress state (idempotent)."""
        self._migrating_out.discard(shard)
        entry = self._inbound.pop(shard, None)
        if (entry is not None and shard in self.store.owned
                and shard not in self.spec.shards
                and shard not in self.spec.replica_shards):
            self._publishable.discard(shard)
            if self.publisher is not None:
                self.publisher.forget(shard)
            sink = self._sinks.pop(shard, None)
            if sink is not None:
                sink.close()
            self.store.release_shard(shard)
        return b""

    # -- read replicas -------------------------------------------------

    def _handle_replica(self, frame) -> bytes:
        if frame.action != "apply":
            raise MigrationError(f"unexpected replica action {frame.action!r}")
        request = decode_request(frame.payload)
        if not isinstance(request, (PutRequest, DeleteRequest)):
            raise MigrationError(
                f"replica apply carries {type(request).__name__}")
        shard = self.store.shard_index(request.key)
        if shard not in self.store.owned:
            # lazily shadow a shard this worker was not spawned with
            # (e.g. routing moved the owner after spawn)
            self.store.adopt_shard(shard)
        if isinstance(request, PutRequest):
            self.store.put(request.key, request.value)
        else:
            self.store.delete(request.key)
        self.stats.replica_applies += 1
        return encode_replica(ReplicaFrame("ack", shard, frame.epoch))

    # ------------------------------------------------------------------
    # op application
    # ------------------------------------------------------------------

    def _apply(self, request: Request) -> Reply:
        if isinstance(request, BatchRequest):
            return BatchReply(tuple(
                self._apply_simple(op) for op in request.ops
            ))
        return self._apply_simple(request)

    def _apply_key_run(self, payload) -> Reply:
        """Serve an all-GET run shipped as a raw u64 key array.

        With the NumPy engine the payload — still sitting in the
        transport buffer — is wrapped as a ``uint64`` view and fed to the
        store's vectorized kernel directly (zero copies, zero per-op
        decode); the pure-Python engine unpacks it into ints and takes
        the ordinary batched get.  Replies are per-op, exactly as if the
        run had arrived as a BATCH of GETs.
        """
        count = decode_key_run_header(payload)
        try:
            np = numpy_or_none()
            if np is not None and self.store.engine.use_numpy(count):
                keys_u64 = np.frombuffer(
                    payload, dtype="<u8", count=count,
                    offset=KEY_RUN_COUNT.size,
                )
                values = self.store.get_many_u64(keys_u64)
            else:
                values = self.store.get_many(decode_key_run(payload))
        except Exception as error:
            self.stats.internal_errors += 1
            return BatchReply(tuple(
                ErrorReply(ErrorCode.INTERNAL, str(error))
                for _ in range(count)
            ))
        replies: List[SimpleReply] = []
        for value in values:
            hit = value is not None
            self.stats.note_get(hit)
            replies.append(
                ValueReply(found=True, value=bytes(value)) if hit
                else ValueReply(found=False)
            )
        return BatchReply(tuple(replies))

    def _apply_simple(self, request) -> SimpleReply:
        try:
            if isinstance(request, GetRequest):
                value = self.store.get(request.key)
                self.stats.note_get(hit=value is not None)
                if value is None:
                    return ValueReply(found=False)
                return ValueReply(found=True, value=bytes(value))
            if isinstance(request, (PutRequest, DeleteRequest)):
                return self._apply_write(request)
            return ErrorReply(
                ErrorCode.BAD_REQUEST,
                f"worker cannot serve {type(request).__name__}",
            )
        except Exception as error:
            self.stats.internal_errors += 1
            return ErrorReply(ErrorCode.INTERNAL, str(error))

    def _apply_write(self, request) -> SimpleReply:
        shard = self.store.shard_index(request.key)
        if self.faults is not None:
            delay = self.faults.writer_delay(shard)
            if delay:
                time.sleep(delay)
        if self.spec.write_stall:
            time.sleep(self.spec.write_stall)
        try:
            if isinstance(request, PutRequest):
                result = self.store.put(request.key, request.value)
                self.stats.note_put(result.created, kicks=result.kicks,
                                    stashed=result.stashed)
                reply: SimpleReply = PutReply(created=result.created)
            else:
                deleted = self.store.delete(request.key)
                self.stats.note_delete(deleted)
                reply = DeleteReply(deleted=deleted)
        except InjectedCrash as error:
            # In-process shard crash: rebuild from the durable image and
            # answer INTERNAL (the write is NOT acknowledged), exactly as
            # the single-process writer loop does.
            self.stats.injected_crashes += 1
            if self.store.durable:
                self.store.crash_and_recover(shard)
                self.stats.shard_recoveries += 1
                if self.spec.log_dir is not None:
                    self._attach_sink(shard)
                # The recovered store is a fresh object with a fresh log;
                # republish so the image tracks the surviving state (the
                # publisher detects the log-identity change and rebuilds
                # its mirror under the seqlock).
                self._publish_shard(shard)
            return ErrorReply(ErrorCode.INTERNAL, str(error))
        if self.faults is not None and self.faults.should_kill_worker(
                self.spec.worker_id):
            # kill_worker: the write IS applied and persisted, but the
            # whole process dies before the ack — the client sees
            # UNAVAILABLE (outcome unknown).  The last-gasp event keeps
            # fired/counter accounting observable without acking the op.
            self._last_gasp_exit(23)
        self._run_maintenance(shard)
        # Publish-before-ack: the image is refreshed before this reply
        # leaves the worker, so a frontend shared read issued after the
        # ack always sees the write (read-your-writes holds).  This also
        # covers a compaction the maintenance tick just committed — the
        # log swap rebuilds the mirror, so the image can never mix old
        # and new log bytes.
        self._publish_shard(shard)
        return reply


# ----------------------------------------------------------------------
# frontend side: handle, pool, server
# ----------------------------------------------------------------------


class WorkerHandle:
    """One live worker process plus its pipelined IPC link.

    The link is either an asyncio socketpair stream (fallback transport)
    or an :class:`~repro.serve.shm.ShmTransport` ring pair plus doorbell
    pipes (``spec.transport == "shm"``); both resolve reply futures by
    request id through the same dispatch.
    """

    def __init__(self, spec: WorkerSpec, on_death, on_event,
                 shm: Optional[ShmTransport] = None,
                 image: Optional[SharedIndexImage] = None) -> None:
        self.spec = spec
        self.worker_id = spec.worker_id
        self._on_death = on_death
        self._on_event = on_event
        self._image = image
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._shm = shm
        self._epoch = spec.epoch
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._door_req_w = -1
        self._door_resp_r = -1
        self._hello_future: Optional[asyncio.Future] = None
        self._link_closed = False
        self._pending: Dict[int, Tuple[asyncio.Future, int]] = {}
        self._next_id = 1
        self.pending_ops = 0
        self.ops_routed = 0
        self.alive = False
        self.hello: Dict[str, Any] = {}

    async def spawn(self) -> None:
        if self.spec.transport == "shm":
            await self._spawn_shm()
            return
        context = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        process = context.Process(
            target=_child_entry,
            args=(self.spec, child_sock, parent_sock, self._image),
            daemon=True,
        )
        process.start()
        child_sock.close()
        self._process = process
        self._reader, self._writer = await asyncio.open_connection(
            sock=parent_sock
        )
        body = await asyncio.wait_for(
            read_frame(self._reader, self.spec.max_ipc_bytes), timeout=30.0
        )
        req_id, kind, payload = unpack_ipc(body)
        if kind != KIND_CONTROL or req_id != EVENT_ID:
            raise ProtocolError("worker handshake expected a hello event")
        self.hello = json.loads(payload.decode())
        self.alive = True
        self._reader_task = asyncio.create_task(self._read_loop())

    async def _spawn_shm(self) -> None:
        """Fork the worker with the ring pair inherited directly (no
        pickling: the fork start method shares the mapped segments) and
        fresh per-generation doorbell pipes."""
        assert self._shm is not None
        loop = asyncio.get_running_loop()
        self._loop = loop
        req_r, req_w = os.pipe()
        resp_r, resp_w = os.pipe()
        os.set_blocking(req_w, False)
        os.set_blocking(resp_r, False)
        context = multiprocessing.get_context("fork")
        process = context.Process(
            target=_child_entry_shm,
            args=(self.spec, self._shm, req_r, resp_w, (req_w, resp_r),
                  self._image),
            daemon=True,
        )
        process.start()
        # close the child's ends so its death is observable as pipe EOF
        os.close(req_r)
        os.close(resp_w)
        self._process = process
        self._door_req_w = req_w
        self._door_resp_r = resp_r
        self._hello_future = loop.create_future()
        loop.add_reader(resp_r, self._on_shm_readable)
        try:
            self.hello = await asyncio.wait_for(self._hello_future,
                                                timeout=30.0)
        except BaseException:
            self._teardown_shm_link()
            if process.is_alive():
                process.terminate()
            raise
        self.alive = True

    # ------------------------------------------------------------------

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                body = await read_frame(self._reader, self.spec.max_ipc_bytes)
                if not body:
                    break
                req_id, kind, payload = unpack_ipc(body)
                self._dispatch_frame(req_id, kind, payload)
        except (ConnectionError, OSError, ProtocolError, asyncio.CancelledError):
            pass
        finally:
            self._fail_pending()
            was_alive = self.alive
            self.alive = False
            if was_alive:
                self._on_death(self)

    def _on_shm_readable(self) -> None:
        """Doorbell callback: drain the pipe, then the response ring.

        Pipe EOF (the worker died — its doorbell write end closed) still
        drains the ring first, so responses the worker published before
        dying are delivered rather than failed.
        """
        if self._link_closed:
            return
        eof = False
        try:
            while True:
                data = os.read(self._door_resp_r, 65536)
                if not data:
                    eof = True
                    break
                if len(data) < 65536:
                    break
        except BlockingIOError:
            pass
        except OSError:
            eof = True
        self._drain_responses()
        if eof:
            self._shm_link_down()

    def _drain_responses(self) -> None:
        assert self._shm is not None
        ring = self._shm.response
        while True:
            try:
                record = ring.pop()
            except ProtocolError:
                # torn worker write: nothing past it is trustworthy
                ring.drain_all()
                return
            if record is None:
                return
            epoch, view = record
            if epoch != self._epoch:
                ring.note_stale()
                ring.advance()
                continue
            req_id, kind = _IPC_HEAD.unpack_from(view, 0)
            payload = bytes(view[_IPC_HEAD.size:])
            ring.advance()
            self._dispatch_frame(req_id, kind, payload)

    def _dispatch_frame(self, req_id: int, kind: int, payload: bytes) -> None:
        """Shared by both transports: events and reply-future resolution."""
        if req_id == EVENT_ID and kind == KIND_CONTROL:
            event = json.loads(payload.decode())
            if (self._hello_future is not None
                    and not self._hello_future.done()
                    and event.get("event") == "hello"):
                self._hello_future.set_result(event)
                return
            self._on_event(self, event)
            return
        entry = self._pending.pop(req_id, None)
        if entry is None:
            return  # reply to an op whose waiter timed out
        future, ops = entry
        self.pending_ops -= ops
        if not future.done():
            future.set_result((kind, payload))

    def _teardown_shm_link(self) -> None:
        if self._link_closed:
            return
        self._link_closed = True
        if self._loop is not None and self._door_resp_r >= 0:
            try:
                self._loop.remove_reader(self._door_resp_r)
            except Exception:
                pass
        for fd in (self._door_req_w, self._door_resp_r):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._door_req_w = self._door_resp_r = -1

    def _shm_link_down(self) -> None:
        """Worker death on the shm transport (the socket path's read-loop
        ``finally``): deliver what it published, fail the rest."""
        if self._link_closed:
            return
        self._drain_responses()
        self._teardown_shm_link()
        if self._hello_future is not None and not self._hello_future.done():
            self._hello_future.set_exception(WorkerDiedError(
                f"worker {self.worker_id} died during the handshake"
            ))
        self._fail_pending()
        was_alive = self.alive
        self.alive = False
        if was_alive:
            self._on_death(self)

    def _fail_pending(self) -> None:
        error = WorkerDiedError(
            f"worker {self.worker_id} died with the op in flight"
        )
        for future, _ in self._pending.values():
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
        self.pending_ops = 0

    # ------------------------------------------------------------------

    def _submit(self, kind: int, payload: bytes, ops: int) -> asyncio.Future:
        if not self.alive:
            raise WorkerDiedError(f"worker {self.worker_id} is down")
        req_id = self._next_id
        self._next_id += 1
        if self.spec.transport == "shm":
            assert self._shm is not None
            # push before any bookkeeping: on failure the op was simply
            # never submitted (RingFullError surfaces as per-op BUSY)
            if not self._shm.request.try_push(
                    _IPC_HEAD.pack(req_id, kind) + payload, self._epoch):
                raise RingFullError(
                    f"worker {self.worker_id} request ring is full"
                )
            ring_doorbell(self._door_req_w)
        else:
            if self._writer is None:
                raise WorkerDiedError(f"worker {self.worker_id} is down")
            self._writer.write(pack_ipc(req_id, kind, payload))
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[req_id] = (future, ops)
        self.pending_ops += ops
        self.ops_routed += ops
        return future

    async def call(self, request_body: bytes, ops: int = 1) -> bytes:
        """Forward one protocol request body; returns the reply body."""
        kind, payload = await self._submit(KIND_REQUEST, request_body, ops)
        if kind != KIND_REQUEST:
            raise ProtocolError("worker answered a REQUEST with CONTROL")
        return payload

    async def control(self, command: dict) -> dict:
        kind, payload = await self._submit(
            KIND_CONTROL, json.dumps(command).encode(), ops=0
        )
        if kind != KIND_CONTROL:
            raise ProtocolError("worker answered CONTROL with a REQUEST")
        return json.loads(payload.decode())

    async def migrate(self, body: bytes):
        """Submit an encoded migration/fence/replica frame body.

        Returns the decoded answer frame.  A worker-side phase failure
        comes back as an ErrorReply on the REQUEST kind and is raised
        here as :class:`MigrationError`.
        """
        kind, payload = await self._submit(KIND_MIGRATE, body, ops=0)
        if kind == KIND_REQUEST:
            reply = decode_reply(payload)
            message = (reply.message if isinstance(reply, ErrorReply)
                       else repr(reply))
            raise MigrationError(
                f"worker {self.worker_id}: {message}")
        if kind != KIND_MIGRATE:
            raise ProtocolError("worker answered MIGRATE with CONTROL")
        return decode_migration_frame(payload)

    # ------------------------------------------------------------------

    async def shutdown(self, graceful: bool = True) -> None:
        """Stop the process; never raises."""
        if graceful and self.alive:
            try:
                await asyncio.wait_for(self.control({"cmd": "stop"}),
                                       timeout=2.0)
            except Exception:
                pass
        self.alive = False
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
        process = self._process
        if process is not None and process.is_alive():
            await asyncio.get_running_loop().run_in_executor(
                None, self._join_or_kill, process
            )

    @staticmethod
    def _join_or_kill(process) -> None:
        process.join(timeout=2.0)
        if process.is_alive():
            process.terminate()
            process.join(timeout=2.0)


class WorkerPool:
    """Spawns, routes to, and supervises the shard worker processes.

    With ``transport="shm"`` the pool owns one persistent
    :class:`~repro.serve.shm.ShmTransport` ring pair per worker slot: the
    rings outlive worker incarnations (a restart bumps the slot's u16
    epoch and drains stale slots via ``begin_generation``), and the pool
    unlinks the segments at :meth:`stop`.
    """

    RESTART_ATTEMPTS = 5

    def __init__(
        self,
        config: ServerConfig,
        n_workers: int,
        stats: ServeStats,
        log_dir: str,
        transport: str = "socket",
        ring_bytes: int = DEFAULT_RING_BYTES,
        routing: Optional[RoutingTable] = None,
        read_path: str = "ring",
    ) -> None:
        self.config = config
        self.n_workers = n_workers
        self.stats = stats
        self.log_dir = log_dir
        self.transport = transport
        self.routing = routing
        self.read_path = read_path
        self._ring_bytes = ring_bytes
        self._transports: List[Optional[ShmTransport]] = [None] * n_workers
        #: per-worker shared index images (read_path="shared" only);
        #: created pre-fork so the child inherits the mapping, and — like
        #: the ring transports — they outlive worker incarnations
        self._images: List[Optional[SharedIndexImage]] = [None] * n_workers
        self._epochs = [1] * n_workers
        self._handles: List[Optional[WorkerHandle]] = [None] * n_workers
        self._restarting: Dict[int, asyncio.Task] = {}
        self.restart_counts = [0] * n_workers
        self._armed = config.fault_plan is not None and config.fault_plan.armed
        #: counters/fired totals absorbed from workers' dying events, so a
        #: killed worker's accounting survives its death
        self._absorbed: List[Dict[str, Dict[str, float]]] = [
            {"counters": {}, "faults": {}} for _ in range(n_workers)
        ]
        self._stopping = False

    def _transport_for(self, worker_id: int) -> ShmTransport:
        pair = self._transports[worker_id]
        if pair is None:
            pair = ShmTransport.create(self._ring_bytes)
            pair.set_epoch(self._epochs[worker_id])
            self._transports[worker_id] = pair
        return pair

    def image_for(self, worker_id: int) -> Optional[SharedIndexImage]:
        """The worker's shared index image (``None`` on the ring path)."""
        if self.read_path != "shared":
            return None
        image = self._images[worker_id]
        if image is None:
            image = SharedIndexImage.create(ImageLayout.for_store(
                self.config.n_shards, self.config.expected_items
            ))
            self._images[worker_id] = image
        return image

    def ring_stale_discarded(self) -> int:
        """Total stale-generation ring slots dropped across the pool."""
        return sum(
            pair.stale_discarded()
            for pair in self._transports
            if pair is not None
        )

    def _replica_shards(self, worker_id: int) -> Tuple[int, ...]:
        """Shards this worker shadows: the next worker ring-wise after
        each shard's owner (so an owner death leaves a warm read copy)."""
        if self.config.replicas <= 0 or self.n_workers < 2:
            return ()
        routing = self.routing
        shards = []
        for shard in range(self.config.n_shards):
            owner = (routing.worker_of_shard(shard) if routing is not None
                     else worker_of_shard(shard, self.n_workers))
            if owner != worker_id and (owner + 1) % self.n_workers == worker_id:
                shards.append(shard)
        return tuple(shards)

    def _spec(self, worker_id: int) -> WorkerSpec:
        plan = self.config.fault_plan
        maintenance = self.config.maintenance
        return WorkerSpec(
            worker_id=worker_id,
            n_workers=self.n_workers,
            n_shards=self.config.n_shards,
            expected_items=self.config.expected_items,
            seed=self.config.seed,
            durable=self.config.durable or plan is not None,
            write_stall=self.config.write_stall,
            max_ipc_bytes=self.config.max_frame_bytes + 4096,
            fault_spec=plan.spec() if plan is not None else None,
            fault_seed=plan.seed if plan is not None else 0,
            armed=self._armed,
            log_dir=self.log_dir,
            compact_at=(maintenance.compact_at
                        if maintenance is not None else -1.0),
            compact_min_records=(maintenance.compact_min_records
                                 if maintenance is not None else 128),
            checkpoint_every=(maintenance.checkpoint_every
                              if maintenance is not None else 0),
            transport=self.transport,
            epoch=self._epochs[worker_id],
            owned_shards=(self.routing.shards_of_worker(worker_id)
                          if self.routing is not None else None),
            replica_shards=self._replica_shards(worker_id),
            kick_policy=self.config.kick_policy,
        )

    def _make_handle(self, worker_id: int) -> WorkerHandle:
        shm = (self._transport_for(worker_id)
               if self.transport == "shm" else None)
        return WorkerHandle(self._spec(worker_id),
                            self._handle_death, self._handle_event,
                            shm=shm, image=self.image_for(worker_id))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        try:
            for worker_id in range(self.n_workers):
                handle = self._make_handle(worker_id)
                await handle.spawn()
                self._handles[worker_id] = handle
        except BaseException:
            await self.stop()
            raise

    async def stop(self) -> None:
        self._stopping = True
        for task in list(self._restarting.values()):
            task.cancel()
        for task in list(self._restarting.values()):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._restarting.clear()
        for handle in self._handles:
            if handle is not None:
                await handle.shutdown()
        self._handles = [None] * self.n_workers
        for worker_id, pair in enumerate(self._transports):
            if pair is not None:
                pair.destroy()
                self._transports[worker_id] = None
        for worker_id, image in enumerate(self._images):
            if image is not None:
                image.destroy()
                self._images[worker_id] = None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def handle_for_worker(self, worker_id: int) -> WorkerHandle:
        handle = self._handles[worker_id]
        if handle is None or not handle.alive:
            raise WorkerUnavailableError(
                f"worker {worker_id} is restarting; retry shortly"
            )
        return handle

    def live_handles(self) -> List[Tuple[int, Optional[WorkerHandle]]]:
        return [
            (worker_id, handle if handle is not None and handle.alive else None)
            for worker_id, handle in enumerate(self._handles)
        ]

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------

    def _handle_event(self, handle: WorkerHandle, event: dict) -> None:
        if event.get("event") == "dying":
            absorbed = self._absorbed[handle.worker_id]
            for section in ("counters", "faults"):
                for name, value in event.get(section, {}).items():
                    absorbed[section][name] = (
                        absorbed[section].get(name, 0) + value
                    )

    def _handle_death(self, handle: WorkerHandle) -> None:
        if self._stopping:
            return
        worker_id = handle.worker_id
        if self._handles[worker_id] is not handle:
            return  # already superseded
        self._handles[worker_id] = None
        if worker_id not in self._restarting:
            self._restarting[worker_id] = asyncio.create_task(
                self._restart(worker_id)
            )

    async def _restart(self, worker_id: int) -> None:
        """Fork a replacement; its durable log files drive recovery.

        On the shm transport every attempt starts a new *generation*:
        the slot epoch is bumped and ``begin_generation`` drains both
        rings, so a restarted worker can never replay a pre-crash
        request (and the frontend drops any response the dead — or a
        failed-spawn — incarnation left behind)."""
        try:
            for attempt in range(self.RESTART_ATTEMPTS):
                if self._stopping:
                    return
                try:
                    if self.transport == "shm":
                        self._epochs[worker_id] = (
                            (self._epochs[worker_id] % 0xFFFF) + 1
                        )
                        self._transport_for(worker_id).begin_generation(
                            self._epochs[worker_id]
                        )
                    handle = self._make_handle(worker_id)
                    await handle.spawn()
                except Exception:
                    await asyncio.sleep(0.05 * (attempt + 1))
                    continue
                self.restart_counts[worker_id] += 1
                self.stats.worker_restarts += 1
                self._handles[worker_id] = handle
                return
        finally:
            self._restarting.pop(worker_id, None)

    async def await_restarts(self) -> None:
        for task in list(self._restarting.values()):
            try:
                await asyncio.shield(task)
            except (asyncio.CancelledError, Exception):
                pass

    # ------------------------------------------------------------------
    # pool-wide operations
    # ------------------------------------------------------------------

    async def barrier(self) -> None:
        """Quiescence point: every op sent before this call has applied.

        Waits out in-flight restarts, then pings every worker; FIFO
        ordering makes each pong prove the worker drained its inbox.
        """
        await self.await_restarts()
        for worker_id, handle in self.live_handles():
            if handle is None:
                continue
            try:
                await handle.control({"cmd": "ping"})
            except (WorkerDiedError, ProtocolError):
                pass

    async def broadcast_disarm(self) -> None:
        """Stop fault injection pool-wide, including future respawns."""
        self._armed = False
        await self.await_restarts()
        for _, handle in self.live_handles():
            if handle is None:
                continue
            try:
                await handle.control({"cmd": "disarm"})
            except (WorkerDiedError, ProtocolError):
                pass

    async def collect_stats(self) -> List[Optional[dict]]:
        """Each worker's stats (absorbed + live), None when mid-restart."""
        out: List[Optional[dict]] = []
        for worker_id, handle in self.live_handles():
            absorbed = self._absorbed[worker_id]
            if handle is None:
                merged: Optional[dict] = (
                    {"counters": dict(absorbed["counters"]),
                     "faults": dict(absorbed["faults"]), "store": {}}
                    if absorbed["counters"] or absorbed["faults"] else None
                )
                out.append(merged)
                continue
            try:
                answer = await handle.control({"cmd": "stats"})
            except (WorkerDiedError, ProtocolError):
                out.append(None)
                continue
            for section in ("counters", "faults"):
                for name, value in absorbed[section].items():
                    answer[section][name] = (
                        answer[section].get(name, 0) + value
                    )
            out.append(answer)
        return out

    def fired_counts(self) -> Dict[str, int]:
        """Best-effort pool fired totals from absorbed dying events only;
        live workers' counts are merged at STATS time."""
        totals: Dict[str, int] = {}
        for absorbed in self._absorbed:
            for name, value in absorbed["faults"].items():
                totals[name] = totals.get(name, 0) + int(value)
        return totals


class _BatchWaiter:
    """Completion latch for one client batch's ops in the run aggregator.

    Each op the batch hands to the aggregator bumps ``remaining``; every
    per-op resolution (a worker sub-reply, a BUSY rejection, a death
    error) decrements it, and ``wait`` unblocks when the batch's ops are
    all answered.  One batch awaiting its latch never waits on another
    batch's ops, even though their ops travel in shared frames.
    """

    __slots__ = ("remaining", "_event")

    def __init__(self) -> None:
        self.remaining = 0
        self._event = asyncio.Event()
        self._event.set()

    def add(self) -> None:
        self.remaining += 1
        self._event.clear()

    def done_one(self) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            self._event.set()

    async def wait(self) -> None:
        await self._event.wait()


#: where one aggregated op's answer lands: (batch reply slots, slot
#: index, the owning batch's completion latch)
_OpSink = Tuple[List[Optional[SimpleReply]], int, _BatchWaiter]


class WorkerServer(McCuckooServer):
    """Multi-process McCuckoo server: asyncio frontend + N shard workers.

    The frontend keeps the base server's connection handling, framing,
    per-request timeout, and BUSY backpressure, but owns no store —
    every op is forwarded over the worker pool.  ``writer_queue_depth``
    bounds each *worker's* in-flight ops (reads included: a worker's
    inbox is its queue), answered with per-op BUSY like the base server.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        n_workers: int = 2,
    ) -> None:
        if n_workers <= 0:
            raise ConfigurationError("n_workers must be positive")
        super().__init__(config)
        #: the resolved worker transport ("shm" or "socket"); resolving
        #: here makes an explicit ``transport="shm"`` on an unsupported
        #: platform fail at construction, not mid-serve
        self.transport = resolve_transport(self.config.transport)
        #: the resolved GET read path ("shared" or "ring"); like the
        #: transport, an explicit ``read_path="shared"`` on a platform
        #: without shared memory fails here, not mid-serve
        self.read_path = resolve_read_path(self.config.read_path)
        # more workers than shards would leave idle processes owning
        # nothing; clamp so every worker owns at least one shard
        self.n_workers = min(n_workers, self.config.n_shards)
        self._router = ShardRouter(self.config.n_shards,
                                   seed=self.config.seed)
        #: dynamic shard → worker map; migrations bump its epoch at the
        #: routing flip (the migration commit point)
        self._routing = RoutingTable(self.config.n_shards, self.n_workers)
        #: shard → cleared Event while a migration fence holds writes to
        #: that shard; lifted (set + removed) when the migration ends
        self._fences: Dict[int, asyncio.Event] = {}
        self.migrations = {"started": 0, "committed": 0, "aborted": 0}
        self._migrations_active = 0
        self._replica_pending = 0
        self._replica_errors = 0
        self._pool: Optional[WorkerPool] = None
        self._readers: List[Optional[SharedImageReader]] = []
        self._log_dir: Optional[str] = None
        # tick-coalescing run aggregator: batch ops from every client
        # connection admitted in the same event-loop tick share one
        # frame per worker (see _enqueue_op/_flush_runs)
        self._run_pending: Dict[int, List[Tuple[Any, _OpSink]]] = {}
        self._flush_scheduled = False

    def _make_store(self) -> Optional[ShardedLogStore]:
        return None  # shards live in the worker processes

    @property
    def pool(self) -> WorkerPool:
        if self._pool is None:
            raise RuntimeError("server is not running")
        return self._pool

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------

    async def _start_backend(self) -> None:
        import tempfile
        self._log_dir = tempfile.mkdtemp(prefix="mccuckoo-worker-logs-")
        self._pool = WorkerPool(self.config, self.n_workers, self.stats,
                                self._log_dir,
                                transport=self.transport,
                                ring_bytes=self.config.shm_ring_bytes,
                                routing=self._routing,
                                read_path=self.read_path)
        self._readers = [None] * self.n_workers
        await self._pool.start()

    async def _stop_backend(self) -> None:
        for reader in self._readers:
            if reader is not None:
                reader.close()
        self._readers = []
        if self._pool is not None:
            await self._pool.stop()
            self._pool = None
        if self._log_dir is not None:
            import shutil
            shutil.rmtree(self._log_dir, ignore_errors=True)
            self._log_dir = None

    async def drain_writes(self) -> None:
        await self.pool.barrier()

    async def disarm_faults(self) -> None:
        if self._faults is not None:
            self._faults.disarm()
        if self._pool is not None:
            await self._pool.broadcast_disarm()

    # ------------------------------------------------------------------
    # dynamic routing, fences, replicas
    # ------------------------------------------------------------------

    @property
    def routing(self) -> RoutingTable:
        return self._routing

    @property
    def routing_epoch(self) -> int:
        return self._routing.epoch

    @property
    def replicas(self) -> int:
        """Effective replica count (0 with a single worker: a replica on
        the owner itself would protect nothing)."""
        return self.config.replicas if self.n_workers >= 2 else 0

    def replica_of_shard(self, shard: int) -> Optional[int]:
        if self.replicas <= 0:
            return None
        return (self._routing.worker_of_shard(shard) + 1) % self.n_workers

    def fence_shard(self, shard: int) -> None:
        """Hold new writes to ``shard`` until :meth:`lift_fence`.

        Reads keep flowing; fenced writes park on the event and recompute
        their worker from the routing table once it is lifted, so a write
        admitted during a migration lands on whichever side owns the
        shard *after* the flip.
        """
        if shard not in self._fences:
            self._fences[shard] = asyncio.Event()

    def lift_fence(self, shard: int) -> None:
        event = self._fences.pop(shard, None)
        if event is not None:
            event.set()

    async def _await_fence(self, shard: int) -> None:
        while shard in self._fences:
            await self._fences[shard].wait()

    async def reshard(self, shard: int, target_worker: int):
        """Migrate ``shard`` to ``target_worker`` live; returns the
        :class:`~repro.serve.resharding.MigrationReport`."""
        from .resharding import ReshardCoordinator
        return await ReshardCoordinator(self).migrate_shard(
            shard, target_worker)

    def note_migration_start(self) -> None:
        self.migrations["started"] += 1
        self._migrations_active += 1

    def note_migration_end(self, committed: bool) -> None:
        self.migrations["committed" if committed else "aborted"] += 1
        self._migrations_active -= 1

    def _maybe_replicate(self, request) -> None:
        """Fire-and-forget: mirror one acked write to the shard's replica.

        Replication is asynchronous by design — the ack already went out
        on the owner's durable write, so replica lag costs staleness on
        failover reads, never durability.  ``_replica_pending`` is the
        lag gauge; submit failures only bump ``_replica_errors`` (the
        owner's log remains the source of truth).
        """
        if self.replicas <= 0:
            return
        shard = self._router.shard_of(request.key)
        replica = self.replica_of_shard(shard)
        if replica is None:
            return
        try:
            handle = self.pool.handle_for_worker(replica)
            body = encode_replica(ReplicaFrame(
                "apply", shard, self._routing.epoch,
                encode_request(request)[FRAME_OVERHEAD:],
            ))
            future = handle._submit(KIND_MIGRATE, body, ops=0)
        except (WorkerUnavailableError, WorkerDiedError, RingFullError,
                RingFrameTooLarge, ProtocolError):
            self._replica_errors += 1
            return
        self._replica_pending += 1
        future.add_done_callback(self._replica_done)

    def _replica_done(self, future: "asyncio.Future") -> None:
        self._replica_pending -= 1
        try:
            kind, _payload = future.result()
        except Exception:
            self._replica_errors += 1
            return
        if kind != KIND_MIGRATE:
            self._replica_errors += 1

    # ------------------------------------------------------------------
    # dispatch: forward over the pool
    # ------------------------------------------------------------------

    def _worker_of_key(self, key: int) -> int:
        return self._routing.worker_of_shard(self._router.shard_of(key))

    # -- shared read path (read_path="shared") -------------------------

    def _reader_for(self, worker_id: int) -> Optional[SharedImageReader]:
        if self.read_path != "shared" or not self._readers:
            return None
        reader = self._readers[worker_id]
        if reader is None:
            image = self.pool.image_for(worker_id)
            if image is None:
                return None
            reader = SharedImageReader(image)
            self._readers[worker_id] = reader
        return reader

    def _shared_get(
        self, worker_id: int, shard: int, key: int
    ) -> Optional[Tuple[bool, bytes]]:
        """One GET off the worker's image; ``None`` → take the ring path.

        Gated on the owner handle being alive: a dead owner's image is
        still coherent (publish-before-ack means it covers every acked
        write), but sending the read down the normal path keeps the
        replica-failover semantics identical across read paths.  Fenced
        shards also fall back — mid-migration the ring path's fence/flip
        interplay is the audited one.
        """
        if shard in self._fences or self._pool is None:
            return None
        handle = self._pool._handles[worker_id]
        if handle is None or not handle.alive:
            return None
        reader = self._reader_for(worker_id)
        if reader is None:
            return None
        before = reader.retries
        result = reader.get(shard, key)
        self.stats.shared_read_retries += reader.retries - before
        if result is None:
            self.stats.shared_read_fallbacks += 1
            return None
        self.stats.shared_reads += 1
        return result

    def _shared_run(
        self, worker_id: int, run: List[Tuple[Any, _OpSink]]
    ) -> List[Tuple[Any, _OpSink]]:
        """Resolve an all-GET run's ops straight from the worker's image.

        Each shard's sub-run is validated under one seqlock bracket;
        returns the ops that still need the ring (everything, when the
        image is unusable outright).
        """
        if self._pool is None:
            return run
        handle = self._pool._handles[worker_id]
        if handle is None or not handle.alive:
            return run
        reader = self._reader_for(worker_id)
        if reader is None:
            return run
        by_shard: Dict[int, List[Tuple[Any, _OpSink]]] = {}
        leftover: List[Tuple[Any, _OpSink]] = []
        for op, sink in run:
            shard = self._router.shard_of(op.key)
            if shard in self._fences:
                leftover.append((op, sink))
            else:
                by_shard.setdefault(shard, []).append((op, sink))
        for shard, group in by_shard.items():
            before = reader.retries
            results = reader.get_run(shard, [op.key for op, _ in group])
            self.stats.shared_read_retries += reader.retries - before
            if results is None:
                self.stats.shared_read_fallbacks += len(group)
                leftover.extend(group)
                continue
            self.stats.shared_reads += len(group)
            for (op, sink), (found, value) in zip(group, results):
                self.stats.note_get(hit=found)
                self._resolve_op(
                    sink,
                    ValueReply(found=True, value=value) if found
                    else ValueReply(found=False),
                )
        return leftover

    def _worker_busy_reply(self, worker_id: int) -> ErrorReply:
        self.stats.busy_rejections += 1
        return ErrorReply(
            ErrorCode.BUSY,
            f"worker {worker_id} has {self.config.writer_queue_depth} "
            "ops in flight",
        )

    def _worker_down_reply(self, error: Exception) -> ErrorReply:
        self.stats.busy_rejections += 1
        return ErrorReply(ErrorCode.BUSY, str(error))

    def _ring_busy_reply(self, worker_id: int) -> ErrorReply:
        """Ring-full backpressure: the transport itself is the queue."""
        self.stats.busy_rejections += 1
        return ErrorReply(
            ErrorCode.BUSY,
            f"worker {worker_id} request ring is full",
        )

    async def _handle_request(self, request: Request) -> Reply:
        if isinstance(request, StatsRequest):
            self.stats.stats_calls += 1
            return StatsReply(await self._merged_stats())
        if isinstance(request, BatchRequest):
            if len(request.ops) > self.config.max_batch_ops:
                return ErrorReply(
                    ErrorCode.TOO_LARGE,
                    f"batch of {len(request.ops)} ops exceeds "
                    f"{self.config.max_batch_ops}",
                )
            self.stats.batches += 1
            self.stats.batch_ops += len(request.ops)
            return await self._handle_batch(request)
        if isinstance(request, (PutRequest, DeleteRequest)):
            injected = self._injected_busy()
            if injected is not None:
                return injected
        return await self._forward(request)

    async def _forward(self, request) -> Reply:
        shard = self._router.shard_of(request.key)
        is_write = isinstance(request, (PutRequest, DeleteRequest))
        if is_write and shard in self._fences:
            await self._await_fence(shard)
        worker_id = self._routing.worker_of_shard(shard)
        if self.read_path == "shared" and isinstance(request, GetRequest):
            shared = self._shared_get(worker_id, shard, request.key)
            if shared is not None:
                found, value = shared
                self.stats.note_get(hit=found)
                return (ValueReply(found=True, value=value) if found
                        else ValueReply(found=False))
        try:
            handle = self.pool.handle_for_worker(worker_id)
        except WorkerUnavailableError as error:
            if not is_write:
                return await self._replica_read(request, shard, error)
            return self._worker_down_reply(error)
        if handle.pending_ops >= self.config.writer_queue_depth:
            return self._worker_busy_reply(worker_id)
        try:
            reply_body = await handle.call(
                encode_request(request)[FRAME_OVERHEAD:], ops=1
            )
        except RingFullError:
            return self._ring_busy_reply(worker_id)
        except RingFrameTooLarge as error:
            return ErrorReply(ErrorCode.TOO_LARGE, str(error))
        except WorkerDiedError as error:
            if not is_write:
                return await self._replica_read(request, shard, error)
            return ErrorReply(ErrorCode.UNAVAILABLE, str(error))
        reply = decode_reply(reply_body)
        if is_write and isinstance(reply, (PutReply, DeleteReply)):
            self._maybe_replicate(request)
        return reply

    async def _replica_read(self, request, shard: int,
                            error: Exception) -> Reply:
        """Owner-down GET failover: serve from the shard's read replica.

        The replica applies acked writes asynchronously, so a failover
        read may be stale by the replica lag; writes are never failed
        over (the shard degrades to read-only until the owner restarts).
        """
        replica = self.replica_of_shard(shard)
        if replica is None:
            return self._worker_down_reply(error)
        try:
            handle = self.pool.handle_for_worker(replica)
            reply_body = await handle.call(
                encode_request(request)[FRAME_OVERHEAD:], ops=1
            )
        except (WorkerUnavailableError, WorkerDiedError, RingFullError,
                RingFrameTooLarge):
            return self._worker_down_reply(error)
        self.stats.replica_reads += 1
        return decode_reply(reply_body)

    async def _handle_batch(self, request: BatchRequest) -> BatchReply:
        """Tick-coalesced forwarding: each op joins a per-worker run
        SHARED with every other client batch admitted in the same
        event-loop tick, and one flush per tick sends each worker ONE
        frame (relative op order preserved, so per-key order is intact
        — a key always maps to one worker).  Coalescing across
        connections amortises the fixed per-frame cost — encode, ring
        push, doorbell, worker wakeup, reply decode — over every
        concurrent client, which is what keeps two workers from losing
        to one on a starved box.  Ops past a worker's free capacity
        draw per-op BUSY; a worker death fails its whole run with
        per-op UNAVAILABLE."""
        replies: List[Optional[SimpleReply]] = [None] * len(request.ops)
        waiter = _BatchWaiter()
        for index, op in enumerate(request.ops):
            if isinstance(op, StatsRequest):
                # barrier: everything before the STATS must be visible,
                # so flush the shared runs early and wait for OUR ops
                self._flush_runs()
                await waiter.wait()
                self.stats.stats_calls += 1
                replies[index] = StatsReply(await self._merged_stats())
                continue
            if isinstance(op, (PutRequest, DeleteRequest)):
                # migration fence: park the write until the routing flip,
                # then route by the post-flip table (no awaits between
                # the fence check and the enqueue below, so a write can
                # never slip under a fence raised this tick)
                shard = self._router.shard_of(op.key)
                if shard in self._fences:
                    await self._await_fence(shard)
                injected = self._injected_busy()
                if injected is not None:
                    replies[index] = injected
                    continue
            waiter.add()
            self._enqueue_op(self._worker_of_key(op.key), op,
                             (replies, index, waiter))
        await waiter.wait()
        assert all(reply is not None for reply in replies)
        return BatchReply(tuple(replies))  # type: ignore[arg-type]

    def _enqueue_op(self, worker_id: int, op: Any, sink: _OpSink) -> None:
        self._run_pending.setdefault(worker_id, []).append((op, sink))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush_runs)

    def _flush_runs(self) -> None:
        self._flush_scheduled = False
        pending, self._run_pending = self._run_pending, {}
        for worker_id, run in pending.items():
            self._send_run(worker_id, run)

    @staticmethod
    def _resolve_op(sink: _OpSink, reply: SimpleReply) -> None:
        slots, index, waiter = sink
        slots[index] = reply
        waiter.done_one()

    def _reroute_gets(self, worker_id: int,
                      run: List[Tuple[Any, _OpSink]],
                      error: Exception) -> None:
        """Owner-down run salvage: resend the GETs to the replica worker.

        Writes in the run draw the usual down-reply (read-only
        degradation); ``rerouted=True`` on the resend stops a dead
        replica from bouncing the ops around the ring forever.
        """
        gets: List[Tuple[Any, _OpSink]] = []
        for op, sink in run:
            if isinstance(op, GetRequest):
                gets.append((op, sink))
            else:
                self._resolve_op(sink, self._worker_down_reply(error))
        if gets:
            self.stats.replica_reads += len(gets)
            self._send_run((worker_id + 1) % self.n_workers, gets,
                           rerouted=True)

    def _send_run(self, worker_id: int,
                  run: List[Tuple[Any, _OpSink]],
                  rerouted: bool = False) -> None:
        if (self.read_path == "shared" and not rerouted
                and all(isinstance(op, GetRequest) for op, _ in run)):
            run = self._shared_run(worker_id, run)
            if not run:
                return
        try:
            handle = self.pool.handle_for_worker(worker_id)
        except WorkerUnavailableError as error:
            if not rerouted and self.replicas > 0:
                self._reroute_gets(worker_id, run, error)
                return
            for _, sink in run:
                self._resolve_op(sink, self._worker_down_reply(error))
            return
        free = max(0, self.config.writer_queue_depth - handle.pending_ops)
        admitted, rejected = run[:free], run[free:]
        for _, sink in rejected:
            self._resolve_op(sink, self._worker_busy_reply(worker_id))
        if not admitted:
            return
        # All-GET runs go as a raw u64 key array (KIND_BATCH_KEYS): the
        # worker answers with the same BatchReply shape, but reads the
        # keys straight out of the transport buffer — on the shm ring
        # that is a zero-copy NumPy view with no per-op decode.
        if all(isinstance(op, GetRequest) for op, _ in admitted):
            kind = KIND_BATCH_KEYS
            body = encode_key_run([op.key for op, _ in admitted])
        else:
            kind = KIND_REQUEST
            sub_batch = BatchRequest(tuple(op for op, _ in admitted))
            body = encode_request(sub_batch)[FRAME_OVERHEAD:]
        try:
            future = handle._submit(kind, body, ops=len(admitted))
        except RingFullError:
            for _, sink in admitted:
                self._resolve_op(sink, self._ring_busy_reply(worker_id))
            return
        except RingFrameTooLarge as error:
            reply = ErrorReply(ErrorCode.TOO_LARGE, str(error))
            for _, sink in admitted:
                self._resolve_op(sink, reply)
            return
        except WorkerDiedError as error:
            reply = ErrorReply(ErrorCode.UNAVAILABLE, str(error))
            for _, sink in admitted:
                self._resolve_op(sink, reply)
            return
        future.add_done_callback(
            lambda fut, admitted=admitted: self._complete_run(fut, admitted)
        )

    def _complete_run(self, future: "asyncio.Future",
                      admitted: List[Tuple[Any, _OpSink]]) -> None:
        try:
            _kind, payload = future.result()
            batch = decode_reply(payload)
            if (not isinstance(batch, BatchReply)
                    or len(batch.replies) != len(admitted)):
                raise ProtocolError(
                    f"worker {type(batch).__name__} reply does not match "
                    f"a {len(admitted)}-op run"
                )
            for (op, sink), sub in zip(admitted, batch.replies):
                if (isinstance(op, (PutRequest, DeleteRequest))
                        and isinstance(sub, (PutReply, DeleteReply))):
                    self._maybe_replicate(op)
                self._resolve_op(sink, sub)
        except (WorkerDiedError, asyncio.CancelledError) as error:
            reply = ErrorReply(ErrorCode.UNAVAILABLE,
                               str(error) or "worker call cancelled")
            for _, sink in admitted:
                self._resolve_op(sink, reply)
        except Exception as error:
            self.stats.internal_errors += 1
            reply = ErrorReply(ErrorCode.INTERNAL, str(error))
            for _, sink in admitted:
                self._resolve_op(sink, reply)

    # ------------------------------------------------------------------
    # merged stats
    # ------------------------------------------------------------------

    async def _merged_stats(self) -> Dict[str, float]:
        per_worker = await self.pool.collect_stats()
        gauges: Dict[str, float] = {
            "connections_active": self._connections,
            "transport_shm": 1 if self.transport == "shm" else 0,
            "read_path_shared": 1 if self.read_path == "shared" else 0,
            "ring_stale_discarded": self.pool.ring_stale_discarded(),
            "workers": self.n_workers,
            "workers_up": sum(
                1 for _, handle in self.pool.live_handles()
                if handle is not None
            ),
            "writer_queue_depth": sum(
                handle.pending_ops
                for _, handle in self.pool.live_handles()
                if handle is not None
            ),
            "routing_epoch": self._routing.epoch,
            "migrations_started": self.migrations["started"],
            "migrations_committed": self.migrations["committed"],
            "migrations_aborted": self.migrations["aborted"],
            "migrations_active": self._migrations_active,
            "fenced_shards": len(self._fences),
            "replica_enabled": 1 if self.replicas > 0 else 0,
            "replica_lag": self._replica_pending,
            "replica_errors": self._replica_errors,
        }
        for worker_id, handle in self.pool.live_handles():
            gauges[f"worker{worker_id}_up"] = 1 if handle is not None else 0
            gauges[f"worker{worker_id}_pending_ops"] = (
                handle.pending_ops if handle is not None else 0
            )
            gauges[f"worker{worker_id}_ops_routed"] = (
                handle.ops_routed if handle is not None else 0
            )
            gauges[f"worker{worker_id}_restarts"] = (
                self.pool.restart_counts[worker_id]
            )
        gauges.update(self._merge_store_gauges(per_worker))
        fired: Dict[str, float] = {}
        if self._faults is not None:
            fired.update(self._faults.fired_counts())
        for answer in per_worker:
            if answer is None:
                continue
            for name, value in answer.get("faults", {}).items():
                fired[name] = fired.get(name, 0) + value
        gauges.update({f"fault_{name}": count
                       for name, count in fired.items()})
        self.stats.gauges = gauges
        snapshot = self.stats.snapshot()
        for answer in per_worker:
            if answer is None:
                continue
            counters = answer.get("counters", {})
            for name in _MERGED_COUNTERS:
                if name in counters:
                    snapshot[name] = snapshot.get(name, 0) + counters[name]
        return snapshot

    @staticmethod
    def _merge_store_gauges(
        per_worker: List[Optional[dict]],
    ) -> Dict[str, float]:
        """Pool-wide store view: sums for sizes, capacity-weighted mean
        for load, worst-worker imbalance (an approximation — per-shard
        loads stay inside the workers)."""
        items = records = capacity = stash = 0
        log_bytes = dead_bytes = compactions = checkpoints = 0
        checkpoint_age = -1.0
        weighted_load = 0.0
        max_load = 0.0
        for answer in per_worker:
            if answer is None:
                continue
            store = answer.get("store") or {}
            if not store:
                continue
            items += store.get("store_items", 0)
            records += store.get("store_log_records", 0)
            log_bytes += store.get("store_log_bytes", 0)
            dead_bytes += store.get("store_dead_bytes", 0)
            compactions += store.get("store_compactions", 0)
            checkpoints += store.get("store_checkpoints", 0)
            checkpoint_age = max(
                checkpoint_age, store.get("store_last_checkpoint_age_s", -1.0)
            )
            shard_capacity = store.get("index_capacity", 0)
            capacity += shard_capacity
            stash += store.get("index_stash_population", 0)
            load = store.get("index_load_ratio", 0.0)
            weighted_load += load * shard_capacity
            max_load = max(max_load,
                           load * store.get("index_imbalance", 1.0))
        mean_load = weighted_load / capacity if capacity else 0.0
        return {
            "store_items": items,
            "store_log_records": records,
            "store_garbage_ratio": round(
                1.0 - items / records if records else 0.0, 6
            ),
            "store_log_bytes": log_bytes,
            "store_dead_bytes": dead_bytes,
            "store_compactions": compactions,
            "store_checkpoints": checkpoints,
            "store_last_checkpoint_age_s": round(checkpoint_age, 6),
            "index_capacity": capacity,
            "index_load_ratio": round(mean_load, 6),
            "index_imbalance": round(
                max_load / mean_load if mean_load else 1.0, 6
            ),
            "index_stash_population": stash,
        }


__all__ = [
    "KIND_BATCH_KEYS",
    "KIND_CONTROL",
    "KIND_MIGRATE",
    "KIND_REQUEST",
    "MigrationError",
    "WorkerDiedError",
    "WorkerHandle",
    "WorkerPool",
    "WorkerServer",
    "WorkerSpec",
    "WorkerUnavailableError",
    "pack_ipc",
    "unpack_ipc",
]
