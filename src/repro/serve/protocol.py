"""Length-prefixed binary wire protocol for the McCuckoo KV service.

Every frame on the wire is ``u32 body-length (big-endian)``, then
``u32 crc32(body)``, then the body.  The checksum makes payload corruption
detectable at the framing layer: value bytes are opaque, so without it a
flipped bit inside a VALUE reply would silently reach the application —
with it, :func:`read_frame` raises :class:`ProtocolError` and the caller
can discard the connection and retry.  A body starts with a fixed
three-byte header — magic ``0xC3``, protocol version, opcode — and
continues with an opcode-specific payload:

=========  ====  =======================================================
opcode     dir   payload
=========  ====  =======================================================
GET        req   key ``u64``
PUT        req   key ``u64``, value ``u32`` length + bytes
DELETE     req   key ``u64``
BATCH      req   ``u16`` count, then count sub-requests (opcode + payload,
                 no header; nesting a BATCH is a protocol error)
STATS      req   empty
VALUE      rep   found ``u8``, value ``u32`` length + bytes
PUT_OK     rep   created ``u8`` (1 = new key, 0 = in-place update)
DELETE_OK  rep   deleted ``u8``
STATS_OK   rep   ``u32`` length + UTF-8 JSON object (str → number)
BATCH_OK   rep   ``u16`` count, then count sub-replies (opcode + payload)
ERROR      rep   code ``u8``, ``u16`` length + UTF-8 message
=========  ====  =======================================================

Encode/decode are pure functions over ``bytes`` — unit-testable without a
socket.  The two tiny stream helpers (:func:`read_frame`,
:func:`write_frame`) are the only asyncio-aware code here.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Tuple, Union

from ..core.errors import ReproError

MAGIC = 0xC3
VERSION = 1

#: default cap on one frame body; protects both peers from unbounded buffering
MAX_FRAME_BYTES = 1 << 20

_LEN = struct.Struct(">I")
_CRC = struct.Struct(">I")
#: bytes before the body: length prefix + body checksum
FRAME_OVERHEAD = _LEN.size + _CRC.size
_HEADER = struct.Struct(">BBB")
_U64 = struct.Struct(">Q")
_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")
_U8 = struct.Struct(">B")


class Opcode(IntEnum):
    """Request opcodes (low range) and reply opcodes (high bit set)."""

    GET = 0x01
    PUT = 0x02
    DELETE = 0x03
    BATCH = 0x04
    STATS = 0x05

    VALUE = 0x81
    PUT_OK = 0x82
    DELETE_OK = 0x83
    STATS_OK = 0x84
    BATCH_OK = 0x85
    ERROR = 0xFF


class ErrorCode(IntEnum):
    """Error frame codes; the server never closes a connection silently."""

    BAD_REQUEST = 1
    BUSY = 2
    TIMEOUT = 3
    TOO_LARGE = 4
    INTERNAL = 5
    BAD_VERSION = 6
    UNAVAILABLE = 7
    """The op was in flight to a worker process that died; its outcome is
    unknown but the op is idempotent, so clients may safely retry."""


class ProtocolError(ReproError):
    """A frame could not be encoded or decoded."""


# ----------------------------------------------------------------------
# message types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GetRequest:
    key: int


@dataclass(frozen=True)
class PutRequest:
    key: int
    value: bytes


@dataclass(frozen=True)
class DeleteRequest:
    key: int


@dataclass(frozen=True)
class StatsRequest:
    pass


@dataclass(frozen=True)
class BatchRequest:
    ops: Tuple["SimpleRequest", ...]


SimpleRequest = Union[GetRequest, PutRequest, DeleteRequest, StatsRequest]
Request = Union[SimpleRequest, BatchRequest]


@dataclass(frozen=True)
class ValueReply:
    found: bool
    value: bytes = b""


@dataclass(frozen=True)
class PutReply:
    created: bool


@dataclass(frozen=True)
class DeleteReply:
    deleted: bool


@dataclass(frozen=True)
class StatsReply:
    stats: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorReply:
    code: ErrorCode
    message: str = ""


@dataclass(frozen=True)
class BatchReply:
    replies: Tuple["SimpleReply", ...]


SimpleReply = Union[ValueReply, PutReply, DeleteReply, StatsReply, ErrorReply]
Reply = Union[SimpleReply, BatchReply]


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------


def _encode_request_body(request: SimpleRequest) -> bytes:
    if isinstance(request, GetRequest):
        return _U8.pack(Opcode.GET) + _U64.pack(request.key)
    if isinstance(request, PutRequest):
        return (
            _U8.pack(Opcode.PUT)
            + _U64.pack(request.key)
            + _U32.pack(len(request.value))
            + request.value
        )
    if isinstance(request, DeleteRequest):
        return _U8.pack(Opcode.DELETE) + _U64.pack(request.key)
    if isinstance(request, StatsRequest):
        return _U8.pack(Opcode.STATS)
    raise ProtocolError(f"cannot encode request of type {type(request).__name__}")


def _frame(body: bytes) -> bytes:
    """Wrap a body with the length prefix and checksum."""
    return _LEN.pack(len(body)) + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF) + body


def encode_request(request: Request) -> bytes:
    """Encode a request into a complete frame (length/CRC prefix included)."""
    prefix = struct.pack(">BB", MAGIC, VERSION)
    if isinstance(request, BatchRequest):
        if len(request.ops) > 0xFFFF:
            raise ProtocolError("batch exceeds 65535 operations")
        parts = [prefix, _U8.pack(Opcode.BATCH), _U16.pack(len(request.ops))]
        for op in request.ops:
            if isinstance(op, BatchRequest):
                raise ProtocolError("batches cannot nest")
            parts.append(_encode_request_body(op))
        body = b"".join(parts)
    else:
        body = prefix + _encode_request_body(request)
    return _frame(body)


def _encode_reply_body(reply: SimpleReply) -> bytes:
    if isinstance(reply, ValueReply):
        return (
            _U8.pack(Opcode.VALUE)
            + _U8.pack(int(reply.found))
            + _U32.pack(len(reply.value))
            + reply.value
        )
    if isinstance(reply, PutReply):
        return _U8.pack(Opcode.PUT_OK) + _U8.pack(int(reply.created))
    if isinstance(reply, DeleteReply):
        return _U8.pack(Opcode.DELETE_OK) + _U8.pack(int(reply.deleted))
    if isinstance(reply, StatsReply):
        blob = json.dumps(reply.stats, sort_keys=True).encode("utf-8")
        return _U8.pack(Opcode.STATS_OK) + _U32.pack(len(blob)) + blob
    if isinstance(reply, ErrorReply):
        message = reply.message.encode("utf-8")[:0xFFFF]
        return (
            _U8.pack(Opcode.ERROR)
            + _U8.pack(int(reply.code))
            + _U16.pack(len(message))
            + message
        )
    raise ProtocolError(f"cannot encode reply of type {type(reply).__name__}")


def encode_reply(reply: Reply) -> bytes:
    """Encode a reply into a complete frame (length/CRC prefix included)."""
    prefix = struct.pack(">BB", MAGIC, VERSION)
    if isinstance(reply, BatchReply):
        parts = [prefix, _U8.pack(Opcode.BATCH_OK), _U16.pack(len(reply.replies))]
        for sub in reply.replies:
            if isinstance(sub, BatchReply):
                raise ProtocolError("batches cannot nest")
            parts.append(_encode_reply_body(sub))
        body = b"".join(parts)
    else:
        body = prefix + _encode_reply_body(reply)
    return _frame(body)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------


class _Cursor:
    """Sequential reader over a frame body with bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise ProtocolError("truncated frame")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def blob(self, length_bytes: int = 4) -> bytes:
        length = self.u32() if length_bytes == 4 else self.u16()
        return self.take(length)

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


def _check_header(cursor: _Cursor) -> None:
    magic, version = cursor.u8(), cursor.u8()
    if magic != MAGIC:
        raise ProtocolError(f"bad magic byte {magic:#x}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")


def _decode_request_body(cursor: _Cursor) -> SimpleRequest:
    opcode = cursor.u8()
    if opcode == Opcode.GET:
        return GetRequest(cursor.u64())
    if opcode == Opcode.PUT:
        key = cursor.u64()
        return PutRequest(key, cursor.blob())
    if opcode == Opcode.DELETE:
        return DeleteRequest(cursor.u64())
    if opcode == Opcode.STATS:
        return StatsRequest()
    if opcode == Opcode.BATCH:
        raise ProtocolError("batches cannot nest")
    raise ProtocolError(f"unknown request opcode {opcode:#x}")


def decode_request(body: bytes) -> Request:
    """Decode a frame body (without the length prefix) into a request."""
    cursor = _Cursor(body)
    _check_header(cursor)
    if body[2:3] and body[2] == Opcode.BATCH:
        cursor.u8()  # consume the BATCH opcode
        count = cursor.u16()
        ops = tuple(_decode_request_body(cursor) for _ in range(count))
        request: Request = BatchRequest(ops)
    else:
        request = _decode_request_body(cursor)
    if not cursor.exhausted:
        raise ProtocolError("trailing bytes after request")
    return request


def _decode_reply_body(cursor: _Cursor) -> SimpleReply:
    opcode = cursor.u8()
    if opcode == Opcode.VALUE:
        found = bool(cursor.u8())
        return ValueReply(found, cursor.blob())
    if opcode == Opcode.PUT_OK:
        return PutReply(bool(cursor.u8()))
    if opcode == Opcode.DELETE_OK:
        return DeleteReply(bool(cursor.u8()))
    if opcode == Opcode.STATS_OK:
        blob = cursor.blob()
        try:
            stats = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"malformed stats payload: {error}") from error
        if not isinstance(stats, dict):
            raise ProtocolError("stats payload must be a JSON object")
        return StatsReply(stats)
    if opcode == Opcode.ERROR:
        code = cursor.u8()
        try:
            error_code = ErrorCode(code)
        except ValueError as error:
            raise ProtocolError(f"unknown error code {code}") from error
        try:
            message = cursor.blob(length_bytes=2).decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(f"malformed error message: {error}") from error
        return ErrorReply(error_code, message)
    if opcode == Opcode.BATCH_OK:
        raise ProtocolError("batches cannot nest")
    raise ProtocolError(f"unknown reply opcode {opcode:#x}")


def decode_reply(body: bytes) -> Reply:
    """Decode a frame body (without the length prefix) into a reply."""
    cursor = _Cursor(body)
    _check_header(cursor)
    if body[2:3] and body[2] == Opcode.BATCH_OK:
        cursor.u8()  # consume the BATCH_OK opcode
        count = cursor.u16()
        replies = tuple(_decode_reply_body(cursor) for _ in range(count))
        reply: Reply = BatchReply(replies)
    else:
        reply = _decode_reply_body(cursor)
    if not cursor.exhausted:
        raise ProtocolError("trailing bytes after reply")
    return reply


# ----------------------------------------------------------------------
# migration frames (worker IPC only): MIGRATE / FENCE / REPLICA
# ----------------------------------------------------------------------

#: migration-control opcodes — deliberately outside both the request and
#: reply opcode ranges, so a migration body fed to :func:`decode_request`
#: or :func:`decode_reply` fails as an unknown opcode instead of being
#: misread as client traffic
OP_MIGRATE = 0x30
OP_FENCE = 0x31
OP_REPLICA = 0x32

#: the live-resharding phase machine, in coordinator order.  ``snapshot``
#: /``delta``/``release`` run on the source worker, ``install``/``apply``
#: /``activate`` on the target; ``abort`` is best-effort cleanup after a
#: failed (uncommitted) migration.
MIGRATE_PHASES = (
    "snapshot", "install", "delta", "apply", "activate", "release", "abort",
)
FENCE_ACTIONS = ("fence", "ack")
REPLICA_ACTIONS = ("apply", "ack")


@dataclass(frozen=True)
class MigrateFrame:
    """One migration phase step for a shard, stamped with the routing
    epoch the coordinator observed when it issued the step."""

    phase: str
    shard: int
    epoch: int
    payload: bytes = b""


@dataclass(frozen=True)
class FenceFrame:
    """Write fence for a shard mid-migration.  FIFO application makes the
    acked fence a drain barrier: every write submitted to the worker
    before it has been applied by the time the ack is read."""

    action: str
    shard: int
    epoch: int


@dataclass(frozen=True)
class ReplicaFrame:
    """Read-replica maintenance: ``apply`` carries an encoded write
    request body to shadow onto the replica's copy of ``shard``."""

    action: str
    shard: int
    epoch: int
    payload: bytes = b""


MigrationFrame = Union[MigrateFrame, FenceFrame, ReplicaFrame]


def _migration_prefix(opcode: int, index: int, shard: int, epoch: int) -> bytes:
    if not 0 <= shard <= 0xFFFFFFFF:
        raise ProtocolError(f"shard {shard} does not fit in u32")
    if not 0 <= epoch <= 0xFFFFFFFF:
        raise ProtocolError(f"routing epoch {epoch} does not fit in u32")
    return (
        struct.pack(">BB", MAGIC, VERSION)
        + _U8.pack(opcode)
        + _U8.pack(index)
        + _U32.pack(shard)
        + _U32.pack(epoch)
    )


def encode_migrate(frame: MigrateFrame) -> bytes:
    """Encode a MIGRATE body (no length/CRC prefix — the IPC envelope
    adds those).  The routing epoch is written twice — header and
    trailer — so a frame whose epoch field was damaged in a way the
    transport CRC missed still fails closed at decode."""
    if frame.phase not in MIGRATE_PHASES:
        raise ProtocolError(f"unknown migration phase {frame.phase!r}")
    return (
        _migration_prefix(OP_MIGRATE, MIGRATE_PHASES.index(frame.phase),
                          frame.shard, frame.epoch)
        + _U32.pack(len(frame.payload))
        + frame.payload
        + _U32.pack(frame.epoch)
    )


def encode_fence(frame: FenceFrame) -> bytes:
    """Encode a FENCE body (epoch echoed in the trailer, as MIGRATE)."""
    if frame.action not in FENCE_ACTIONS:
        raise ProtocolError(f"unknown fence action {frame.action!r}")
    return (
        _migration_prefix(OP_FENCE, FENCE_ACTIONS.index(frame.action),
                          frame.shard, frame.epoch)
        + _U32.pack(frame.epoch)
    )


def encode_replica(frame: ReplicaFrame) -> bytes:
    """Encode a REPLICA body (epoch echoed in the trailer, as MIGRATE)."""
    if frame.action not in REPLICA_ACTIONS:
        raise ProtocolError(f"unknown replica action {frame.action!r}")
    return (
        _migration_prefix(OP_REPLICA, REPLICA_ACTIONS.index(frame.action),
                          frame.shard, frame.epoch)
        + _U32.pack(len(frame.payload))
        + frame.payload
        + _U32.pack(frame.epoch)
    )


def decode_migration_frame(body: bytes) -> MigrationFrame:
    """Decode a MIGRATE/FENCE/REPLICA body; strict by construction.

    Everything suspicious is a :class:`ProtocolError`: a non-migration
    opcode, an out-of-range phase/action selector, a truncated payload,
    trailing bytes, and — the one migration adds over the base protocol —
    an *epoch confusion*: the trailer echo disagreeing with the header
    epoch.  A malformed migration frame must never decode into a
    different-but-valid routing instruction.
    """
    cursor = _Cursor(body)
    _check_header(cursor)
    opcode = cursor.u8()
    index = cursor.u8()
    shard = cursor.u32()
    epoch = cursor.u32()
    if opcode == OP_MIGRATE:
        if index >= len(MIGRATE_PHASES):
            raise ProtocolError(f"unknown migration phase index {index}")
        payload = cursor.blob()
        echo = cursor.u32()
        if echo != epoch:
            raise ProtocolError(
                f"migration frame epoch confusion: header epoch {epoch}, "
                f"trailer epoch {echo}"
            )
        frame: MigrationFrame = MigrateFrame(
            MIGRATE_PHASES[index], shard, epoch, payload
        )
    elif opcode == OP_FENCE:
        if index >= len(FENCE_ACTIONS):
            raise ProtocolError(f"unknown fence action index {index}")
        echo = cursor.u32()
        if echo != epoch:
            raise ProtocolError(
                f"fence frame epoch confusion: header epoch {epoch}, "
                f"trailer epoch {echo}"
            )
        frame = FenceFrame(FENCE_ACTIONS[index], shard, epoch)
    elif opcode == OP_REPLICA:
        if index >= len(REPLICA_ACTIONS):
            raise ProtocolError(f"unknown replica action index {index}")
        payload = cursor.blob()
        echo = cursor.u32()
        if echo != epoch:
            raise ProtocolError(
                f"replica frame epoch confusion: header epoch {epoch}, "
                f"trailer epoch {echo}"
            )
        frame = ReplicaFrame(REPLICA_ACTIONS[index], shard, epoch, payload)
    else:
        raise ProtocolError(f"unknown migration opcode {opcode:#x}")
    if not cursor.exhausted:
        raise ProtocolError("trailing bytes after migration frame")
    return frame


# ----------------------------------------------------------------------
# zero-copy GET key runs (worker IPC only)
# ----------------------------------------------------------------------

#: count prefix of a key-run payload (little-endian, unlike the wire
#: protocol: the keys themselves are ``<u8`` so a NumPy view over the
#: transport buffer needs no byte swap)
KEY_RUN_COUNT = struct.Struct("<I")


def encode_key_run(keys) -> bytes:
    """Pack an all-GET run as ``u32 count + count × u64 keys`` (LE).

    This is the frontend→worker fast path for runs of GETs: the worker
    can wrap the payload in a ``numpy.frombuffer(..., dtype="<u8")`` view
    straight off the shared-memory ring — no per-op decode, no copy.
    """
    count = len(keys)
    return KEY_RUN_COUNT.pack(count) + struct.pack(f"<{count}Q", *keys)


def decode_key_run_header(payload) -> int:
    """Validate a key-run payload's shape and return the key count."""
    if len(payload) < KEY_RUN_COUNT.size:
        raise ProtocolError("key run shorter than its count prefix")
    (count,) = KEY_RUN_COUNT.unpack_from(payload, 0)
    if len(payload) != KEY_RUN_COUNT.size + 8 * count:
        raise ProtocolError(
            f"key run of {count} keys has {len(payload)} payload bytes"
        )
    return count


def decode_key_run(payload):
    """Unpack a key-run payload into a list of ints (pure-Python path)."""
    count = decode_key_run_header(payload)
    return list(struct.unpack_from(f"<{count}Q", payload, KEY_RUN_COUNT.size))


# ----------------------------------------------------------------------
# stream framing
# ----------------------------------------------------------------------


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Read one frame body; returns ``b""`` on clean EOF before a frame.

    Verifies the body checksum carried in the frame prefix, so a frame
    whose payload was corrupted in flight surfaces as a
    :class:`ProtocolError` rather than silently bad value bytes.  Also
    raises :class:`ProtocolError` on a torn frame or one whose declared
    length exceeds ``max_frame_bytes`` (the oversize body is *not* read —
    the connection must be dropped, since framing is lost).
    """
    prefix = await reader.read(FRAME_OVERHEAD)
    if not prefix:
        return b""
    while len(prefix) < FRAME_OVERHEAD:
        more = await reader.read(FRAME_OVERHEAD - len(prefix))
        if not more:
            raise ProtocolError("connection closed mid length-prefix")
        prefix += more
    (length,) = _LEN.unpack_from(prefix, 0)
    (expected_crc,) = _CRC.unpack_from(prefix, _LEN.size)
    if length < 3:
        raise ProtocolError(f"frame body too short ({length} bytes)")
    if length > max_frame_bytes:
        raise ProtocolError(f"frame of {length} bytes exceeds {max_frame_bytes}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError("connection closed mid frame") from error
    if (zlib.crc32(body) & 0xFFFFFFFF) != expected_crc:
        raise ProtocolError("frame checksum mismatch")
    return body


async def write_frame(
    writer: asyncio.StreamWriter, frame: bytes, faults=None
) -> None:
    """Write one already-encoded frame and drain (applies backpressure).

    When a :class:`~repro.faults.FaultPlan` is given it is consulted per
    frame: a *drop* verdict severs the connection (raising
    :class:`ConnectionResetError`, so the caller's connection-teardown
    path runs and the peer sees EOF), and a *corrupt* verdict flips one
    byte inside the frame *body* — the length/CRC prefix is preserved so
    the peer reads a complete frame whose checksum no longer matches and
    fails it as a :class:`ProtocolError` instead of losing framing.
    """
    if faults is not None:
        verdict, body = faults.on_frame_send(frame[FRAME_OVERHEAD:])
        if verdict == "drop":
            writer.close()
            raise ConnectionResetError("injected connection drop")
        if verdict == "corrupt":
            frame = frame[:FRAME_OVERHEAD] + body
    writer.write(frame)
    await writer.drain()
